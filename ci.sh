#!/usr/bin/env bash
# CI gate for the SCOPe workspace. Run from the repo root.
#
#   ./ci.sh          # fmt + build + test + clippy (the tier-1 verify plus lints)
#   ./ci.sh --quick  # skip the release build (debug test cycle only)
#
# Everything runs fully offline: the only non-std dependencies are the
# in-tree shims under shims/ (rand, proptest, criterion, serde, bytes).

set -euo pipefail
cd "$(dirname "$0")"

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
if [[ $quick -eq 0 ]]; then
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

# Invariant lint: determinism (no hash-order iteration, no wall-clock or
# raw threads in logic), oracle discipline, panic-surface ratchet, shim
# surface, bench-artifact schema and the test-count floor below are all
# machine-checked by the in-tree analyzer. --deny fails on any unwaived
# finding; waivers are inline comments, counted and capped.
echo "==> scope-analyze --deny --json (workspace invariant lint)"
cargo run -q -p scope-analyze -- --deny --json

# Release-mode test pass: the optimizer DP oracles and proptests are an
# order of magnitude slower in debug, and release occasionally surfaces
# optimization-dependent float bugs debug hides. The floor must equal the
# static recount of #[test] cases (scope-analyze rule ci-floor-consistency
# keeps it honest) — if the suite ever shrinks below it, tests were lost,
# not just reorganised.
min_tests=629
if [[ $quick -eq 0 ]]; then
    echo "==> cargo test -q --release (count floor: $min_tests)"
    release_out=$(cargo test -q --release 2>&1) || {
        echo "$release_out"
        echo "FAIL: release test run failed"
        exit 1
    }
    total=$(echo "$release_out" | grep -E '^test result' \
        | grep -oE '[0-9]+ passed' | awk '{s += $1} END {print s + 0}')
    echo "    $total tests passed in release mode"
    if [[ "$total" -lt "$min_tests" ]]; then
        echo "FAIL: release test count $total dropped below the baseline $min_tests"
        exit 1
    fi

    # Smoke-run the PR-4 bench bin so BENCH_4.json generation can't rot:
    # quick instances, table-vs-reference equality asserted inside the bin,
    # JSON written out of tree (the committed BENCH_4.json is a full run).
    echo "==> solver_bench --json --quick (BENCH_4 smoke)"
    cargo run --release -q -p scope-bench --bin solver_bench -- \
        --json --quick --out target/BENCH_4.quick.json

    # Same for the PR-5 learning-pipeline bench: fast-vs-reference equality
    # (trees, forests, boosting, entropies, DP plans) asserted inside the
    # bin on quick instances.
    echo "==> train_bench --json --quick (BENCH_5 smoke)"
    cargo run --release -q -p scope-bench --bin train_bench -- \
        --json --quick --out target/BENCH_5.quick.json

    # PR-7 throughput suite: word-level codec kernels vs the byte-at-a-time
    # compress::reference pipelines (byte-identical streams asserted in the
    # bin) and the sharded column billing engine vs the sequential reference
    # (bit-identical reports for threads 1/2/7 asserted before timing).
    echo "==> throughput_bench --json --quick (BENCH_7 smoke)"
    cargo run --release -q -p scope-bench --bin throughput_bench -- \
        --json --quick --out target/BENCH_7.quick.json

    # PR-8 serving suite: the incremental serving engine vs the preserved
    # batch full-resolve (bit-identical choices/objectives asserted on every
    # epoch, plus thread-count independence, before any timing) and the
    # steady-state speedup floor asserted inside the bin.
    echo "==> serve_bench --json --quick (BENCH_8 smoke)"
    cargo run --release -q -p scope-bench --bin serve_bench -- \
        --json --quick --out target/BENCH_8.quick.json

    # PR-9 chaos suite: seeded fault injection against the serving loop.
    # The bin asserts, in-process before timing: heat bit-identical to a
    # fault-free twin, quarantine == the independent expected_intake
    # reference, healthy shards == full_resolve, and crash+restore ==
    # never-crashed (checkpoints compared as raw bytes).
    echo "==> chaos_bench --json --quick (BENCH_9 smoke)"
    cargo run --release -q -p scope-bench --bin chaos_bench -- \
        --json --quick --out target/BENCH_9.quick.json

    # PR-10 recovery suite: durable intake journal + end-to-end crash
    # recovery. The bin fuzzes crash points under none/light/heavy
    # storage-fault plans and asserts recovered state bit-identical to a
    # never-crashed twin (checkpoints as raw bytes, per epoch) before
    # timing journaling overhead; journal segments live in a throwaway
    # directory under target/.
    echo "==> recovery_bench --json --quick (BENCH_10 smoke)"
    cargo run --release -q -p scope-bench --bin recovery_bench -- \
        --json --quick --dir target/recovery_bench_ci --out target/BENCH_10.quick.json
fi

echo "==> cargo bench --no-run (criterion benches must compile)"
cargo bench --no-run

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
