#!/usr/bin/env bash
# CI gate for the SCOPe workspace. Run from the repo root.
#
#   ./ci.sh          # fmt + build + test + clippy (the tier-1 verify plus lints)
#   ./ci.sh --quick  # skip the release build (debug test cycle only)
#
# Everything runs fully offline: the only non-std dependencies are the
# in-tree shims under shims/ (rand, proptest, criterion, serde, bytes).

set -euo pipefail
cd "$(dirname "$0")"

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
if [[ $quick -eq 0 ]]; then
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (criterion benches must compile)"
cargo bench --no-run

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
