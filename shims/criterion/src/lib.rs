//! Offline shim of the `criterion` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! just enough of criterion for `benches/*.rs` to compile and produce
//! useful wall-clock numbers: benchmark groups, `bench_function` /
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple but honest: each benchmark is warmed up, then
//! timed for `sample_size` samples whose per-iteration mean, minimum and
//! maximum are reported on stdout. There are no HTML reports, statistical
//! regressions, or plots. When the harness is invoked by `cargo test`
//! (`--test` flag) each benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    test_mode: bool,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: size the inner loop so one sample takes
        // roughly a few milliseconds.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.test_mode {
            println!("{group}/{id}: ok (test mode)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if mean > 0.0 => {
                format!("  {:.1} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id}: mean {} (min {}, max {}, {} samples x {} iters){rate}",
            format_seconds(mean),
            format_seconds(min),
            format_seconds(max),
            per_iter.len(),
            self.iters_per_sample,
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the work performed per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Finish the group (reporting happens per-benchmark; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`;
        // `cargo bench` passes `--bench`. In test mode each benchmark body
        // runs once, untimed.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(name, f);
        self
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(5).throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * 2
            })
        });
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("gzip").id, "gzip");
    }
}
