//! Offline shim of the `bytes` crate API surface used by this workspace:
//! `BytesMut` as an append-only builder implementing [`BufMut`]'s `put_*`
//! writers, frozen into a cheaply cloneable, immutable [`Bytes`] that
//! derefs to `[u8]`. Only the write side is vendored — the table formats
//! read back through plain slices.

use std::ops::Deref;
use std::sync::Arc;

/// Write-side buffer trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.buf.into_boxed_slice()),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Immutable, cheaply cloneable byte buffer (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writers_round_trip_into_frozen_bytes() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"hdr");
        buf.put_u8(7);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-1);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 3 + 1 + 4 + 8 + 8 + 8);
        assert_eq!(&frozen[..3], b"hdr");
        assert_eq!(frozen[3], 7);
        assert_eq!(
            u32::from_le_bytes(frozen[4..8].try_into().unwrap()),
            0xDEADBEEF
        );
        assert_eq!(f64::from_le_bytes(frozen[24..32].try_into().unwrap()), 1.5);
        assert_eq!(frozen.to_vec().len(), frozen.len());
    }
}
