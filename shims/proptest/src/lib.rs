//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of proptest the integration tests rely on: the `proptest!`
//! macro with `#![proptest_config(...)]`, range and `collection::vec`
//! strategies, `any::<T>()`, and the `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! regression file. Every run is **deterministic**: the case stream is a
//! pure function of the test's name, so `cargo test` is reproducible
//! run-to-run and machine-to-machine. A failing case panics with the inputs
//! that produced it.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Runner configuration.

    /// Subset of `proptest::test_runner::ProptestConfig`: only the number of
    /// generated cases is configurable.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// The shim has no shrinking: a strategy is just a sampling function.
    pub trait Strategy {
        /// The type of generated values.
        type Value: ::std::fmt::Debug;

        /// Draw one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for ::core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`]: a uniform draw over
    /// the whole domain of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        pub(crate) _marker: ::std::marker::PhantomData<T>,
    }

    macro_rules! any_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            // Finite, sign-balanced, spanning several orders of magnitude.
            let mantissa: f64 = rng.gen_range(-1.0..1.0);
            let exponent: i32 = rng.gen_range(-60..60);
            mantissa * (exponent as f64).exp2()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`, the default strategy for a type.

    use super::strategy::Any;

    /// Default strategy generating arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any {
            _marker: ::std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Drives one property: runs `config.cases` deterministic cases, panicking
/// on the first failure. Used by the expansion of [`proptest!`].
pub fn run_cases<F>(config: &test_runner::ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), String>,
{
    // FNV-1a over the test name: a stable, platform-independent base seed.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    for case_index in 0..config.cases {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (case_index as u64).wrapping_mul(0x9E3779B97F4A7C15));
        if let Err(message) = case(&mut rng) {
            panic!(
                "proptest case {case_index}/{} of '{test_name}' failed: {message}",
                config.cases
            );
        }
    }
}

/// Subset of `proptest::proptest!`: named arguments bound with `in`, an
/// optional leading `#![proptest_config(...)]`, and a body that may use
/// `prop_assert!`-family macros.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(&config, stringify!($name), |proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` variant that fails the current proptest case with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` variant that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right,
            ));
        }
    }};
}

/// `assert_ne!` variant that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 1.0f64..10.0,
            n in 2usize..9,
            bytes in crate::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assert!((1.0..10.0).contains(&x));
            prop_assert!((2..9).contains(&n));
            prop_assert!(bytes.len() < 64);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        crate::run_cases(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err("boom".to_string())
        });
    }

    #[test]
    fn case_stream_is_deterministic() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(8), "det", |rng| {
            first.push(Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(8), "det", |rng| {
            second.push(Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
