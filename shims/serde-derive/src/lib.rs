//! Offline shim of `serde_derive`: the workspace uses
//! `#[derive(Serialize, Deserialize)]` purely as documentation of intent —
//! nothing serializes yet — so these derives expand to marker-trait impls.
//! The `serde` shim crate defines the matching `Serialize` / `Deserialize`
//! marker traits (implemented blanket-style for every type), so emitting
//! nothing here is sound: the derive only has to *exist* and parse.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts any item, emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts any item, emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
