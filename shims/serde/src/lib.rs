//! Offline shim of the `serde` facade. The workspace derives
//! `Serialize`/`Deserialize` on its data types as a statement of intent but
//! never serializes anything yet (there is no `serde_json` in the allowed
//! dependency set). The traits here are markers implemented for every type,
//! and the re-exported derives are no-ops, so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` both compile
//! without pulling in the real serde machinery.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; every type satisfies it.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
