//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it needs: `SmallRng` (a xoshiro256++
//! generator seeded through SplitMix64), the `Rng` / `RngCore` /
//! `SeedableRng` traits with `gen`, `gen_range` and `gen_bool`, and
//! `seq::SliceRandom::shuffle`. All generators are deterministic functions
//! of their seed; there is deliberately no `thread_rng`/`from_entropy`
//! equivalent so every caller must pick an explicit seed.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type (`rng.gen::<f64>()` is in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, Q: SampleRange<T>>(&mut self, range: Q) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — the same construction the real
    /// `rand 0.8` uses for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The shim's `StdRng` is the same generator as [`SmallRng`].
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle and
    /// uniform element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
            let m = rng.gen_range(0..=4u64);
            assert!(m <= 4);
        }
    }

    #[test]
    fn unit_interval_mean_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
