//! Column types, column definitions and table schemas.

use serde::{Deserialize, Serialize};

/// Logical type of a column.
///
/// The COMPREDICT weighted-entropy features are computed *per data type*
/// present in a partition (`H(P, d)` with `d ∈ D`), so the type taxonomy
/// here deliberately matches the paper's "int, float, object" grouping plus
/// dates, which TPC-H uses heavily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats (prices, discounts, quantities).
    Float,
    /// Variable-length text ("object" dtype in the paper's terms).
    Text,
    /// Dates stored as days since an epoch.
    Date,
}

impl ColumnType {
    /// Short lowercase name used in feature names and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Text => "object",
            ColumnType::Date => "date",
        }
    }

    /// All column types, in a stable order (used to build fixed-width
    /// feature vectors).
    pub fn all() -> [ColumnType; 4] {
        [
            ColumnType::Int,
            ColumnType::Float,
            ColumnType::Text,
            ColumnType::Date,
        ]
    }
}

impl std::fmt::Display for ColumnType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub column_type: ColumnType,
}

impl ColumnDef {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, column_type: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            column_type,
        }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Create a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, ColumnType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Ordered column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Type of a named column.
    pub fn column_type(&self, name: &str) -> Option<ColumnType> {
        self.index_of(name).map(|i| self.columns[i].column_type)
    }

    /// Names of all columns, in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::from_pairs(&[
            ("id", ColumnType::Int),
            ("price", ColumnType::Float),
            ("comment", ColumnType::Text),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.column_type("comment"), Some(ColumnType::Text));
        assert_eq!(s.names(), vec!["id", "price", "comment"]);
        assert!(!s.is_empty());
    }

    #[test]
    fn column_type_names_are_stable() {
        assert_eq!(ColumnType::Int.name(), "int");
        assert_eq!(ColumnType::Text.name(), "object");
        assert_eq!(ColumnType::all().len(), 4);
        assert_eq!(format!("{}", ColumnType::Date), "date");
    }
}
