//! Zipf (zeta) distribution sampling.
//!
//! Both the skewed TPC-H variant ("TPC-H Skew generated with Zipfian skew,
//! high skew factor of 3") and the enterprise access workloads ("queries
//! based on a skewed power-law (Zipf-like) distribution") need a Zipf
//! sampler. This implementation precomputes the CDF once and samples by
//! binary search, which is fast enough for the scales used here and exact.

use rand::Rng;

/// A Zipf distribution over `{0, 1, ..., n-1}` with exponent `s`:
/// `P(k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `n` items with skew exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; larger `s` puts
    /// more mass on low indices. Panics if `n == 0` or `s` is negative /
    /// non-finite (programming errors, not data errors).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has exactly one item.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of item `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Sample one item index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose CDF value is >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Sample `count` items.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
        assert_eq!(z.pmf(1000), 0.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn high_skew_concentrates_mass_on_head() {
        // Skew factor 3 is what the paper uses for TPC-H Skew: the head item
        // should dominate.
        let z = Zipf::new(1000, 3.0);
        assert!(z.pmf(0) > 0.8);
        let mut rng = SmallRng::seed_from_u64(1);
        let samples = z.sample_many(&mut rng, 5000);
        let zeros = samples.iter().filter(|&&s| s == 0).count();
        assert!(zeros as f64 / 5000.0 > 0.7);
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(20, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let samples = z.sample_many(&mut rng, 20000);
        let head = samples.iter().filter(|&&s| s == 0).count() as f64 / 20000.0;
        assert!((head - z.pmf(0)).abs() < 0.02);
        assert!(samples.iter().all(|&s| s < 20));
    }

    #[test]
    #[should_panic(expected = "Zipf over zero items")]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_panics() {
        Zipf::new(5, -1.0);
    }
}
