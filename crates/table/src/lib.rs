//! # scope-table
//!
//! Tabular data substrate for the SCOPe reproduction.
//!
//! The paper's compression predictor (COMPREDICT, §V) is trained on *real
//! bytes*: TPC-H tables and enterprise tables serialized as CSV (row
//! layout) or Parquet (column layout), compressed with gzip/snappy/lz4.
//! This crate provides everything needed to regenerate that setting without
//! external data:
//!
//! * [`schema`] / [`column`] — a typed, columnar in-memory table
//!   representation with projections, filters and sorting,
//! * [`format`] — serialization to a row-oriented CSV layout and a
//!   simplified columnar ("parquet-like") layout with per-column dictionary
//!   and run-length encodings; these bytes are what `scope-compress` codecs
//!   compress,
//! * [`zipf`] — a Zipf/zeta sampler used for skewed data and workloads,
//! * [`tpch`] — a TPC-H-like generator producing all 8 tables at a given
//!   scale factor with either uniform or Zipf-skewed value distributions
//!   (the paper's "TPC-H 1GB / 100GB / 1TB / Skew" variants, scaled down).

#![warn(missing_docs)]

pub mod column;
pub mod error;
pub mod format;
pub mod schema;
pub mod tpch;
pub mod zipf;

pub use column::{ColumnData, Table};
pub use error::TableError;
pub use format::{ColumnarWriteOptions, DataLayout};
pub use schema::{ColumnDef, ColumnType, Schema};
pub use tpch::{TpchGenerator, TpchOptions, TpchTable};
pub use zipf::Zipf;
