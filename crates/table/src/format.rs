//! Serialization of tables into row-oriented (CSV) and column-oriented
//! ("parquet-like") byte layouts.
//!
//! The paper studies compression on two physical layouts: CSV files as the
//! row-store example and Parquet as the column-store example. The codecs in
//! `scope-compress` operate on raw bytes, so the only thing that matters
//! for reproducing the layout effect is *byte adjacency*: row layout
//! interleaves values of different columns, column layout keeps each
//! column's values together and (like Parquet) applies lightweight
//! dictionary / run-length encodings before general-purpose compression.

use crate::column::{format_date, ColumnData, Table};
use bytes::{BufMut, Bytes, BytesMut};

/// Physical layout used when serializing a table to bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLayout {
    /// Row-oriented CSV text.
    Csv,
    /// Column-oriented binary layout with per-column encodings
    /// (a simplified Parquet).
    Columnar,
}

impl DataLayout {
    /// Short name used in reports ("csv" / "parquet").
    pub fn name(&self) -> &'static str {
        match self {
            DataLayout::Csv => "csv",
            DataLayout::Columnar => "parquet",
        }
    }
}

/// Options for the columnar writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnarWriteOptions {
    /// Use dictionary encoding for text columns whose distinct-value count
    /// is below 50% of the row count (Parquet's default behaviour).
    pub dictionary_encode_text: bool,
    /// Use run-length encoding for int/date columns with long runs.
    pub rle_encode_ints: bool,
}

impl Default for ColumnarWriteOptions {
    fn default() -> Self {
        ColumnarWriteOptions {
            dictionary_encode_text: true,
            rle_encode_ints: true,
        }
    }
}

/// Serialize a table as CSV (with a header line).
pub fn to_csv(table: &Table) -> Bytes {
    let mut out = BytesMut::with_capacity(table.n_rows() * table.n_columns() * 8 + 64);
    // Header.
    let names = table.schema().names();
    out.put_slice(names.join(",").as_bytes());
    out.put_u8(b'\n');
    for row in 0..table.n_rows() {
        for (i, col) in (0..table.n_columns())
            .map(|c| (c, table.column(c)))
            .collect::<Vec<_>>()
        {
            if i > 0 {
                out.put_u8(b',');
            }
            out.put_slice(cell_string(col, row).as_bytes());
        }
        out.put_u8(b'\n');
    }
    out.freeze()
}

fn cell_string(col: &ColumnData, row: usize) -> String {
    match col {
        ColumnData::Int(v) => v[row].to_string(),
        ColumnData::Float(v) => format!("{:.2}", v[row]),
        ColumnData::Text(v) => v[row].clone(),
        ColumnData::Date(v) => format_date(v[row]),
    }
}

/// Serialize a table in the simplified columnar layout.
///
/// Layout per column: a 1-byte encoding tag, a little-endian u64 value
/// count, then the encoded values. Encodings:
///
/// * `0` plain: fixed-width little-endian values (ints/floats/dates) or
///   length-prefixed UTF-8 (text),
/// * `1` dictionary: u32 dictionary size, length-prefixed dictionary
///   entries, then u32 codes per row,
/// * `2` run-length: pairs of (u32 run length, value).
pub fn to_columnar(table: &Table, options: &ColumnarWriteOptions) -> Bytes {
    let mut out = BytesMut::with_capacity(table.n_rows() * table.n_columns() * 8 + 64);
    out.put_slice(b"SCOLv1\0");
    out.put_u32_le(table.n_columns() as u32);
    out.put_u64_le(table.n_rows() as u64);
    for c in 0..table.n_columns() {
        write_column(&mut out, table.column(c), options);
    }
    out.freeze()
}

fn write_column(out: &mut BytesMut, col: &ColumnData, options: &ColumnarWriteOptions) {
    match col {
        ColumnData::Float(v) => {
            out.put_u8(0);
            out.put_u64_le(v.len() as u64);
            for x in v {
                out.put_f64_le(*x);
            }
        }
        ColumnData::Int(v) | ColumnData::Date(v) => {
            if options.rle_encode_ints && worth_rle(v) {
                out.put_u8(2);
                out.put_u64_le(v.len() as u64);
                write_rle(out, v);
            } else {
                out.put_u8(0);
                out.put_u64_le(v.len() as u64);
                for x in v {
                    out.put_i64_le(*x);
                }
            }
        }
        ColumnData::Text(v) => {
            // BTreeSet: dictionary order must not depend on hash seeds.
            let distinct: std::collections::BTreeSet<&String> = v.iter().collect();
            if options.dictionary_encode_text && !v.is_empty() && distinct.len() * 2 < v.len() {
                out.put_u8(1);
                out.put_u64_le(v.len() as u64);
                // The set iterates in sorted order, so the dictionary is
                // deterministic by construction.
                let dict: Vec<&String> = distinct.into_iter().collect();
                let index: std::collections::HashMap<&String, u32> = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (*s, i as u32))
                    .collect();
                out.put_u32_le(dict.len() as u32);
                for entry in &dict {
                    out.put_u32_le(entry.len() as u32);
                    out.put_slice(entry.as_bytes());
                }
                for s in v {
                    out.put_u32_le(index[s]);
                }
            } else {
                out.put_u8(0);
                out.put_u64_le(v.len() as u64);
                for s in v {
                    out.put_u32_le(s.len() as u32);
                    out.put_slice(s.as_bytes());
                }
            }
        }
    }
}

/// RLE pays off when the average run length is at least 2.
fn worth_rle(values: &[i64]) -> bool {
    if values.len() < 8 {
        return false;
    }
    let mut runs = 1usize;
    for w in values.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    runs * 2 <= values.len()
}

fn write_rle(out: &mut BytesMut, values: &[i64]) {
    let mut i = 0;
    while i < values.len() {
        let mut run = 1u32;
        while i + (run as usize) < values.len()
            && values[i + run as usize] == values[i]
            && run < u32::MAX
        {
            run += 1;
        }
        out.put_u32_le(run);
        out.put_i64_le(values[i]);
        i += run as usize;
    }
}

/// Serialize a table in the requested layout with default options.
pub fn serialize(table: &Table, layout: DataLayout) -> Bytes {
    match layout {
        DataLayout::Csv => to_csv(table),
        DataLayout::Columnar => to_columnar(table, &ColumnarWriteOptions::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, Schema};

    fn table_with_repetition() -> Table {
        let n = 200;
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("status", ColumnType::Text),
            ColumnDef::new("price", ColumnType::Float),
            ColumnDef::new("flag", ColumnType::Int),
        ]);
        Table::new(
            "t",
            schema,
            vec![
                ColumnData::Int((0..n as i64).collect()),
                ColumnData::Text(
                    (0..n)
                        .map(|i| if i % 3 == 0 { "OPEN" } else { "CLOSED" }.to_string())
                        .collect(),
                ),
                ColumnData::Float((0..n).map(|i| i as f64 * 0.5).collect()),
                ColumnData::Int(vec![7; n]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let t = table_with_repetition();
        let bytes = to_csv(&t);
        let text = std::str::from_utf8(&bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 201);
        assert_eq!(lines[0], "id,status,price,flag");
        assert!(lines[1].starts_with("0,OPEN,0.00,7"));
    }

    #[test]
    fn columnar_layout_has_magic_and_is_smaller_with_encodings() {
        let t = table_with_repetition();
        let encoded = to_columnar(&t, &ColumnarWriteOptions::default());
        assert!(encoded.starts_with(b"SCOLv1\0"));
        let plain = to_columnar(
            &t,
            &ColumnarWriteOptions {
                dictionary_encode_text: false,
                rle_encode_ints: false,
            },
        );
        // The low-cardinality text column and the constant int column make
        // dictionary + RLE encoding strictly smaller.
        assert!(encoded.len() < plain.len());
    }

    #[test]
    fn rle_detection_requires_runs() {
        assert!(worth_rle(&[5; 100]));
        let distinct: Vec<i64> = (0..100).collect();
        assert!(!worth_rle(&distinct));
        assert!(!worth_rle(&[1, 1, 1])); // too short
    }

    #[test]
    fn layout_names() {
        assert_eq!(DataLayout::Csv.name(), "csv");
        assert_eq!(DataLayout::Columnar.name(), "parquet");
    }

    #[test]
    fn serialize_dispatches_on_layout() {
        let t = table_with_repetition();
        assert_eq!(serialize(&t, DataLayout::Csv), to_csv(&t));
        assert_eq!(
            serialize(&t, DataLayout::Columnar),
            to_columnar(&t, &ColumnarWriteOptions::default())
        );
    }

    #[test]
    fn empty_table_serializes() {
        let schema = Schema::from_pairs(&[("a", ColumnType::Int)]);
        let t = Table::new("empty", schema, vec![ColumnData::Int(vec![])]).unwrap();
        let csv = to_csv(&t);
        assert_eq!(std::str::from_utf8(&csv).unwrap(), "a\n");
        let col = to_columnar(&t, &ColumnarWriteOptions::default());
        assert!(col.starts_with(b"SCOLv1\0"));
    }
}
