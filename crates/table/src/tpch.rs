//! TPC-H-like data generator.
//!
//! The paper evaluates on four TPC-H variants: 1 GB and 100 GB and 1 TB with
//! uniform data, plus a 1 GB variant generated with Zipfian skew (skew
//! factor 3). Materialising hundreds of gigabytes is neither possible nor
//! necessary for the reproduction — compression ratios, query footprints
//! and the cost model all depend on the *distributional* properties of the
//! data and on relative sizes, so this generator produces the same eight
//! tables with the same column structure and realistic value distributions
//! at a configurable (much smaller) scale. Larger paper scales are mapped
//! to proportionally larger scale factors plus metadata-level size scaling
//! in the experiment drivers.

use crate::column::{ColumnData, Table};
use crate::error::TableError;
use crate::schema::{ColumnType, Schema};
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchTable {
    /// Line items of orders (the fact table, ~75% of the data volume).
    Lineitem,
    /// Orders.
    Orders,
    /// Customers.
    Customer,
    /// Parts.
    Part,
    /// Suppliers.
    Supplier,
    /// Part-supplier relation.
    Partsupp,
    /// Nations (25 rows).
    Nation,
    /// Regions (5 rows).
    Region,
}

impl TpchTable {
    /// All tables, in data-volume order.
    pub fn all() -> [TpchTable; 8] {
        [
            TpchTable::Lineitem,
            TpchTable::Orders,
            TpchTable::Partsupp,
            TpchTable::Customer,
            TpchTable::Part,
            TpchTable::Supplier,
            TpchTable::Nation,
            TpchTable::Region,
        ]
    }

    /// Lowercase table name.
    pub fn name(&self) -> &'static str {
        match self {
            TpchTable::Lineitem => "lineitem",
            TpchTable::Orders => "orders",
            TpchTable::Customer => "customer",
            TpchTable::Part => "part",
            TpchTable::Supplier => "supplier",
            TpchTable::Partsupp => "partsupp",
            TpchTable::Nation => "nation",
            TpchTable::Region => "region",
        }
    }

    /// Base row count at scale factor 1.0 (scaled-down TPC-H proportions:
    /// lineitem is ~4x orders, orders is 10x customers, etc.).
    pub fn base_rows(&self) -> usize {
        match self {
            TpchTable::Lineitem => 6000,
            TpchTable::Orders => 1500,
            TpchTable::Partsupp => 800,
            TpchTable::Customer => 150,
            TpchTable::Part => 200,
            TpchTable::Supplier => 10,
            TpchTable::Nation => 25,
            TpchTable::Region => 5,
        }
    }
}

/// Options controlling generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchOptions {
    /// Multiplier on the base row counts (1.0 ≈ a few thousand lineitem rows).
    pub scale_factor: f64,
    /// Zipf exponent applied to categorical/foreign-key value choices.
    /// `None` reproduces the uniform variants; `Some(3.0)` reproduces the
    /// high-skew "TPC-H Skew" variant.
    pub skew: Option<f64>,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for TpchOptions {
    fn default() -> Self {
        TpchOptions {
            scale_factor: 1.0,
            skew: None,
            seed: 42,
        }
    }
}

impl TpchOptions {
    /// Validate the options.
    pub fn validate(&self) -> Result<(), TableError> {
        if !(self.scale_factor > 0.0) || !self.scale_factor.is_finite() {
            return Err(TableError::InvalidOption(format!(
                "scale_factor must be positive and finite, got {}",
                self.scale_factor
            )));
        }
        if let Some(s) = self.skew {
            if !(s >= 0.0) || !s.is_finite() {
                return Err(TableError::InvalidOption(format!(
                    "skew must be non-negative and finite, got {s}"
                )));
            }
        }
        Ok(())
    }
}

const SHIP_MODES: &[&str] = &["AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "FOB", "REG AIR"];
const SHIP_INSTRUCT: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "TAKE BACK RETURN",
    "NONE",
];
const RETURN_FLAGS: &[&str] = &["R", "A", "N"];
const LINE_STATUS: &[&str] = &["O", "F"];
const ORDER_STATUS: &[&str] = &["O", "F", "P"];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const CONTAINERS: &[&str] = &[
    "SM CASE",
    "SM BOX",
    "SM PACK",
    "LG CASE",
    "LG BOX",
    "LG PACK",
    "MED BAG",
    "MED BOX",
    "JUMBO JAR",
    "WRAP CAN",
];
const BRANDS: &[&str] = &[
    "Brand#11", "Brand#12", "Brand#21", "Brand#23", "Brand#34", "Brand#45",
];
const TYPES: &[&str] = &[
    "STANDARD ANODIZED TIN",
    "SMALL PLATED COPPER",
    "MEDIUM BRUSHED NICKEL",
    "ECONOMY BURNISHED STEEL",
    "PROMO POLISHED BRASS",
    "LARGE BURNISHED COPPER",
];
const COLORS: &[&str] = &[
    "almond",
    "azure",
    "beige",
    "blush",
    "chartreuse",
    "coral",
    "cream",
    "dark",
    "forest",
    "ghost",
    "honeydew",
    "ivory",
    "lace",
    "lemon",
    "magenta",
    "navy",
    "olive",
    "peach",
    "plum",
    "rose",
    "saddle",
    "sandy",
    "sienna",
    "smoke",
    "thistle",
    "turquoise",
    "violet",
    "wheat",
];
const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const COMMENT_WORDS: &[&str] = &[
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "deposits",
    "requests",
    "accounts",
    "packages",
    "instructions",
    "theodolites",
    "platelets",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "dependencies",
    "excuses",
    "asymptotes",
    "courts",
    "dolphins",
    "sleep",
    "wake",
    "nag",
    "haggle",
    "boost",
    "engage",
    "detect",
    "integrate",
    "among",
    "across",
    "above",
    "final",
    "regular",
    "express",
    "special",
    "pending",
    "ironic",
    "even",
    "bold",
    "unusual",
    "silent",
];

/// TPC-H date range: 1992-01-01 .. 1998-12-01, expressed in days since the
/// generator epoch (1992-01-01).
const DATE_RANGE_DAYS: i64 = 2520;

/// The TPC-H-like generator.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    options: TpchOptions,
}

/// Internal value sampler that is either uniform or Zipf-skewed.
struct Sampler {
    rng: SmallRng,
    skew: Option<f64>,
    // One Zipf distribution per domain size, built lazily.
    zipfs: std::collections::HashMap<usize, Zipf>,
}

impl Sampler {
    fn new(seed: u64, skew: Option<f64>) -> Self {
        Sampler {
            rng: SmallRng::seed_from_u64(seed),
            skew,
            zipfs: std::collections::HashMap::new(),
        }
    }

    /// Index into a domain of `n` items — uniform or Zipf depending on the
    /// configured skew.
    fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        match self.skew {
            None => self.rng.gen_range(0..n),
            Some(s) => {
                let z = self.zipfs.entry(n).or_insert_with(|| Zipf::new(n, s));
                z.sample(&mut self.rng)
            }
        }
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.index(options.len())]
    }

    fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }

    fn date(&mut self) -> i64 {
        // Dates are drawn from the ~7 year TPC-H window; under skew, recent
        // dates are favoured (index 0 = most recent) which also mimics the
        // recency effect in enterprise data.
        let offset = self.index(DATE_RANGE_DAYS as usize) as i64;
        DATE_RANGE_DAYS - 1 - offset
    }

    fn comment(&mut self, min_words: usize, max_words: usize) -> String {
        let n = if max_words > min_words {
            min_words + self.index(max_words - min_words)
        } else {
            min_words
        };
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.pick(COMMENT_WORDS));
        }
        words.join(" ")
    }

    fn phone(&mut self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.uniform_i64(10, 35),
            self.uniform_i64(100, 999),
            self.uniform_i64(100, 999),
            self.uniform_i64(1000, 9999)
        )
    }
}

impl TpchGenerator {
    /// Create a generator with the given options.
    pub fn new(options: TpchOptions) -> Result<Self, TableError> {
        options.validate()?;
        Ok(TpchGenerator { options })
    }

    /// Generator options.
    pub fn options(&self) -> &TpchOptions {
        &self.options
    }

    /// Row count for a table under the configured scale factor. Nation and
    /// region are fixed-size as in real TPC-H.
    pub fn row_count(&self, table: TpchTable) -> usize {
        match table {
            TpchTable::Nation | TpchTable::Region => table.base_rows(),
            _ => ((table.base_rows() as f64) * self.options.scale_factor).ceil() as usize,
        }
        .max(1)
    }

    /// Generate one table.
    pub fn generate(&self, table: TpchTable) -> Table {
        let seed = self.options.seed ^ (table.name().len() as u64) << 32 ^ table.base_rows() as u64;
        let mut s = Sampler::new(seed, self.options.skew);
        let n = self.row_count(table);
        match table {
            TpchTable::Lineitem => self.lineitem(&mut s, n),
            TpchTable::Orders => self.orders(&mut s, n),
            TpchTable::Customer => self.customer(&mut s, n),
            TpchTable::Part => self.part(&mut s, n),
            TpchTable::Supplier => self.supplier(&mut s, n),
            TpchTable::Partsupp => self.partsupp(&mut s, n),
            TpchTable::Nation => self.nation(),
            TpchTable::Region => self.region(),
        }
    }

    /// Generate all eight tables.
    pub fn generate_all(&self) -> Vec<Table> {
        TpchTable::all().iter().map(|&t| self.generate(t)).collect()
    }

    fn key_domain(&self, table: TpchTable) -> i64 {
        self.row_count(table) as i64
    }

    fn lineitem(&self, s: &mut Sampler, n: usize) -> Table {
        let orders = self.key_domain(TpchTable::Orders);
        let parts = self.key_domain(TpchTable::Part);
        let supps = self.key_domain(TpchTable::Supplier);
        let mut orderkey = Vec::with_capacity(n);
        let mut partkey = Vec::with_capacity(n);
        let mut suppkey = Vec::with_capacity(n);
        let mut linenumber = Vec::with_capacity(n);
        let mut quantity = Vec::with_capacity(n);
        let mut extendedprice = Vec::with_capacity(n);
        let mut discount = Vec::with_capacity(n);
        let mut tax = Vec::with_capacity(n);
        let mut returnflag = Vec::with_capacity(n);
        let mut linestatus = Vec::with_capacity(n);
        let mut shipdate = Vec::with_capacity(n);
        let mut commitdate = Vec::with_capacity(n);
        let mut receiptdate = Vec::with_capacity(n);
        let mut shipinstruct = Vec::with_capacity(n);
        let mut shipmode = Vec::with_capacity(n);
        let mut comment = Vec::with_capacity(n);
        for i in 0..n {
            orderkey.push(s.index(orders as usize) as i64 + 1);
            partkey.push(s.index(parts as usize) as i64 + 1);
            suppkey.push(s.index(supps as usize) as i64 + 1);
            linenumber.push((i % 7) as i64 + 1);
            let q = s.uniform_i64(1, 51) as f64;
            quantity.push(q);
            extendedprice.push(q * s.uniform_f64(900.0, 2100.0));
            discount.push((s.index(11) as f64) / 100.0);
            tax.push((s.index(9) as f64) / 100.0);
            returnflag.push(s.pick(RETURN_FLAGS).to_string());
            linestatus.push(s.pick(LINE_STATUS).to_string());
            let ship = s.date();
            shipdate.push(ship);
            commitdate.push((ship + s.uniform_i64(1, 60)).min(DATE_RANGE_DAYS));
            receiptdate.push((ship + s.uniform_i64(1, 30)).min(DATE_RANGE_DAYS));
            shipinstruct.push(s.pick(SHIP_INSTRUCT).to_string());
            shipmode.push(s.pick(SHIP_MODES).to_string());
            comment.push(s.comment(2, 6));
        }
        let schema = Schema::from_pairs(&[
            ("l_orderkey", ColumnType::Int),
            ("l_partkey", ColumnType::Int),
            ("l_suppkey", ColumnType::Int),
            ("l_linenumber", ColumnType::Int),
            ("l_quantity", ColumnType::Float),
            ("l_extendedprice", ColumnType::Float),
            ("l_discount", ColumnType::Float),
            ("l_tax", ColumnType::Float),
            ("l_returnflag", ColumnType::Text),
            ("l_linestatus", ColumnType::Text),
            ("l_shipdate", ColumnType::Date),
            ("l_commitdate", ColumnType::Date),
            ("l_receiptdate", ColumnType::Date),
            ("l_shipinstruct", ColumnType::Text),
            ("l_shipmode", ColumnType::Text),
            ("l_comment", ColumnType::Text),
        ]);
        Table::new(
            "lineitem",
            schema,
            vec![
                ColumnData::Int(orderkey),
                ColumnData::Int(partkey),
                ColumnData::Int(suppkey),
                ColumnData::Int(linenumber),
                ColumnData::Float(quantity),
                ColumnData::Float(extendedprice),
                ColumnData::Float(discount),
                ColumnData::Float(tax),
                ColumnData::Text(returnflag),
                ColumnData::Text(linestatus),
                ColumnData::Date(shipdate),
                ColumnData::Date(commitdate),
                ColumnData::Date(receiptdate),
                ColumnData::Text(shipinstruct),
                ColumnData::Text(shipmode),
                ColumnData::Text(comment),
            ],
        )
        .expect("generator produces consistent columns")
    }

    fn orders(&self, s: &mut Sampler, n: usize) -> Table {
        let customers = self.key_domain(TpchTable::Customer);
        let mut orderkey = Vec::with_capacity(n);
        let mut custkey = Vec::with_capacity(n);
        let mut status = Vec::with_capacity(n);
        let mut totalprice = Vec::with_capacity(n);
        let mut orderdate = Vec::with_capacity(n);
        let mut priority = Vec::with_capacity(n);
        let mut clerk = Vec::with_capacity(n);
        let mut shippriority = Vec::with_capacity(n);
        let mut comment = Vec::with_capacity(n);
        for i in 0..n {
            orderkey.push(i as i64 + 1);
            custkey.push(s.index(customers as usize) as i64 + 1);
            status.push(s.pick(ORDER_STATUS).to_string());
            totalprice.push(s.uniform_f64(1000.0, 450000.0));
            orderdate.push(s.date());
            priority.push(s.pick(PRIORITIES).to_string());
            clerk.push(format!("Clerk#{:09}", s.index(1000)));
            shippriority.push(0);
            comment.push(s.comment(3, 8));
        }
        let schema = Schema::from_pairs(&[
            ("o_orderkey", ColumnType::Int),
            ("o_custkey", ColumnType::Int),
            ("o_orderstatus", ColumnType::Text),
            ("o_totalprice", ColumnType::Float),
            ("o_orderdate", ColumnType::Date),
            ("o_orderpriority", ColumnType::Text),
            ("o_clerk", ColumnType::Text),
            ("o_shippriority", ColumnType::Int),
            ("o_comment", ColumnType::Text),
        ]);
        Table::new(
            "orders",
            schema,
            vec![
                ColumnData::Int(orderkey),
                ColumnData::Int(custkey),
                ColumnData::Text(status),
                ColumnData::Float(totalprice),
                ColumnData::Date(orderdate),
                ColumnData::Text(priority),
                ColumnData::Text(clerk),
                ColumnData::Int(shippriority),
                ColumnData::Text(comment),
            ],
        )
        .expect("generator produces consistent columns")
    }

    fn customer(&self, s: &mut Sampler, n: usize) -> Table {
        let mut custkey = Vec::with_capacity(n);
        let mut name = Vec::with_capacity(n);
        let mut address = Vec::with_capacity(n);
        let mut nationkey = Vec::with_capacity(n);
        let mut phone = Vec::with_capacity(n);
        let mut acctbal = Vec::with_capacity(n);
        let mut segment = Vec::with_capacity(n);
        let mut comment = Vec::with_capacity(n);
        for i in 0..n {
            custkey.push(i as i64 + 1);
            name.push(format!("Customer#{:09}", i + 1));
            address.push(s.comment(2, 4));
            nationkey.push(s.index(NATIONS.len()) as i64);
            phone.push(s.phone());
            acctbal.push(s.uniform_f64(-999.0, 9999.0));
            segment.push(s.pick(SEGMENTS).to_string());
            comment.push(s.comment(4, 10));
        }
        let schema = Schema::from_pairs(&[
            ("c_custkey", ColumnType::Int),
            ("c_name", ColumnType::Text),
            ("c_address", ColumnType::Text),
            ("c_nationkey", ColumnType::Int),
            ("c_phone", ColumnType::Text),
            ("c_acctbal", ColumnType::Float),
            ("c_mktsegment", ColumnType::Text),
            ("c_comment", ColumnType::Text),
        ]);
        Table::new(
            "customer",
            schema,
            vec![
                ColumnData::Int(custkey),
                ColumnData::Text(name),
                ColumnData::Text(address),
                ColumnData::Int(nationkey),
                ColumnData::Text(phone),
                ColumnData::Float(acctbal),
                ColumnData::Text(segment),
                ColumnData::Text(comment),
            ],
        )
        .expect("generator produces consistent columns")
    }

    fn part(&self, s: &mut Sampler, n: usize) -> Table {
        let mut partkey = Vec::with_capacity(n);
        let mut name = Vec::with_capacity(n);
        let mut mfgr = Vec::with_capacity(n);
        let mut brand = Vec::with_capacity(n);
        let mut ptype = Vec::with_capacity(n);
        let mut size = Vec::with_capacity(n);
        let mut container = Vec::with_capacity(n);
        let mut retailprice = Vec::with_capacity(n);
        let mut comment = Vec::with_capacity(n);
        for i in 0..n {
            partkey.push(i as i64 + 1);
            let c1 = s.pick(COLORS);
            let c2 = s.pick(COLORS);
            name.push(format!("{c1} {c2}"));
            mfgr.push(format!("Manufacturer#{}", s.index(5) + 1));
            brand.push(s.pick(BRANDS).to_string());
            ptype.push(s.pick(TYPES).to_string());
            size.push(s.uniform_i64(1, 51));
            container.push(s.pick(CONTAINERS).to_string());
            retailprice.push(900.0 + (i % 1000) as f64 + s.uniform_f64(0.0, 100.0));
            comment.push(s.comment(1, 4));
        }
        let schema = Schema::from_pairs(&[
            ("p_partkey", ColumnType::Int),
            ("p_name", ColumnType::Text),
            ("p_mfgr", ColumnType::Text),
            ("p_brand", ColumnType::Text),
            ("p_type", ColumnType::Text),
            ("p_size", ColumnType::Int),
            ("p_container", ColumnType::Text),
            ("p_retailprice", ColumnType::Float),
            ("p_comment", ColumnType::Text),
        ]);
        Table::new(
            "part",
            schema,
            vec![
                ColumnData::Int(partkey),
                ColumnData::Text(name),
                ColumnData::Text(mfgr),
                ColumnData::Text(brand),
                ColumnData::Text(ptype),
                ColumnData::Int(size),
                ColumnData::Text(container),
                ColumnData::Float(retailprice),
                ColumnData::Text(comment),
            ],
        )
        .expect("generator produces consistent columns")
    }

    fn supplier(&self, s: &mut Sampler, n: usize) -> Table {
        let mut suppkey = Vec::with_capacity(n);
        let mut name = Vec::with_capacity(n);
        let mut address = Vec::with_capacity(n);
        let mut nationkey = Vec::with_capacity(n);
        let mut phone = Vec::with_capacity(n);
        let mut acctbal = Vec::with_capacity(n);
        let mut comment = Vec::with_capacity(n);
        for i in 0..n {
            suppkey.push(i as i64 + 1);
            name.push(format!("Supplier#{:09}", i + 1));
            address.push(s.comment(2, 4));
            nationkey.push(s.index(NATIONS.len()) as i64);
            phone.push(s.phone());
            acctbal.push(s.uniform_f64(-999.0, 9999.0));
            comment.push(s.comment(3, 8));
        }
        let schema = Schema::from_pairs(&[
            ("s_suppkey", ColumnType::Int),
            ("s_name", ColumnType::Text),
            ("s_address", ColumnType::Text),
            ("s_nationkey", ColumnType::Int),
            ("s_phone", ColumnType::Text),
            ("s_acctbal", ColumnType::Float),
            ("s_comment", ColumnType::Text),
        ]);
        Table::new(
            "supplier",
            schema,
            vec![
                ColumnData::Int(suppkey),
                ColumnData::Text(name),
                ColumnData::Text(address),
                ColumnData::Int(nationkey),
                ColumnData::Text(phone),
                ColumnData::Float(acctbal),
                ColumnData::Text(comment),
            ],
        )
        .expect("generator produces consistent columns")
    }

    fn partsupp(&self, s: &mut Sampler, n: usize) -> Table {
        let parts = self.key_domain(TpchTable::Part);
        let supps = self.key_domain(TpchTable::Supplier);
        let mut partkey = Vec::with_capacity(n);
        let mut suppkey = Vec::with_capacity(n);
        let mut availqty = Vec::with_capacity(n);
        let mut supplycost = Vec::with_capacity(n);
        let mut comment = Vec::with_capacity(n);
        for _ in 0..n {
            partkey.push(s.index(parts as usize) as i64 + 1);
            suppkey.push(s.index(supps as usize) as i64 + 1);
            availqty.push(s.uniform_i64(1, 10000));
            supplycost.push(s.uniform_f64(1.0, 1000.0));
            comment.push(s.comment(5, 12));
        }
        let schema = Schema::from_pairs(&[
            ("ps_partkey", ColumnType::Int),
            ("ps_suppkey", ColumnType::Int),
            ("ps_availqty", ColumnType::Int),
            ("ps_supplycost", ColumnType::Float),
            ("ps_comment", ColumnType::Text),
        ]);
        Table::new(
            "partsupp",
            schema,
            vec![
                ColumnData::Int(partkey),
                ColumnData::Int(suppkey),
                ColumnData::Int(availqty),
                ColumnData::Float(supplycost),
                ColumnData::Text(comment),
            ],
        )
        .expect("generator produces consistent columns")
    }

    fn nation(&self) -> Table {
        let n = NATIONS.len();
        let schema = Schema::from_pairs(&[
            ("n_nationkey", ColumnType::Int),
            ("n_name", ColumnType::Text),
            ("n_regionkey", ColumnType::Int),
            ("n_comment", ColumnType::Text),
        ]);
        Table::new(
            "nation",
            schema,
            vec![
                ColumnData::Int((0..n as i64).collect()),
                ColumnData::Text(NATIONS.iter().map(|s| s.to_string()).collect()),
                ColumnData::Int((0..n as i64).map(|i| i % 5).collect()),
                ColumnData::Text(
                    (0..n)
                        .map(|i| {
                            format!(
                                "{} established trading nation",
                                COMMENT_WORDS[i % COMMENT_WORDS.len()]
                            )
                        })
                        .collect(),
                ),
            ],
        )
        .expect("static nation table")
    }

    fn region(&self) -> Table {
        let n = REGIONS.len();
        let schema = Schema::from_pairs(&[
            ("r_regionkey", ColumnType::Int),
            ("r_name", ColumnType::Text),
            ("r_comment", ColumnType::Text),
        ]);
        Table::new(
            "region",
            schema,
            vec![
                ColumnData::Int((0..n as i64).collect()),
                ColumnData::Text(REGIONS.iter().map(|s| s.to_string()).collect()),
                ColumnData::Text(
                    (0..n)
                        .map(|i| {
                            format!(
                                "{} region of commerce",
                                COMMENT_WORDS[i % COMMENT_WORDS.len()]
                            )
                        })
                        .collect(),
                ),
            ],
        )
        .expect("static region table")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{serialize, DataLayout};

    #[test]
    fn all_eight_tables_generate_with_expected_schemas() {
        let gen = TpchGenerator::new(TpchOptions::default()).unwrap();
        let tables = gen.generate_all();
        assert_eq!(tables.len(), 8);
        let lineitem = &tables[0];
        assert_eq!(lineitem.name, "lineitem");
        assert_eq!(lineitem.n_columns(), 16);
        assert_eq!(lineitem.n_rows(), 6000);
        let orders = tables.iter().find(|t| t.name == "orders").unwrap();
        assert_eq!(orders.n_columns(), 9);
        let nation = tables.iter().find(|t| t.name == "nation").unwrap();
        assert_eq!(nation.n_rows(), 25);
        let region = tables.iter().find(|t| t.name == "region").unwrap();
        assert_eq!(region.n_rows(), 5);
    }

    #[test]
    fn scale_factor_scales_row_counts_but_not_fixed_tables() {
        let small = TpchGenerator::new(TpchOptions {
            scale_factor: 0.1,
            ..Default::default()
        })
        .unwrap();
        let big = TpchGenerator::new(TpchOptions {
            scale_factor: 2.0,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(small.row_count(TpchTable::Lineitem), 600);
        assert_eq!(big.row_count(TpchTable::Lineitem), 12000);
        assert_eq!(small.row_count(TpchTable::Nation), 25);
        assert_eq!(big.row_count(TpchTable::Nation), 25);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let opts = TpchOptions {
            scale_factor: 0.05,
            ..Default::default()
        };
        let a = TpchGenerator::new(opts.clone())
            .unwrap()
            .generate(TpchTable::Orders);
        let b = TpchGenerator::new(opts)
            .unwrap()
            .generate(TpchTable::Orders);
        assert_eq!(a, b);
    }

    #[test]
    fn skew_concentrates_foreign_keys() {
        // Under Zipf skew the most common partkey should account for a large
        // share of lineitem rows; under uniform it should not.
        let uniform = TpchGenerator::new(TpchOptions {
            scale_factor: 0.2,
            ..Default::default()
        })
        .unwrap()
        .generate(TpchTable::Lineitem);
        let skewed = TpchGenerator::new(TpchOptions {
            scale_factor: 0.2,
            skew: Some(3.0),
            ..Default::default()
        })
        .unwrap()
        .generate(TpchTable::Lineitem);

        let top_share = |t: &Table| {
            let ColumnData::Int(keys) = t.column_by_name("l_partkey").unwrap() else {
                panic!("partkey should be an int column");
            };
            let mut counts = std::collections::HashMap::new();
            for k in keys {
                *counts.entry(*k).or_insert(0usize) += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            max as f64 / keys.len() as f64
        };
        assert!(
            top_share(&skewed) > 0.5,
            "skewed top share = {}",
            top_share(&skewed)
        );
        assert!(
            top_share(&uniform) < 0.1,
            "uniform top share = {}",
            top_share(&uniform)
        );
    }

    #[test]
    fn skewed_data_is_more_compressible_friendly() {
        // More repetition in the skewed variant means the CSV bytes contain
        // fewer distinct substrings; a cheap proxy is that the dictionary-
        // encoded columnar form shrinks more relative to CSV.
        let uniform = TpchGenerator::new(TpchOptions {
            scale_factor: 0.2,
            ..Default::default()
        })
        .unwrap()
        .generate(TpchTable::Orders);
        let skewed = TpchGenerator::new(TpchOptions {
            scale_factor: 0.2,
            skew: Some(3.0),
            ..Default::default()
        })
        .unwrap()
        .generate(TpchTable::Orders);
        let ratio = |t: &Table| {
            let csv = serialize(t, DataLayout::Csv).len() as f64;
            let col = serialize(t, DataLayout::Columnar).len() as f64;
            col / csv
        };
        assert!(ratio(&skewed) <= ratio(&uniform) + 0.05);
    }

    #[test]
    fn invalid_options_rejected() {
        assert!(TpchGenerator::new(TpchOptions {
            scale_factor: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(TpchGenerator::new(TpchOptions {
            scale_factor: f64::NAN,
            ..Default::default()
        })
        .is_err());
        assert!(TpchGenerator::new(TpchOptions {
            skew: Some(-2.0),
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn dates_fall_in_tpch_window() {
        let gen = TpchGenerator::new(TpchOptions {
            scale_factor: 0.1,
            ..Default::default()
        })
        .unwrap();
        let li = gen.generate(TpchTable::Lineitem);
        let ColumnData::Date(dates) = li.column_by_name("l_shipdate").unwrap() else {
            panic!("shipdate should be a date column");
        };
        assert!(dates.iter().all(|&d| (0..=DATE_RANGE_DAYS).contains(&d)));
    }
}
