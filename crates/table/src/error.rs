//! Error type for the table crate.

use std::fmt;

/// Errors produced when building or manipulating tables.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A column was added whose length differs from the table's row count.
    ColumnLengthMismatch {
        /// Name of the column being added.
        column: String,
        /// Expected number of rows.
        expected: usize,
        /// Length actually provided.
        found: usize,
    },
    /// A column name was referenced that does not exist.
    UnknownColumn(String),
    /// The schema and the provided column data disagree on types.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Expected type name.
        expected: &'static str,
        /// Provided type name.
        found: &'static str,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// A generator or format option was invalid.
    InvalidOption(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ColumnLengthMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "column {column} has {found} values but the table has {expected} rows"
            ),
            TableError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            TableError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(f, "column {column}: expected {expected}, found {found}"),
            TableError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (table has {len} rows)")
            }
            TableError::InvalidOption(msg) => write!(f, "invalid option: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = TableError::ColumnLengthMismatch {
            column: "price".into(),
            expected: 10,
            found: 7,
        };
        let s = e.to_string();
        assert!(s.contains("price") && s.contains("10") && s.contains('7'));
        assert!(TableError::UnknownColumn("x".into())
            .to_string()
            .contains('x'));
    }
}
