//! Typed column storage and the in-memory [`Table`].

use crate::error::TableError;
use crate::schema::{ColumnType, Schema};

/// Column values, stored column-major.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Text values.
    Text(Vec<String>),
    /// Dates as days since epoch.
    Date(Vec<i64>),
}

impl ColumnData {
    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Date(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical type of this column data.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Float(_) => ColumnType::Float,
            ColumnData::Text(_) => ColumnType::Text,
            ColumnData::Date(_) => ColumnType::Date,
        }
    }

    /// Render the value at `row` as a string (the CSV cell representation).
    pub fn value_string(&self, row: usize) -> String {
        match self {
            ColumnData::Int(v) => v[row].to_string(),
            ColumnData::Float(v) => format!("{:.2}", v[row]),
            ColumnData::Text(v) => v[row].clone(),
            ColumnData::Date(v) => format_date(v[row]),
        }
    }

    /// Select a subset of rows by index, preserving order.
    pub fn take(&self, rows: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Float(v) => ColumnData::Float(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Text(v) => ColumnData::Text(rows.iter().map(|&r| v[r].clone()).collect()),
            ColumnData::Date(v) => ColumnData::Date(rows.iter().map(|&r| v[r]).collect()),
        }
    }

    /// Select a contiguous row range `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Text(v) => ColumnData::Text(v[start..end].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[start..end].to_vec()),
        }
    }

    /// Compare rows `a` and `b` for sorting.
    fn compare(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self {
            ColumnData::Int(v) => v[a].cmp(&v[b]),
            ColumnData::Date(v) => v[a].cmp(&v[b]),
            ColumnData::Float(v) => v[a].partial_cmp(&v[b]).unwrap_or(Ordering::Equal),
            ColumnData::Text(v) => v[a].cmp(&v[b]),
        }
    }
}

/// Render a day-number as an ISO-ish date string (YYYY-MM-DD), treating the
/// epoch as 1992-01-01 (the start of the TPC-H date range) and using a
/// simplified 365-day year / 30-day month calendar. The goal is realistic
/// looking, realistic-entropy date strings, not calendrical accuracy.
pub fn format_date(days_since_epoch: i64) -> String {
    let year = 1992 + days_since_epoch / 365;
    let rem = days_since_epoch % 365;
    let month = (rem / 30).min(11) + 1;
    let day = (rem % 30) + 1;
    format!("{year:04}-{month:02}-{day:02}")
}

/// An in-memory table: a schema plus column-major data.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (e.g. "lineitem").
    pub name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    n_rows: usize,
}

impl Table {
    /// Create a table from a schema and matching column data.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<Self, TableError> {
        let name = name.into();
        if schema.len() != columns.len() {
            return Err(TableError::InvalidOption(format!(
                "schema has {} columns but {} column arrays were provided",
                schema.len(),
                columns.len()
            )));
        }
        let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (def, col) in schema.columns().iter().zip(&columns) {
            if col.len() != n_rows {
                return Err(TableError::ColumnLengthMismatch {
                    column: def.name.clone(),
                    expected: n_rows,
                    found: col.len(),
                });
            }
            if col.column_type() != def.column_type {
                return Err(TableError::TypeMismatch {
                    column: def.name.clone(),
                    expected: def.column_type.name(),
                    found: col.column_type().name(),
                });
            }
        }
        Ok(Table {
            name,
            schema,
            columns,
            n_rows,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Column data by index.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Column data by name.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnData, TableError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// Render one row as CSV cell strings.
    pub fn row_strings(&self, row: usize) -> Result<Vec<String>, TableError> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.value_string(row)).collect())
    }

    /// A new table containing only the given rows (in the given order).
    pub fn take_rows(&self, rows: &[usize]) -> Result<Table, TableError> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.n_rows) {
            return Err(TableError::RowOutOfBounds {
                row: bad,
                len: self.n_rows,
            });
        }
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(rows)).collect(),
            n_rows: rows.len(),
        })
    }

    /// A new table containing the contiguous row range `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Table, TableError> {
        let end = end.min(self.n_rows);
        if start > end {
            return Err(TableError::RowOutOfBounds {
                row: start,
                len: self.n_rows,
            });
        }
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(start, end)).collect(),
            n_rows: end - start,
        })
    }

    /// A new table with only the named columns (projection).
    pub fn project(&self, names: &[&str]) -> Result<Table, TableError> {
        let mut defs = Vec::with_capacity(names.len());
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self
                .schema
                .index_of(n)
                .ok_or_else(|| TableError::UnknownColumn(n.to_string()))?;
            defs.push(self.schema.columns()[idx].clone());
            cols.push(self.columns[idx].clone());
        }
        Ok(Table {
            name: self.name.clone(),
            schema: Schema::new(defs),
            columns: cols,
            n_rows: self.n_rows,
        })
    }

    /// A new table sorted (stably) by the named column ascending. Used for
    /// the "sorting data" study of the compression predictor.
    pub fn sort_by(&self, column: &str) -> Result<Table, TableError> {
        let col = self.column_by_name(column)?;
        let mut order: Vec<usize> = (0..self.n_rows).collect();
        order.sort_by(|&a, &b| col.compare(a, b));
        self.take_rows(&order)
    }

    /// Split the table into consecutive "files" of at most `rows_per_file`
    /// rows each. This models how a dataset is physically laid out as many
    /// parquet files in the data lake, which is the unit the partitioner
    /// (DATAPART) works with.
    pub fn split_into_files(&self, rows_per_file: usize) -> Result<Vec<Table>, TableError> {
        if rows_per_file == 0 {
            return Err(TableError::InvalidOption(
                "rows_per_file must be > 0".to_string(),
            ));
        }
        let mut files = Vec::new();
        let mut start = 0;
        let mut index = 0usize;
        while start < self.n_rows {
            let end = (start + rows_per_file).min(self.n_rows);
            let mut t = self.slice_rows(start, end)?;
            t.name = format!("{}-file-{:04}", self.name, index);
            files.push(t);
            start = end;
            index += 1;
        }
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("price", ColumnType::Float),
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("ship", ColumnType::Date),
        ]);
        Table::new(
            "orders",
            schema,
            vec![
                ColumnData::Int(vec![3, 1, 2]),
                ColumnData::Float(vec![9.5, 2.25, 7.0]),
                ColumnData::Text(vec!["c".into(), "a".into(), "b".into()]),
                ColumnData::Date(vec![10, 400, 35]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths_and_types() {
        let schema = Schema::from_pairs(&[("a", ColumnType::Int), ("b", ColumnType::Float)]);
        let bad_len = Table::new(
            "t",
            schema.clone(),
            vec![ColumnData::Int(vec![1, 2]), ColumnData::Float(vec![1.0])],
        );
        assert!(matches!(
            bad_len,
            Err(TableError::ColumnLengthMismatch { .. })
        ));
        let bad_type = Table::new(
            "t",
            schema.clone(),
            vec![ColumnData::Int(vec![1]), ColumnData::Int(vec![1])],
        );
        assert!(matches!(bad_type, Err(TableError::TypeMismatch { .. })));
        let bad_count = Table::new("t", schema, vec![ColumnData::Int(vec![1])]);
        assert!(bad_count.is_err());
    }

    #[test]
    fn row_strings_and_date_formatting() {
        let t = small_table();
        let row = t.row_strings(0).unwrap();
        assert_eq!(row, vec!["3", "9.50", "c", "1992-01-11"]);
        assert!(t.row_strings(5).is_err());
        assert_eq!(format_date(0), "1992-01-01");
        assert_eq!(format_date(365), "1993-01-01");
    }

    #[test]
    fn take_slice_project_sort() {
        let t = small_table();
        let taken = t.take_rows(&[2, 0]).unwrap();
        assert_eq!(taken.n_rows(), 2);
        assert_eq!(taken.row_strings(0).unwrap()[0], "2");

        let sliced = t.slice_rows(1, 3).unwrap();
        assert_eq!(sliced.n_rows(), 2);
        assert_eq!(sliced.row_strings(0).unwrap()[0], "1");

        let proj = t.project(&["name", "id"]).unwrap();
        assert_eq!(proj.n_columns(), 2);
        assert_eq!(proj.schema().names(), vec!["name", "id"]);
        assert!(t.project(&["nope"]).is_err());

        let sorted = t.sort_by("id").unwrap();
        let ids: Vec<String> = (0..3)
            .map(|r| sorted.row_strings(r).unwrap()[0].clone())
            .collect();
        assert_eq!(ids, vec!["1", "2", "3"]);
        assert!(t.sort_by("nope").is_err());
    }

    #[test]
    fn out_of_bounds_take_is_rejected() {
        let t = small_table();
        assert!(t.take_rows(&[0, 99]).is_err());
        assert!(t.slice_rows(3, 2).is_err());
    }

    #[test]
    fn split_into_files_covers_all_rows() {
        let t = small_table();
        let files = t.split_into_files(2).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].n_rows(), 2);
        assert_eq!(files[1].n_rows(), 1);
        assert!(files[0].name.contains("file-0000"));
        assert!(t.split_into_files(0).is_err());
    }

    #[test]
    fn column_lookup_by_name() {
        let t = small_table();
        assert_eq!(t.column_by_name("price").unwrap().len(), 3);
        assert!(t.column_by_name("missing").is_err());
        assert_eq!(t.column(0).column_type(), ColumnType::Int);
    }
}
