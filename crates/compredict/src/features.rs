//! Feature extraction for compression prediction.
//!
//! The paper's key finding is that dataset size or datatype alone do not
//! predict compression well; what does is the *weighted entropy* per data
//! type,
//!
//! ```text
//! H(P, d) = - Σ_{s ∈ P[:, d]} len(s) · pr(s) · log(pr(s))
//! ```
//!
//! computed over the string representations `s` of all values of columns of
//! type `d` in partition `P` — an approximate measure of how much repetition
//! the columns of that type carry. The *bucketed* variant computes the same
//! quantity per successive 20% of rows to capture the effect of sorting.

use scope_table::{ColumnData, ColumnType, Table};
use std::collections::HashMap;

/// Which feature set to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// Only the serialized size (and row count) of the partition — the
    /// baseline the paper shows is insufficient on query-derived samples.
    SizeOnly,
    /// Size features plus one weighted-entropy feature per data type.
    WeightedEntropy,
    /// Size features plus bucketed (per-20%-of-rows) weighted entropy per
    /// data type — the variant proposed for sorted data.
    BucketedEntropy,
}

impl FeatureSet {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureSet::SizeOnly => "size",
            FeatureSet::WeightedEntropy => "weighted-entropy",
            FeatureSet::BucketedEntropy => "bucketed-weighted-entropy",
        }
    }
}

/// Number of row buckets used by [`FeatureSet::BucketedEntropy`] (successive
/// 20% chunks, as in the paper).
pub const ENTROPY_BUCKETS: usize = 5;

/// Extracts feature vectors from tables / partitions.
#[derive(Debug, Clone, Copy)]
pub struct FeatureExtractor {
    /// The feature set to extract.
    pub feature_set: FeatureSet,
}

impl FeatureExtractor {
    /// Create an extractor for the given feature set.
    pub fn new(feature_set: FeatureSet) -> Self {
        FeatureExtractor { feature_set }
    }

    /// Names of the features produced, in order.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = vec!["rows".to_string(), "approx_bytes".to_string()];
        match self.feature_set {
            FeatureSet::SizeOnly => {}
            FeatureSet::WeightedEntropy => {
                for t in ColumnType::all() {
                    names.push(format!("H_{}", t.name()));
                }
            }
            FeatureSet::BucketedEntropy => {
                for bucket in 0..ENTROPY_BUCKETS {
                    for t in ColumnType::all() {
                        names.push(format!("H_{}_b{}", t.name(), bucket));
                    }
                }
            }
        }
        names
    }

    /// Extract the feature vector for a table (partition).
    pub fn extract(&self, table: &Table) -> Vec<f64> {
        let rows = table.n_rows() as f64;
        let approx_bytes = approximate_bytes(table);
        let mut features = vec![rows, approx_bytes];
        match self.feature_set {
            FeatureSet::SizeOnly => {}
            FeatureSet::WeightedEntropy => {
                let h = weighted_entropy_by_type(table, 0, table.n_rows());
                for t in ColumnType::all() {
                    features.push(*h.get(&t).unwrap_or(&0.0));
                }
            }
            FeatureSet::BucketedEntropy => {
                let n = table.n_rows();
                for bucket in 0..ENTROPY_BUCKETS {
                    let start = bucket * n / ENTROPY_BUCKETS;
                    let end = ((bucket + 1) * n / ENTROPY_BUCKETS).max(start);
                    let h = weighted_entropy_by_type(table, start, end);
                    for t in ColumnType::all() {
                        features.push(*h.get(&t).unwrap_or(&0.0));
                    }
                }
            }
        }
        features
    }
}

/// Approximate serialized size of the table in bytes (sum of CSV cell
/// lengths), cheap to compute and monotone in the actual size.
pub fn approximate_bytes(table: &Table) -> f64 {
    let mut total = 0usize;
    for c in 0..table.n_columns() {
        total += match table.column(c) {
            ColumnData::Int(v) => v.iter().map(|x| int_len(*x)).sum::<usize>(),
            ColumnData::Date(v) => v.len() * 10,
            ColumnData::Float(v) => v.iter().map(|x| int_len(*x as i64) + 3).sum::<usize>(),
            ColumnData::Text(v) => v.iter().map(|s| s.len()).sum::<usize>(),
        };
        total += table.n_rows(); // separators
    }
    total as f64
}

fn int_len(x: i64) -> usize {
    let mut len = if x < 0 { 1 } else { 0 };
    let mut v = x.unsigned_abs();
    loop {
        len += 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    len
}

/// Weighted entropy per data type over the row range `[start, end)`:
/// `H(P, d) = -Σ_s len(s) · pr(s) · log(pr(s))` where the sum runs over the
/// distinct string values `s` of columns of type `d`.
pub fn weighted_entropy_by_type(
    table: &Table,
    start: usize,
    end: usize,
) -> HashMap<ColumnType, f64> {
    let end = end.min(table.n_rows());
    let start = start.min(end);
    let mut result: HashMap<ColumnType, f64> = HashMap::new();
    // Group columns by type, pooling their values (the paper computes one
    // feature per data type present in the partition).
    for t in ColumnType::all() {
        // BTreeMap: the entropy sum below must run in a stable value order
        // so extracted features are bit-identical across runs.
        let mut counts: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        let mut total = 0usize;
        for c in 0..table.n_columns() {
            let col = table.column(c);
            if col.column_type() != t {
                continue;
            }
            for row in start..end {
                *counts.entry(col.value_string(row)).or_insert(0) += 1;
                total += 1;
            }
        }
        if total == 0 {
            continue;
        }
        let mut h = 0.0;
        for (s, count) in counts {
            let pr = count as f64 / total as f64;
            h -= s.len() as f64 * pr * pr.ln();
        }
        result.insert(t, h);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_table::{ColumnDef, Schema};

    fn table_with(text_values: Vec<&str>) -> Table {
        let n = text_values.len();
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("status", ColumnType::Text),
        ]);
        Table::new(
            "t",
            schema,
            vec![
                ColumnData::Int((0..n as i64).collect()),
                ColumnData::Text(text_values.into_iter().map(String::from).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn repeated_values_have_lower_entropy_than_distinct_ones() {
        let repetitive = table_with(vec!["OPEN"; 100]);
        let distinct = table_with(
            (0..100)
                .map(|i| Box::leak(format!("VAL{i:03}").into_boxed_str()) as &str)
                .collect(),
        );
        let h_rep = weighted_entropy_by_type(&repetitive, 0, 100);
        let h_dis = weighted_entropy_by_type(&distinct, 0, 100);
        // A constant column has zero entropy; 100 distinct values have a lot.
        assert!(h_rep[&ColumnType::Text] < 1e-9);
        assert!(h_dis[&ColumnType::Text] > 1.0);
    }

    #[test]
    fn entropy_weights_by_string_length() {
        let short = table_with(vec!["A", "B", "A", "B"]);
        let long = table_with(vec!["AAAAAAAAAA", "BBBBBBBBBB", "AAAAAAAAAA", "BBBBBBBBBB"]);
        let h_short = weighted_entropy_by_type(&short, 0, 4)[&ColumnType::Text];
        let h_long = weighted_entropy_by_type(&long, 0, 4)[&ColumnType::Text];
        assert!((h_long / h_short - 10.0).abs() < 1e-6);
    }

    #[test]
    fn feature_vector_lengths_match_names() {
        let t = table_with(vec!["x", "y", "z", "x"]);
        for set in [
            FeatureSet::SizeOnly,
            FeatureSet::WeightedEntropy,
            FeatureSet::BucketedEntropy,
        ] {
            let ex = FeatureExtractor::new(set);
            assert_eq!(ex.extract(&t).len(), ex.feature_names().len(), "{set:?}");
        }
        assert_eq!(
            FeatureExtractor::new(FeatureSet::SizeOnly)
                .extract(&t)
                .len(),
            2
        );
        assert_eq!(
            FeatureExtractor::new(FeatureSet::WeightedEntropy)
                .extract(&t)
                .len(),
            2 + 4
        );
        assert_eq!(
            FeatureExtractor::new(FeatureSet::BucketedEntropy)
                .extract(&t)
                .len(),
            2 + 4 * ENTROPY_BUCKETS
        );
    }

    #[test]
    fn approximate_bytes_grows_with_rows() {
        let small = table_with(vec!["abc"; 10]);
        let large = table_with(vec!["abc"; 100]);
        assert!(approximate_bytes(&large) > approximate_bytes(&small));
        assert!(approximate_bytes(&small) > 0.0);
    }

    #[test]
    fn int_len_handles_signs_and_zero() {
        assert_eq!(int_len(0), 1);
        assert_eq!(int_len(7), 1);
        assert_eq!(int_len(12345), 5);
        assert_eq!(int_len(-42), 3);
    }

    #[test]
    fn bucketed_entropy_differs_for_sorted_data() {
        // A column where values cluster by position: sorted data has
        // low entropy within each bucket even though global entropy is high.
        let values: Vec<&str> = (0..100)
            .map(|i| if i < 50 { "AAAA" } else { "BBBB" })
            .collect();
        let sorted = table_with(values);
        let ex = FeatureExtractor::new(FeatureSet::BucketedEntropy);
        let features = ex.extract(&sorted);
        // Per-bucket text entropies are at positions 2 + 4*b + 2 (text is the
        // third type in ColumnType::all()). Buckets fully inside a sorted
        // run are constant -> zero entropy; only the bucket straddling the
        // A/B boundary (bucket 2, rows 40..60) carries entropy.
        let global = FeatureExtractor::new(FeatureSet::WeightedEntropy).extract(&sorted);
        let global_text = global[2 + 2];
        assert!(global_text > 0.5);
        for b in [0, 1, 3, 4] {
            let text_idx = 2 + 4 * b + 2;
            assert!(
                features[text_idx].abs() < 1e-9,
                "bucket {b} should be constant"
            );
        }
        let mean_bucket_text: f64 = (0..ENTROPY_BUCKETS)
            .map(|b| features[2 + 4 * b + 2])
            .sum::<f64>()
            / ENTROPY_BUCKETS as f64;
        assert!(mean_bucket_text < global_text);
    }

    #[test]
    fn feature_set_names() {
        assert_eq!(FeatureSet::SizeOnly.name(), "size");
        assert_eq!(FeatureSet::WeightedEntropy.name(), "weighted-entropy");
        assert_eq!(
            FeatureSet::BucketedEntropy.name(),
            "bucketed-weighted-entropy"
        );
    }

    #[test]
    fn empty_row_range_yields_no_entropy_entries() {
        let t = table_with(vec!["a", "b"]);
        let h = weighted_entropy_by_type(&t, 2, 2);
        assert!(h.is_empty());
    }
}
