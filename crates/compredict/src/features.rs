//! Feature extraction for compression prediction.
//!
//! The paper's key finding is that dataset size or datatype alone do not
//! predict compression well; what does is the *weighted entropy* per data
//! type,
//!
//! ```text
//! H(P, d) = - Σ_{s ∈ P[:, d]} len(s) · pr(s) · log(pr(s))
//! ```
//!
//! computed over the string representations `s` of all values of columns of
//! type `d` in partition `P` — an approximate measure of how much repetition
//! the columns of that type carry. The *bucketed* variant computes the same
//! quantity per successive 20% of rows to capture the effect of sorting.

use scope_table::{ColumnData, ColumnType, Table};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a: a tiny non-cryptographic hasher for the per-cell counting maps
/// — the keys are in-memory column values, not attacker-controlled input,
/// so the default SipHash's DoS resistance buys nothing here and its
/// per-key cost is the hot-path tax.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf29ce484222325) // FNV offset basis
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// Which feature set to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// Only the serialized size (and row count) of the partition — the
    /// baseline the paper shows is insufficient on query-derived samples.
    SizeOnly,
    /// Size features plus one weighted-entropy feature per data type.
    WeightedEntropy,
    /// Size features plus bucketed (per-20%-of-rows) weighted entropy per
    /// data type — the variant proposed for sorted data.
    BucketedEntropy,
}

impl FeatureSet {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureSet::SizeOnly => "size",
            FeatureSet::WeightedEntropy => "weighted-entropy",
            FeatureSet::BucketedEntropy => "bucketed-weighted-entropy",
        }
    }
}

/// Number of row buckets used by [`FeatureSet::BucketedEntropy`] (successive
/// 20% chunks, as in the paper).
pub const ENTROPY_BUCKETS: usize = 5;

/// Extracts feature vectors from tables / partitions.
#[derive(Debug, Clone, Copy)]
pub struct FeatureExtractor {
    /// The feature set to extract.
    pub feature_set: FeatureSet,
}

impl FeatureExtractor {
    /// Create an extractor for the given feature set.
    pub fn new(feature_set: FeatureSet) -> Self {
        FeatureExtractor { feature_set }
    }

    /// Names of the features produced, in order.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = vec!["rows".to_string(), "approx_bytes".to_string()];
        match self.feature_set {
            FeatureSet::SizeOnly => {}
            FeatureSet::WeightedEntropy => {
                for t in ColumnType::all() {
                    names.push(format!("H_{}", t.name()));
                }
            }
            FeatureSet::BucketedEntropy => {
                for bucket in 0..ENTROPY_BUCKETS {
                    for t in ColumnType::all() {
                        names.push(format!("H_{}_b{}", t.name(), bucket));
                    }
                }
            }
        }
        names
    }

    /// Extract the feature vector for a table (partition).
    pub fn extract(&self, table: &Table) -> Vec<f64> {
        let rows = table.n_rows() as f64;
        let approx_bytes = approximate_bytes(table);
        let mut features = vec![rows, approx_bytes];
        match self.feature_set {
            FeatureSet::SizeOnly => {}
            FeatureSet::WeightedEntropy => {
                let h = weighted_entropy_by_type(table, 0, table.n_rows());
                for t in ColumnType::all() {
                    features.push(*h.get(&t).unwrap_or(&0.0));
                }
            }
            FeatureSet::BucketedEntropy => {
                let n = table.n_rows();
                for bucket in 0..ENTROPY_BUCKETS {
                    let start = bucket * n / ENTROPY_BUCKETS;
                    let end = ((bucket + 1) * n / ENTROPY_BUCKETS).max(start);
                    let h = weighted_entropy_by_type(table, start, end);
                    for t in ColumnType::all() {
                        features.push(*h.get(&t).unwrap_or(&0.0));
                    }
                }
            }
        }
        features
    }
}

/// Approximate serialized size of the table in bytes (sum of CSV cell
/// lengths), cheap to compute and monotone in the actual size.
pub fn approximate_bytes(table: &Table) -> f64 {
    let mut total = 0usize;
    for c in 0..table.n_columns() {
        total += match table.column(c) {
            ColumnData::Int(v) => v.iter().map(|x| int_len(*x)).sum::<usize>(),
            ColumnData::Date(v) => v.len() * 10,
            ColumnData::Float(v) => v.iter().map(|x| int_len(*x as i64) + 3).sum::<usize>(),
            ColumnData::Text(v) => v.iter().map(|s| s.len()).sum::<usize>(),
        };
        total += table.n_rows(); // separators
    }
    total as f64
}

fn int_len(x: i64) -> usize {
    let mut len = if x < 0 { 1 } else { 0 };
    let mut v = x.unsigned_abs();
    loop {
        len += 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    len
}

/// Weighted entropy per data type over the row range `[start, end)`:
/// `H(P, d) = -Σ_s len(s) · pr(s) · log(pr(s))` where the sum runs over the
/// distinct string values `s` of columns of type `d`.
///
/// This is the allocation-lean fast path: per cell it pays one numeric
/// hash-map bump (or a borrowed-`&str` tree insert for text columns) —
/// strings are rendered **once per distinct value**, not once per cell as
/// the seed implementation did
/// ([`weighted_entropy_by_type_reference`], preserved as the differential
/// oracle and the `train_bench` baseline). Distinct values are then merged
/// by their rendered string and the entropy sum runs in the same
/// lexicographic order over the same `(string, count)` pairs, so the
/// result is bit-for-bit identical.
pub fn weighted_entropy_by_type(
    table: &Table,
    start: usize,
    end: usize,
) -> HashMap<ColumnType, f64> {
    let end = end.min(table.n_rows());
    let start = start.min(end);
    let mut result: HashMap<ColumnType, f64> = HashMap::new();
    // Group columns by type, pooling their values (the paper computes one
    // feature per data type present in the partition).
    for t in ColumnType::all() {
        // BTreeMap: the entropy sum below must run in a stable value order
        // so extracted features are bit-identical across runs. Text keys
        // borrow straight from the column; numeric values are counted by
        // raw value first and rendered once per distinct value below.
        let mut counts: std::collections::BTreeMap<std::borrow::Cow<'_, str>, usize> =
            std::collections::BTreeMap::new();
        let mut text: FnvMap<&str, usize> = FnvMap::default();
        let mut numeric: FnvMap<i64, usize> = FnvMap::default();
        let mut float_bits: FnvMap<u64, usize> = FnvMap::default();
        let mut total = 0usize;
        for c in 0..table.n_columns() {
            let col = table.column(c);
            if col.column_type() != t {
                continue;
            }
            total += end - start;
            match col {
                ColumnData::Text(v) => {
                    for s in &v[start..end] {
                        *text.entry(s.as_str()).or_insert(0) += 1;
                    }
                }
                ColumnData::Int(v) | ColumnData::Date(v) => {
                    for &x in &v[start..end] {
                        *numeric.entry(x).or_insert(0) += 1;
                    }
                }
                ColumnData::Float(v) => {
                    // Key by bit pattern: distinct bit patterns may render
                    // to the same string (rounding), which the merge below
                    // handles exactly as per-cell string counting would.
                    for &x in &v[start..end] {
                        *float_bits.entry(x.to_bits()).or_insert(0) += 1;
                    }
                }
            }
        }
        // Merge the distinct values into one ordered map — text keys stay
        // borrowed, numerics are rendered once per distinct value.
        // scope-analyze: allow(no-unordered-iteration) — integer-count merge into an ordered BTreeMap; order-independent by construction
        for (s, count) in text {
            *counts.entry(std::borrow::Cow::Borrowed(s)).or_insert(0) += count;
        }
        // scope-analyze: allow(no-unordered-iteration) — integer-count merge into an ordered BTreeMap; order-independent by construction
        for (x, count) in numeric {
            let s = match t {
                ColumnType::Date => scope_table::column::format_date(x),
                _ => x.to_string(),
            };
            *counts.entry(std::borrow::Cow::Owned(s)).or_insert(0) += count;
        }
        // scope-analyze: allow(no-unordered-iteration) — integer-count merge into an ordered BTreeMap; order-independent by construction
        for (bits, count) in float_bits {
            let s = format!("{:.2}", f64::from_bits(bits));
            *counts.entry(std::borrow::Cow::Owned(s)).or_insert(0) += count;
        }
        if total == 0 {
            continue;
        }
        let mut h = 0.0;
        for (s, count) in counts {
            let pr = count as f64 / total as f64;
            h -= s.len() as f64 * pr * pr.ln();
        }
        result.insert(t, h);
    }
    result
}

/// The seed implementation of [`weighted_entropy_by_type`]: one rendered
/// `String` map key **per cell**. Preserved as the differential oracle
/// (bit-for-bit equality is pinned in this module's tests and in
/// `tests/differential_learn.rs`) and as the before/after baseline the
/// `train_bench` bin measures feature extraction against.
pub fn weighted_entropy_by_type_reference(
    table: &Table,
    start: usize,
    end: usize,
) -> HashMap<ColumnType, f64> {
    let end = end.min(table.n_rows());
    let start = start.min(end);
    let mut result: HashMap<ColumnType, f64> = HashMap::new();
    for t in ColumnType::all() {
        let mut counts: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        let mut total = 0usize;
        for c in 0..table.n_columns() {
            let col = table.column(c);
            if col.column_type() != t {
                continue;
            }
            for row in start..end {
                *counts.entry(col.value_string(row)).or_insert(0) += 1;
                total += 1;
            }
        }
        if total == 0 {
            continue;
        }
        let mut h = 0.0;
        for (s, count) in counts {
            let pr = count as f64 / total as f64;
            h -= s.len() as f64 * pr * pr.ln();
        }
        result.insert(t, h);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_table::{ColumnDef, Schema};

    fn table_with(text_values: Vec<&str>) -> Table {
        let n = text_values.len();
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("status", ColumnType::Text),
        ]);
        Table::new(
            "t",
            schema,
            vec![
                ColumnData::Int((0..n as i64).collect()),
                ColumnData::Text(text_values.into_iter().map(String::from).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn repeated_values_have_lower_entropy_than_distinct_ones() {
        let repetitive = table_with(vec!["OPEN"; 100]);
        let distinct = table_with(
            (0..100)
                .map(|i| Box::leak(format!("VAL{i:03}").into_boxed_str()) as &str)
                .collect(),
        );
        let h_rep = weighted_entropy_by_type(&repetitive, 0, 100);
        let h_dis = weighted_entropy_by_type(&distinct, 0, 100);
        // A constant column has zero entropy; 100 distinct values have a lot.
        assert!(h_rep[&ColumnType::Text] < 1e-9);
        assert!(h_dis[&ColumnType::Text] > 1.0);
    }

    #[test]
    fn entropy_weights_by_string_length() {
        let short = table_with(vec!["A", "B", "A", "B"]);
        let long = table_with(vec!["AAAAAAAAAA", "BBBBBBBBBB", "AAAAAAAAAA", "BBBBBBBBBB"]);
        let h_short = weighted_entropy_by_type(&short, 0, 4)[&ColumnType::Text];
        let h_long = weighted_entropy_by_type(&long, 0, 4)[&ColumnType::Text];
        assert!((h_long / h_short - 10.0).abs() < 1e-6);
    }

    #[test]
    fn feature_vector_lengths_match_names() {
        let t = table_with(vec!["x", "y", "z", "x"]);
        for set in [
            FeatureSet::SizeOnly,
            FeatureSet::WeightedEntropy,
            FeatureSet::BucketedEntropy,
        ] {
            let ex = FeatureExtractor::new(set);
            assert_eq!(ex.extract(&t).len(), ex.feature_names().len(), "{set:?}");
        }
        assert_eq!(
            FeatureExtractor::new(FeatureSet::SizeOnly)
                .extract(&t)
                .len(),
            2
        );
        assert_eq!(
            FeatureExtractor::new(FeatureSet::WeightedEntropy)
                .extract(&t)
                .len(),
            2 + 4
        );
        assert_eq!(
            FeatureExtractor::new(FeatureSet::BucketedEntropy)
                .extract(&t)
                .len(),
            2 + 4 * ENTROPY_BUCKETS
        );
    }

    #[test]
    fn fast_entropy_matches_reference_bitwise() {
        // All four column types, repeated and distinct values, partial row
        // ranges: the distinct-value counting path must reproduce the
        // per-cell-String reference exactly.
        use scope_table::{ColumnDef, Schema, TpchGenerator, TpchOptions, TpchTable};
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("price", ColumnType::Float),
            ColumnDef::new("status", ColumnType::Text),
            ColumnDef::new("ship", ColumnType::Date),
        ]);
        let n = 200;
        let t = Table::new(
            "mixed",
            schema,
            vec![
                ColumnData::Int((0..n).map(|i| (i % 17) - 4).collect()),
                ColumnData::Float((0..n).map(|i| (i % 13) as f64 * 0.493).collect()),
                ColumnData::Text((0..n).map(|i| format!("S{}", i % 7)).collect()),
                ColumnData::Date((0..n).map(|i| (i % 40) * 11).collect()),
            ],
        )
        .unwrap();
        for (start, end) in [(0, 200), (0, 50), (37, 160), (200, 200)] {
            let fast = weighted_entropy_by_type(&t, start, end);
            let slow = weighted_entropy_by_type_reference(&t, start, end);
            assert_eq!(fast.len(), slow.len(), "range {start}..{end}");
            for (k, v) in &slow {
                assert_eq!(fast[k].to_bits(), v.to_bits(), "{k:?} range {start}..{end}");
            }
        }
        // And on real TPC-H data.
        let gen = TpchGenerator::new(TpchOptions {
            scale_factor: 0.05,
            ..Default::default()
        })
        .unwrap();
        let orders = gen.generate(TpchTable::Orders);
        let fast = weighted_entropy_by_type(&orders, 0, orders.n_rows());
        let slow = weighted_entropy_by_type_reference(&orders, 0, orders.n_rows());
        assert_eq!(fast.len(), slow.len());
        for (k, v) in &slow {
            assert_eq!(fast[k].to_bits(), v.to_bits(), "{k:?}");
        }
    }

    #[test]
    fn approximate_bytes_grows_with_rows() {
        let small = table_with(vec!["abc"; 10]);
        let large = table_with(vec!["abc"; 100]);
        assert!(approximate_bytes(&large) > approximate_bytes(&small));
        assert!(approximate_bytes(&small) > 0.0);
    }

    #[test]
    fn int_len_handles_signs_and_zero() {
        assert_eq!(int_len(0), 1);
        assert_eq!(int_len(7), 1);
        assert_eq!(int_len(12345), 5);
        assert_eq!(int_len(-42), 3);
    }

    #[test]
    fn bucketed_entropy_differs_for_sorted_data() {
        // A column where values cluster by position: sorted data has
        // low entropy within each bucket even though global entropy is high.
        let values: Vec<&str> = (0..100)
            .map(|i| if i < 50 { "AAAA" } else { "BBBB" })
            .collect();
        let sorted = table_with(values);
        let ex = FeatureExtractor::new(FeatureSet::BucketedEntropy);
        let features = ex.extract(&sorted);
        // Per-bucket text entropies are at positions 2 + 4*b + 2 (text is the
        // third type in ColumnType::all()). Buckets fully inside a sorted
        // run are constant -> zero entropy; only the bucket straddling the
        // A/B boundary (bucket 2, rows 40..60) carries entropy.
        let global = FeatureExtractor::new(FeatureSet::WeightedEntropy).extract(&sorted);
        let global_text = global[2 + 2];
        assert!(global_text > 0.5);
        for b in [0, 1, 3, 4] {
            let text_idx = 2 + 4 * b + 2;
            assert!(
                features[text_idx].abs() < 1e-9,
                "bucket {b} should be constant"
            );
        }
        let mean_bucket_text: f64 = (0..ENTROPY_BUCKETS)
            .map(|b| features[2 + 4 * b + 2])
            .sum::<f64>()
            / ENTROPY_BUCKETS as f64;
        assert!(mean_bucket_text < global_text);
    }

    #[test]
    fn feature_set_names() {
        assert_eq!(FeatureSet::SizeOnly.name(), "size");
        assert_eq!(FeatureSet::WeightedEntropy.name(), "weighted-entropy");
        assert_eq!(
            FeatureSet::BucketedEntropy.name(),
            "bucketed-weighted-entropy"
        );
    }

    #[test]
    fn empty_row_range_yields_no_entropy_entries() {
        let t = table_with(vec!["a", "b"]);
        let h = weighted_entropy_by_type(&t, 2, 2);
        assert!(h.is_empty());
    }
}
