//! # scope-compredict
//!
//! COMPREDICT (§V of the paper): prediction of compression ratio and
//! decompression speed for data partitions, on the fly, from cheap features.
//!
//! The module has three parts:
//!
//! * [`features`] — the paper's *weighted entropy* features `H(P, d)`, one
//!   per data type `d` present in a partition, plus the size-only baseline
//!   feature set and the *bucketed* entropy variant studied for sorted data,
//! * [`sampling`] — random row sampling vs *query-based* sampling (samples
//!   drawn from the rows that queries actually touch); the paper shows the
//!   latter is what makes prediction work (Table V, Fig 4),
//! * [`predictor`] — ground-truth measurement (compressing the sampled bytes
//!   with the `scope-compress` codecs) and the model sweep of Tables VI–VIII
//!   (averaging baseline, Random Forest, gradient boosting, MLP, k-NN) with
//!   MAE / MAPE / R² evaluation.

#![warn(missing_docs)]

pub mod features;
pub mod predictor;
pub mod sampling;

pub use features::{FeatureExtractor, FeatureSet};
pub use predictor::{
    CompressionPredictor, EvaluationReport, ModelKind, PredictionTask, TrainingExample,
};
pub use sampling::{query_samples, random_samples, SamplingStrategy};

/// Errors produced by the compression predictor.
#[derive(Debug, Clone, PartialEq)]
pub enum CompredictError {
    /// Not enough samples to train or evaluate a model.
    NotEnoughSamples(usize),
    /// The underlying learner failed.
    Learn(String),
    /// A table operation failed while building samples.
    Table(String),
    /// An option was invalid.
    InvalidOption(String),
}

impl std::fmt::Display for CompredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompredictError::NotEnoughSamples(n) => {
                write!(f, "not enough samples to train a predictor: {n}")
            }
            CompredictError::Learn(msg) => write!(f, "learner error: {msg}"),
            CompredictError::Table(msg) => write!(f, "table error: {msg}"),
            CompredictError::InvalidOption(msg) => write!(f, "invalid option: {msg}"),
        }
    }
}

impl std::error::Error for CompredictError {}

impl From<scope_learn::LearnError> for CompredictError {
    fn from(e: scope_learn::LearnError) -> Self {
        CompredictError::Learn(e.to_string())
    }
}

impl From<scope_table::TableError> for CompredictError {
    fn from(e: scope_table::TableError) -> Self {
        CompredictError::Table(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        assert!(CompredictError::NotEnoughSamples(3)
            .to_string()
            .contains('3'));
        let le: CompredictError = scope_learn::LearnError::EmptyTrainingSet.into();
        assert!(matches!(le, CompredictError::Learn(_)));
        let te: CompredictError = scope_table::TableError::UnknownColumn("x".into()).into();
        assert!(matches!(te, CompredictError::Table(_)));
    }
}
