//! Training and evaluation of compression-performance predictors.
//!
//! Ground truth is obtained by actually serializing each sample in the
//! requested layout (csv / parquet-like) and compressing it with the
//! requested `scope-compress` codec; the targets are the measured
//! compression ratio and decompression seconds-per-GB. Models are the
//! families swept in Tables VI–VIII: an averaging baseline, Random Forest,
//! gradient-boosted trees (the "XGBoost" row), a small MLP (the "Neural
//! Network" row) and k-NN (standing in for SVR). Evaluation reports MAE,
//! MAPE and R² exactly as the paper's tables do.

use crate::features::FeatureExtractor;
use crate::CompredictError;
use scope_compress::{measure, CompressionScheme};
use scope_learn::{
    mae, mape, r2_score, ColumnMatrix, GradientBoostingRegressor, KnnRegressor, MeanRegressor,
    MlpRegressor, RandomForestRegressor, Regressor, Standardizer,
};
use scope_table::{format, DataLayout, Table};

/// Which quantity is being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionTask {
    /// Compression ratio (uncompressed / compressed size).
    CompressionRatio,
    /// Decompression speed in seconds per GB of uncompressed data.
    DecompressionSpeed,
}

impl PredictionTask {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PredictionTask::CompressionRatio => "compression-ratio",
            PredictionTask::DecompressionSpeed => "decompression-speed",
        }
    }
}

/// Model families swept in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Predict the training mean (the "Averaging" baseline row).
    Averaging,
    /// Random forest (the paper's best model).
    RandomForest,
    /// Gradient-boosted trees (the "XGBoost" row).
    GradientBoosting,
    /// Single-hidden-layer MLP (the "Neural Network" row).
    NeuralNetwork,
    /// k-nearest neighbours (stand-in for the "SVR" row: a non-parametric
    /// kernel-flavoured model).
    Knn,
}

impl ModelKind {
    /// All model kinds, in the order the paper's tables list them.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::Averaging,
            ModelKind::GradientBoosting,
            ModelKind::NeuralNetwork,
            ModelKind::Knn,
            ModelKind::RandomForest,
        ]
    }

    /// Display name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Averaging => "Averaging",
            ModelKind::RandomForest => "Random Forest",
            ModelKind::GradientBoosting => "XGBoost",
            ModelKind::NeuralNetwork => "Neural Network",
            ModelKind::Knn => "SVR",
        }
    }
}

/// One training / evaluation example: features plus measured targets.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingExample {
    /// Feature vector (from [`FeatureExtractor`]).
    pub features: Vec<f64>,
    /// Measured compression ratio.
    pub ratio: f64,
    /// Measured decompression seconds per GB.
    pub decompress_sec_per_gb: f64,
    /// Serialized (uncompressed) size of the sample in bytes.
    pub serialized_bytes: usize,
}

/// Build training examples by serializing, compressing and featurising each
/// sample table.
pub fn build_examples(
    samples: &[Table],
    scheme: CompressionScheme,
    layout: DataLayout,
    extractor: &FeatureExtractor,
) -> Vec<TrainingExample> {
    let codec = scheme.codec();
    samples
        .iter()
        .map(|sample| {
            let bytes = format::serialize(sample, layout);
            let m = measure(codec.as_ref(), &bytes);
            TrainingExample {
                features: extractor.extract(sample),
                ratio: m.ratio,
                decompress_sec_per_gb: m.decompress_seconds_per_gb,
                serialized_bytes: bytes.len(),
            }
        })
        .collect()
}

/// Evaluation metrics for one predictor on one task (a cell group of
/// Tables V–VIII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationReport {
    /// Mean absolute error.
    pub mae: f64,
    /// Mean absolute percentage error (percent).
    pub mape: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

enum TrainedModel {
    Mean(MeanRegressor),
    Forest(RandomForestRegressor),
    Gbt(GradientBoostingRegressor),
    Mlp(MlpRegressor),
    Knn {
        model: KnnRegressor,
        standardizer: Standardizer,
    },
}

impl TrainedModel {
    fn predict(&self, features: &[f64]) -> f64 {
        match self {
            TrainedModel::Mean(m) => m.predict_one(features),
            TrainedModel::Forest(m) => m.predict_one(features),
            TrainedModel::Gbt(m) => m.predict_one(features),
            TrainedModel::Mlp(m) => m.predict_one(features),
            TrainedModel::Knn {
                model,
                standardizer,
            } => model.predict_one(&standardizer.transform_one(features)),
        }
    }
}

/// A trained compression-performance predictor.
pub struct CompressionPredictor {
    model: TrainedModel,
    extractor: FeatureExtractor,
    task: PredictionTask,
    kind: ModelKind,
}

impl std::fmt::Debug for CompressionPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressionPredictor")
            .field("task", &self.task.name())
            .field("model", &self.kind.name())
            .field("features", &self.extractor.feature_set.name())
            .finish()
    }
}

impl CompressionPredictor {
    /// Train a predictor of `task` on `examples` using the given model kind.
    pub fn train(
        examples: &[TrainingExample],
        task: PredictionTask,
        kind: ModelKind,
        extractor: FeatureExtractor,
        seed: u64,
    ) -> Result<Self, CompredictError> {
        if examples.len() < 4 {
            return Err(CompredictError::NotEnoughSamples(examples.len()));
        }
        let targets: Vec<f64> = examples.iter().map(|e| target_of(e, task)).collect();
        // The tree-ensemble models train on the shared column-major view
        // (no per-row feature clones); the row-major models still get
        // borrowed rows, cloned only where their APIs require it.
        let rows: Vec<&[f64]> = examples.iter().map(|e| e.features.as_slice()).collect();
        let model = match kind {
            ModelKind::Averaging => TrainedModel::Mean(MeanRegressor::fit(&targets)?),
            ModelKind::RandomForest => {
                let cols = ColumnMatrix::from_rows(&rows)?;
                TrainedModel::Forest(RandomForestRegressor::fit_columns(
                    &cols,
                    &targets,
                    scope_learn::forest::ForestParams {
                        seed,
                        ..Default::default()
                    },
                )?)
            }
            ModelKind::GradientBoosting => {
                let cols = ColumnMatrix::from_rows(&rows)?;
                TrainedModel::Gbt(GradientBoostingRegressor::fit_columns(
                    &cols,
                    &targets,
                    scope_learn::boosting::BoostingParams::default(),
                )?)
            }
            ModelKind::NeuralNetwork => {
                let features: Vec<Vec<f64>> = rows.iter().map(|r| r.to_vec()).collect();
                TrainedModel::Mlp(MlpRegressor::fit_default(&features, &targets)?)
            }
            ModelKind::Knn => {
                let features: Vec<Vec<f64>> = rows.iter().map(|r| r.to_vec()).collect();
                let standardizer = Standardizer::fit(&features)?;
                let transformed = standardizer.transform(&features);
                let k = (examples.len() / 10).clamp(3, 15);
                TrainedModel::Knn {
                    model: KnnRegressor::fit(
                        &transformed,
                        &targets,
                        k,
                        scope_learn::knn::KnnWeighting::InverseDistance,
                    )?,
                    standardizer,
                }
            }
        };
        Ok(CompressionPredictor {
            model,
            extractor,
            task,
            kind,
        })
    }

    /// The task this predictor was trained for.
    pub fn task(&self) -> PredictionTask {
        self.task
    }

    /// The model family used.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Predict from a raw feature vector.
    pub fn predict_features(&self, features: &[f64]) -> f64 {
        // Ratios and speeds are physically non-negative; ratios are >= a
        // small positive floor so downstream divisions are safe.
        let raw = self.model.predict(features);
        match self.task {
            PredictionTask::CompressionRatio => raw.max(0.1),
            PredictionTask::DecompressionSpeed => raw.max(0.0),
        }
    }

    /// Extract features from a partition and predict.
    pub fn predict_table(&self, table: &Table) -> f64 {
        self.predict_features(&self.extractor.extract(table))
    }

    /// Evaluate on held-out examples, producing the MAE / MAPE / R² triple
    /// of the paper's tables.
    pub fn evaluate(&self, examples: &[TrainingExample]) -> EvaluationReport {
        let truth: Vec<f64> = examples.iter().map(|e| target_of(e, self.task)).collect();
        let preds: Vec<f64> = examples
            .iter()
            .map(|e| self.predict_features(&e.features))
            .collect();
        EvaluationReport {
            mae: mae(&truth, &preds),
            mape: mape(&truth, &preds),
            r2: r2_score(&truth, &preds),
        }
    }
}

fn target_of(example: &TrainingExample, task: PredictionTask) -> f64 {
    match task {
        PredictionTask::CompressionRatio => example.ratio,
        PredictionTask::DecompressionSpeed => example.decompress_sec_per_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use crate::sampling::random_samples;
    use scope_table::{TpchGenerator, TpchOptions, TpchTable};

    fn examples() -> Vec<TrainingExample> {
        // Samples of varying size/repetition from two tables give a spread
        // of ratios to learn from.
        let gen = TpchGenerator::new(TpchOptions {
            scale_factor: 0.15,
            ..Default::default()
        })
        .unwrap();
        let orders = gen.generate(TpchTable::Orders);
        let lineitem = gen.generate(TpchTable::Lineitem);
        let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
        let mut samples = Vec::new();
        for rows in [30, 60, 120, 200] {
            samples.extend(random_samples(&orders, 4, rows, rows as u64).unwrap());
            samples.extend(random_samples(&lineitem, 4, rows, rows as u64 + 1).unwrap());
        }
        build_examples(
            &samples,
            CompressionScheme::Gzip,
            DataLayout::Csv,
            &extractor,
        )
    }

    #[test]
    fn examples_have_positive_ratios_and_sizes() {
        let ex = examples();
        assert!(ex.len() >= 30);
        for e in &ex {
            assert!(e.ratio > 1.0, "gzip should compress tabular text");
            assert!(e.serialized_bytes > 0);
            assert!(e.decompress_sec_per_gb >= 0.0);
            assert!(!e.features.is_empty());
        }
    }

    #[test]
    fn random_forest_beats_averaging_baseline() {
        let ex = examples();
        let split = ex.len() * 3 / 4;
        let (train, test) = ex.split_at(split);
        let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
        let rf = CompressionPredictor::train(
            train,
            PredictionTask::CompressionRatio,
            ModelKind::RandomForest,
            extractor,
            1,
        )
        .unwrap();
        let avg = CompressionPredictor::train(
            train,
            PredictionTask::CompressionRatio,
            ModelKind::Averaging,
            extractor,
            1,
        )
        .unwrap();
        let rf_report = rf.evaluate(test);
        let avg_report = avg.evaluate(test);
        assert!(
            rf_report.mae <= avg_report.mae,
            "rf mae {} vs averaging mae {}",
            rf_report.mae,
            avg_report.mae
        );
    }

    #[test]
    fn all_model_kinds_train_and_predict() {
        let ex = examples();
        let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
        for kind in ModelKind::all() {
            let p = CompressionPredictor::train(
                &ex,
                PredictionTask::CompressionRatio,
                kind,
                extractor,
                2,
            )
            .unwrap();
            let pred = p.predict_features(&ex[0].features);
            assert!(pred.is_finite() && pred > 0.0, "{kind:?} produced {pred}");
            assert_eq!(p.kind(), kind);
        }
    }

    #[test]
    fn decompression_speed_task_trains() {
        let ex = examples();
        let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
        let p = CompressionPredictor::train(
            &ex,
            PredictionTask::DecompressionSpeed,
            ModelKind::RandomForest,
            extractor,
            3,
        )
        .unwrap();
        assert_eq!(p.task(), PredictionTask::DecompressionSpeed);
        let report = p.evaluate(&ex);
        assert!(report.mae >= 0.0);
        assert!(report.mape >= 0.0);
    }

    #[test]
    fn too_few_examples_rejected() {
        let ex = examples();
        let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
        assert!(matches!(
            CompressionPredictor::train(
                &ex[..2],
                PredictionTask::CompressionRatio,
                ModelKind::RandomForest,
                extractor,
                1,
            ),
            Err(CompredictError::NotEnoughSamples(2))
        ));
    }

    #[test]
    fn predict_table_uses_extractor() {
        let ex = examples();
        let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
        let p = CompressionPredictor::train(
            &ex,
            PredictionTask::CompressionRatio,
            ModelKind::RandomForest,
            extractor,
            4,
        )
        .unwrap();
        let gen = TpchGenerator::new(TpchOptions {
            scale_factor: 0.05,
            ..Default::default()
        })
        .unwrap();
        let t = gen.generate(TpchTable::Customer);
        let pred = p.predict_table(&t);
        assert!(
            pred > 0.5 && pred < 50.0,
            "unreasonable ratio prediction {pred}"
        );
        let dbg = format!("{p:?}");
        assert!(dbg.contains("Random Forest"));
    }

    #[test]
    fn model_kind_names_match_paper_rows() {
        assert_eq!(ModelKind::GradientBoosting.name(), "XGBoost");
        assert_eq!(ModelKind::Knn.name(), "SVR");
        assert_eq!(ModelKind::all().len(), 5);
        assert_eq!(PredictionTask::CompressionRatio.name(), "compression-ratio");
    }
}
