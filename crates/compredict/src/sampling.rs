//! Sample generation: random row samples vs query-based samples.
//!
//! Fig 4 and Table V of the paper compare two ways of building the training
//! corpus for the compression predictor:
//!
//! * **Random samples** — random subsets of rows of each table. These are a
//!   poor representation of what is actually read from tabular data: queried
//!   data "typically has more repetition, which results in higher
//!   compression ratios compared to random samples".
//! * **Query-based samples** — the row sets actually touched by queries
//!   (here: contiguous row windows and template footprints derived from the
//!   query workload), which is what SCOPe uses.

use crate::CompredictError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_table::Table;
use scope_workload::QueryFamily;

/// How training samples are derived from tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Uniformly random row subsets.
    Random,
    /// Row sets derived from query footprints.
    QueryBased,
}

impl SamplingStrategy {
    /// Name used in reports ("random" / "queries").
    pub fn name(&self) -> &'static str {
        match self {
            SamplingStrategy::Random => "random",
            SamplingStrategy::QueryBased => "queries",
        }
    }
}

/// Draw `count` random row-subset samples from `table`, each containing
/// `rows_per_sample` rows chosen uniformly without ordering constraints.
pub fn random_samples(
    table: &Table,
    count: usize,
    rows_per_sample: usize,
    seed: u64,
) -> Result<Vec<Table>, CompredictError> {
    if count == 0 || rows_per_sample == 0 {
        return Err(CompredictError::InvalidOption(
            "count and rows_per_sample must be > 0".to_string(),
        ));
    }
    if table.is_empty() {
        return Err(CompredictError::NotEnoughSamples(0));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = table.n_rows();
    let mut samples = Vec::with_capacity(count);
    for _ in 0..count {
        let rows: Vec<usize> = (0..rows_per_sample.min(n))
            .map(|_| rng.gen_range(0..n))
            .collect();
        samples.push(table.take_rows(&rows)?);
    }
    Ok(samples)
}

/// Build query-based samples from a table that has been physically split
/// into `files` (consecutive row ranges) and a query workload over those
/// files.
///
/// Each query family yields one sample: the concatenation of the rows of the
/// files it touches (restricted to files of this table). Families touching
/// none of this table's files are skipped.
pub fn query_samples(
    table: &Table,
    files: &[Table],
    families: &[QueryFamily],
) -> Result<Vec<Table>, CompredictError> {
    if files.is_empty() {
        return Err(CompredictError::InvalidOption(
            "files must not be empty".to_string(),
        ));
    }
    let mut samples = Vec::new();
    for family in families {
        let mut row_indices: Vec<usize> = Vec::new();
        let mut offset_of_file = vec![0usize; files.len()];
        let mut acc = 0usize;
        for (i, f) in files.iter().enumerate() {
            offset_of_file[i] = acc;
            acc += f.n_rows();
        }
        for file_ref in &family.files {
            if file_ref.table != table.name {
                continue;
            }
            if let Some(file) = files.get(file_ref.file_index) {
                let start = offset_of_file[file_ref.file_index];
                row_indices.extend(start..start + file.n_rows());
            }
        }
        if row_indices.is_empty() {
            continue;
        }
        samples.push(table.take_rows(&row_indices)?);
    }
    if samples.is_empty() {
        return Err(CompredictError::NotEnoughSamples(0));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_table::{TpchGenerator, TpchOptions, TpchTable};
    use scope_workload::FileRef;

    fn orders() -> Table {
        TpchGenerator::new(TpchOptions {
            scale_factor: 0.2,
            ..Default::default()
        })
        .unwrap()
        .generate(TpchTable::Orders)
    }

    #[test]
    fn random_samples_have_requested_shape() {
        let t = orders();
        let samples = random_samples(&t, 5, 40, 1).unwrap();
        assert_eq!(samples.len(), 5);
        for s in &samples {
            assert_eq!(s.n_rows(), 40);
            assert_eq!(s.n_columns(), t.n_columns());
        }
        // Deterministic for a seed.
        let again = random_samples(&t, 5, 40, 1).unwrap();
        assert_eq!(samples[0], again[0]);
    }

    #[test]
    fn random_samples_validate_inputs() {
        let t = orders();
        assert!(random_samples(&t, 0, 10, 1).is_err());
        assert!(random_samples(&t, 1, 0, 1).is_err());
    }

    #[test]
    fn query_samples_concatenate_touched_files() {
        let t = orders();
        let files = t.split_into_files(50).unwrap();
        let families = vec![
            QueryFamily {
                id: 0,
                files: vec![FileRef::new("orders", 0), FileRef::new("orders", 2)],
                frequency: 3.0,
                template: 1,
            },
            QueryFamily {
                id: 1,
                files: vec![FileRef::new("lineitem", 0)], // other table: skipped
                frequency: 1.0,
                template: 2,
            },
        ];
        let samples = query_samples(&t, &files, &families).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].n_rows(), files[0].n_rows() + files[2].n_rows());
    }

    #[test]
    fn query_samples_error_when_nothing_matches() {
        let t = orders();
        let files = t.split_into_files(50).unwrap();
        let families = vec![QueryFamily {
            id: 0,
            files: vec![FileRef::new("part", 0)],
            frequency: 1.0,
            template: 1,
        }];
        assert!(matches!(
            query_samples(&t, &files, &families),
            Err(CompredictError::NotEnoughSamples(_))
        ));
        assert!(query_samples(&t, &[], &families).is_err());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(SamplingStrategy::Random.name(), "random");
        assert_eq!(SamplingStrategy::QueryBased.name(), "queries");
    }
}
