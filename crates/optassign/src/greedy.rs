//! The greedy solver for the unbounded-capacity case (Theorem 3).
//!
//! When no tier carries a capacity reservation the ILP decomposes per
//! partition: each partition independently takes its cheapest feasible
//! (tier, compression) pair, which is optimal overall. The run time is
//! `O(N · L · K)` — linear in the number of partitions for fixed tier and
//! scheme counts — which is what makes OPTASSIGN "scalable and effective"
//! on petabyte-scale catalogs (2.53 s for 463 datasets in the paper; the
//! Criterion benches reproduce the scaling).
//!
//! The per-partition minima come from a [`CostTable`] evaluated once per
//! solve (with one hoisted cost model, in parallel on large instances)
//! instead of re-deriving each price through a freshly cloned model; the
//! historical path survives as [`crate::reference::solve_greedy_reference`]
//! and the differential proptests pin both bit-for-bit equal.

use crate::costtable::CostTable;
use crate::error::OptAssignError;
use crate::problem::{Assignment, OptAssignProblem};

/// Solve an unbounded-capacity OPTASSIGN instance greedily (optimal when no
/// tier has a capacity reservation).
///
/// Capacity reservations, if present, are ignored by this solver — use
/// [`crate::ilp::solve_branch_and_bound`] when they must be respected.
/// Returns an error if some partition has no feasible choice at all (its
/// latency threshold excludes every tier), mirroring the paper's "relax the
/// latency requirements" prescription.
pub fn solve_greedy(problem: &OptAssignProblem) -> Result<Assignment, OptAssignError> {
    problem.validate()?;
    let table = CostTable::build(problem);
    let mut choices = Vec::with_capacity(problem.partitions.len());
    for (i, p) in problem.partitions.iter().enumerate() {
        match table.min_feasible(i) {
            Some((_, tier, k)) => choices.push((tier, k)),
            None => {
                return Err(OptAssignError::InfeasiblePartition {
                    partition: p.id,
                    name: p.name.clone(),
                })
            }
        }
    }
    table.assignment(problem, choices)
}

/// Solve greedily, iteratively relaxing latency thresholds by `factor` (> 1)
/// until every partition has a feasible choice. Returns the assignment and
/// the number of relaxation rounds applied (0 = no relaxation needed).
pub fn solve_greedy_with_relaxation(
    problem: &OptAssignProblem,
    factor: f64,
    max_rounds: usize,
) -> Result<(Assignment, usize), OptAssignError> {
    let mut relaxed = problem.clone();
    let mut round = 0;
    loop {
        match solve_greedy(&relaxed) {
            Ok(a) => return Ok((a, round)),
            Err(OptAssignError::InfeasiblePartition { .. }) if round < max_rounds => {
                for p in &mut relaxed.partitions {
                    p.latency_threshold_seconds *= factor;
                }
                round += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{CompressionOption, PartitionSpec};
    use scope_cloudsim::{CostWeights, TierCatalog};

    fn partition(id: usize, size: f64, accesses: f64) -> PartitionSpec {
        PartitionSpec::new(id, format!("p{id}"), size, accesses)
            .with_compression_option(CompressionOption::new("gzip", 4.0, 5.0))
            .with_compression_option(CompressionOption::new("snappy", 2.0, 0.5))
    }

    #[test]
    fn cold_data_goes_to_cheap_tiers_hot_data_stays_fast() {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let archive = catalog.tier_id("Archive").unwrap();
        let parts = vec![
            partition(0, 1000.0, 0.0),   // never read
            partition(1, 1000.0, 500.0), // read constantly
        ];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let a = solve_greedy(&problem).unwrap();
        assert_eq!(a.choices[0].0, archive);
        assert!(a.choices[1].0 <= hot, "hot data should stay on a fast tier");
    }

    #[test]
    fn greedy_is_optimal_without_capacity() {
        // Exhaustively enumerate a small instance and check the greedy
        // objective matches the brute-force optimum.
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![partition(0, 50.0, 3.0), partition(1, 10.0, 40.0)];
        let problem = OptAssignProblem::new(catalog.clone(), parts, 6.0);
        let greedy = solve_greedy(&problem).unwrap();

        let mut best = f64::INFINITY;
        let tiers = catalog.tier_ids();
        for &t0 in &tiers {
            for k0 in 0..3 {
                for &t1 in &tiers {
                    for k1 in 0..3 {
                        let p0 = &problem.partitions[0];
                        let p1 = &problem.partitions[1];
                        if !problem.is_feasible(p0, t0, k0) || !problem.is_feasible(p1, t1, k1) {
                            continue;
                        }
                        let cost =
                            problem.placement_cost(p0, t0, k0) + problem.placement_cost(p1, t1, k1);
                        best = best.min(cost);
                    }
                }
            }
        }
        assert!((greedy.objective - best).abs() < 1e-9);
    }

    #[test]
    fn compression_is_chosen_when_it_pays_off() {
        // A large, rarely-read partition: compressing it shrinks the storage
        // term far more than the decompression compute it adds.
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![partition(0, 5000.0, 1.0)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let a = solve_greedy(&problem).unwrap();
        assert_ne!(a.choices[0].1, 0, "large cold data should be compressed");
    }

    #[test]
    fn latency_constraints_are_respected() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![
            partition(0, 100.0, 2.0).with_latency_threshold(0.1), // premium/hot only, no heavy decompression
        ];
        let problem = OptAssignProblem::new(catalog.clone(), parts, 6.0);
        let a = solve_greedy(&problem).unwrap();
        let (tier, k) = a.choices[0];
        let lat = problem.latency_seconds(&problem.partitions[0], tier, k);
        assert!(lat <= 0.1);
    }

    #[test]
    fn infeasible_partition_is_reported_and_relaxation_fixes_it() {
        let catalog = TierCatalog::azure_adls_gen2();
        // Threshold below even the premium TTFB: nothing is feasible.
        let parts = vec![partition(0, 10.0, 1.0).with_latency_threshold(0.001)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_greedy(&problem),
            Err(OptAssignError::InfeasiblePartition { partition: 0, .. })
        ));
        let (a, rounds) = solve_greedy_with_relaxation(&problem, 10.0, 5).unwrap();
        assert!(rounds >= 1);
        assert_eq!(a.choices.len(), 1);
    }

    #[test]
    fn latency_focused_weights_keep_data_on_the_fast_tier() {
        // With alpha = 0 (ignore storage cost) the optimizer minimises read +
        // decompression cost, which keeps accessed data on the cheapest-to-
        // read (fastest) tier — the HCompress-like baseline behaviour. Note
        // that compression can still be selected because it shrinks the read
        // volume more than the decompression compute it adds.
        let catalog = TierCatalog::azure_adls_gen2();
        let premium = catalog.tier_id("Premium").unwrap();
        let parts = vec![partition(0, 100.0, 50.0)];
        let problem =
            OptAssignProblem::new(catalog, parts, 6.0).with_weights(CostWeights::latency_focused());
        let a = solve_greedy(&problem).unwrap();
        assert_eq!(a.choices[0].0, premium);
        // Under total-cost weights the same partition does NOT sit on premium
        // (its storage is 7x hot), showing the weight knob matters.
        let total = OptAssignProblem::new(
            TierCatalog::azure_adls_gen2(),
            vec![partition(0, 100.0, 50.0)],
            6.0,
        )
        .with_weights(CostWeights::total_cost_focused());
        let b = solve_greedy(&total).unwrap();
        assert_ne!(b.choices[0].0, premium);
    }

    #[test]
    fn multi_provider_greedy_weighs_egress_against_cheaper_ladders() {
        use scope_cloudsim::ProviderCatalog;
        let providers = ProviderCatalog::azure_s3_gcs();
        let azure_hot = providers.merged_tier_id("azure", "Hot").unwrap();
        let azure = providers.provider_id("azure").unwrap();
        let topo = providers.topology();
        // A cold, latency-bounded partition already on azure Hot: with the
        // interconnect egress matrix the greedy sends it to another cloud's
        // 0.4 c/GB sub-second tier, but at 10x egress it stays home.
        let part = || {
            vec![PartitionSpec::new(0, "cold-sla", 100.0, 0.0)
                .with_latency_threshold(1.0)
                .with_current_tier(azure_hot)]
        };
        let problem = OptAssignProblem::multi_provider(&providers, part(), 6.0);
        let a = solve_greedy(&problem).unwrap();
        assert_ne!(topo.provider_of(a.choices[0].0), Some(azure));
        assert!(a.breakdown.egress > 0.0);

        let expensive = providers.clone().with_egress_scale(10.0).unwrap();
        let problem = OptAssignProblem::multi_provider(&expensive, part(), 6.0);
        let b = solve_greedy(&problem).unwrap();
        assert_eq!(topo.provider_of(b.choices[0].0), Some(azure));
        assert_eq!(b.breakdown.egress, 0.0);
    }

    #[test]
    fn scales_linearly_in_partition_count() {
        // Not a timing assertion (those live in the benches), just a check
        // that a thousand-partition instance solves and assigns everything.
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..1000)
            .map(|i| partition(i, (i % 100 + 1) as f64, (i % 17) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let a = solve_greedy(&problem).unwrap();
        assert_eq!(a.choices.len(), 1000);
    }
}
