//! Error type for the OPTASSIGN crate.

use std::fmt;

/// Errors produced by the OPTASSIGN solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptAssignError {
    /// A partition has no feasible (tier, compression) choice under its
    /// latency threshold — the instance is infeasible as specified and the
    /// latency requirement must be relaxed (the paper's prescription).
    InfeasiblePartition {
        /// Id of the partition.
        partition: usize,
        /// Name of the partition.
        name: String,
    },
    /// The total capacity across tiers cannot hold all partitions.
    InfeasibleCapacity,
    /// The problem definition is malformed (empty partitions, bad sizes,
    /// missing "no compression" option, ...).
    InvalidProblem(String),
    /// The matching specialisation was called on a problem that is not an
    /// equal-size / no-compression instance.
    NotEqualSizeInstance(String),
}

impl fmt::Display for OptAssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptAssignError::InfeasiblePartition { partition, name } => write!(
                f,
                "partition {partition} ({name}) has no feasible tier/compression choice; relax its latency threshold"
            ),
            OptAssignError::InfeasibleCapacity => {
                write!(f, "tier capacity reservations cannot hold all partitions")
            }
            OptAssignError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            OptAssignError::NotEqualSizeInstance(msg) => {
                write!(f, "not an equal-size/no-compression instance: {msg}")
            }
        }
    }
}

impl std::error::Error for OptAssignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = OptAssignError::InfeasiblePartition {
            partition: 3,
            name: "p3".into(),
        };
        assert!(e.to_string().contains("p3"));
        assert!(OptAssignError::InfeasibleCapacity
            .to_string()
            .contains("capacity"));
        assert!(OptAssignError::InvalidProblem("x".into())
            .to_string()
            .contains('x'));
    }
}
