//! The cost-table engine: the dense `[partition × tier × compression]`
//! cost matrix every solver searches instead of re-deriving prices through
//! the [`CostModel`].
//!
//! The OPTASSIGN inner loops are pure cost evaluation: the greedy scans
//! every `(tier, scheme)` pair per partition, branch-and-bound builds
//! sorted candidate lists and suffix lower bounds from the same values, and
//! the Hungarian matching fills an `n × m` edge-weight matrix with them.
//! Before this engine each evaluation went through
//! [`OptAssignProblem::placement_cost`], which clones the catalog (and, on
//! merged multi-provider instances, the topology) into a fresh model per
//! call — the allocation churn flagged as a ROADMAP open item. A
//! [`CostTable`] instead evaluates the **full matrix exactly once per
//! solve** with a single hoisted model (egress/topology-aware via
//! [`CostModel::with_topology`] when the problem carries a topology),
//! alongside a per-entry SLA-feasibility mask and precomputed per-partition
//! column minima, and the solvers do table lookups from then on.
//!
//! Construction fans out across partitions with the deterministic parallel
//! helper ([`scope_cloudsim::parallel`]) on large instances; because every
//! row is a pure function of its partition, the table — and therefore every
//! solver result — is **bit-for-bit identical** to the sequential,
//! model-driven path (enforced by the differential proptests in
//! `tests/differential_costtable.rs` against [`crate::reference`]).

use crate::error::OptAssignError;
use crate::problem::{Assignment, OptAssignProblem, PartitionSpec};
use scope_cloudsim::parallel::parallel_map;
use scope_cloudsim::{CostBreakdown, CostModel, TierId};

/// Below this partition count the table is built sequentially: thread
/// spawn overhead would dominate the handful of evaluations. Purely a
/// wall-clock heuristic — the parallel and sequential builds are
/// bit-identical.
const PARALLEL_BUILD_MIN_PARTITIONS: usize = 64;

/// One partition's slice of the table, produced independently (and
/// possibly on another thread) during construction.
struct Row {
    cost: Vec<f64>,
    feasible: Vec<bool>,
    breakdowns: Vec<CostBreakdown>,
    min_feasible: Option<(f64, TierId, usize)>,
}

/// Evaluate one partition's tier-major block. Shared by the full build and
/// [`CostTable::patch_rows`] so a patched row is bit-for-bit the row a
/// from-scratch build would produce for the same spec.
fn build_row(
    problem: &OptAssignProblem,
    model: &CostModel,
    n_tiers: usize,
    p: &PartitionSpec,
) -> Row {
    let n_opts = p.compression_options.len();
    let mut cost = Vec::with_capacity(n_tiers * n_opts);
    let mut feasible = Vec::with_capacity(n_tiers * n_opts);
    let mut breakdowns = Vec::with_capacity(n_tiers * n_opts);
    let mut min_feasible: Option<(f64, TierId, usize)> = None;
    for t in 0..n_tiers {
        let tier = TierId(t);
        for k in 0..n_opts {
            let b = problem.cost_breakdown_with(model, p, tier, k);
            let c = problem.weighted_objective(&b);
            let ok = problem.is_feasible(p, tier, k);
            if ok && min_feasible.map(|(mc, _, _)| c < mc).unwrap_or(true) {
                min_feasible = Some((c, tier, k));
            }
            cost.push(c);
            feasible.push(ok);
            breakdowns.push(b);
        }
    }
    Row {
        cost,
        feasible,
        breakdowns,
        min_feasible,
    }
}

/// Dense per-solve cost matrix over `[partition × tier × compression]`.
///
/// Entry `(n, l, k)` holds the weighted objective contribution (Eq. 1) of
/// placing partition `n` on tier `l` with compression option `k`, the
/// matching unweighted [`CostBreakdown`], and whether the placement is
/// feasible (latency threshold + fixed-compression constraint; capacity is
/// a coupling constraint the solvers handle). Costs are priced for **all**
/// entries — including infeasible ones — so explicit choice lists (e.g.
/// re-pricing a plan under ground truth) can be evaluated from the table
/// too; feasibility is a separate mask.
#[derive(Debug, Clone)]
pub struct CostTable {
    n_tiers: usize,
    /// Start of partition `n`'s block in the flat arrays; the block is
    /// `n_tiers * n_options[n]` entries, tier-major.
    offsets: Vec<usize>,
    /// Compression option count per partition.
    n_options: Vec<usize>,
    cost: Vec<f64>,
    feasible: Vec<bool>,
    breakdowns: Vec<CostBreakdown>,
    /// Per-partition `(cost, tier, k)` minimum over feasible entries, in
    /// exactly the scan order and tie-break of
    /// [`OptAssignProblem::min_feasible_cost`].
    min_feasible: Vec<Option<(f64, TierId, usize)>>,
}

impl CostTable {
    /// Evaluate the full cost matrix for a **validated** problem.
    ///
    /// One [`CostModel`](scope_cloudsim::CostModel) is hoisted for the
    /// whole build; rows are computed in parallel (chunked by partition
    /// index, merged in index order) once the instance is large enough to
    /// repay the fan-out.
    ///
    /// # Panics
    ///
    /// May panic on unvalidated problems (out-of-catalog current tiers) —
    /// call [`OptAssignProblem::validate`] first, as every solver does.
    pub fn build(problem: &OptAssignProblem) -> CostTable {
        let model = problem.cost_model();
        let n_tiers = problem.n_tiers();

        let rows: Vec<Row> = if problem.partitions.len() >= PARALLEL_BUILD_MIN_PARTITIONS {
            parallel_map(&problem.partitions, |_, p| {
                build_row(problem, &model, n_tiers, p)
            })
        } else {
            problem
                .partitions
                .iter()
                .map(|p| build_row(problem, &model, n_tiers, p))
                .collect()
        };

        let total: usize = rows.iter().map(|r| r.cost.len()).sum();
        let mut table = CostTable {
            n_tiers,
            offsets: Vec::with_capacity(rows.len()),
            n_options: Vec::with_capacity(rows.len()),
            cost: Vec::with_capacity(total),
            feasible: Vec::with_capacity(total),
            breakdowns: Vec::with_capacity(total),
            min_feasible: Vec::with_capacity(rows.len()),
        };
        for (row, p) in rows.into_iter().zip(&problem.partitions) {
            table.offsets.push(table.cost.len());
            table.n_options.push(p.compression_options.len());
            table.cost.extend(row.cost);
            table.feasible.extend(row.feasible);
            table.breakdowns.extend(row.breakdowns);
            table.min_feasible.push(row.min_feasible);
        }
        table
    }

    /// Number of tiers per partition block.
    pub fn n_tiers(&self) -> usize {
        self.n_tiers
    }

    /// Number of partitions covered.
    pub fn n_partitions(&self) -> usize {
        self.offsets.len()
    }

    /// Number of compression options of partition `n`.
    pub fn n_options(&self, n: usize) -> usize {
        self.n_options[n]
    }

    #[inline]
    fn index(&self, n: usize, tier: TierId, k: usize) -> usize {
        debug_assert!(tier.index() < self.n_tiers && k < self.n_options[n]);
        self.offsets[n] + tier.index() * self.n_options[n] + k
    }

    /// Weighted objective contribution of placing partition `n` on `tier`
    /// with option `k` (priced even for infeasible entries).
    #[inline]
    pub fn cost(&self, n: usize, tier: TierId, k: usize) -> f64 {
        self.cost[self.index(n, tier, k)]
    }

    /// Unweighted cost breakdown of the same placement.
    #[inline]
    pub fn breakdown(&self, n: usize, tier: TierId, k: usize) -> &CostBreakdown {
        &self.breakdowns[self.index(n, tier, k)]
    }

    /// The SLA-feasibility mask: latency threshold and fixed-compression
    /// constraint, exactly [`OptAssignProblem::is_feasible`].
    #[inline]
    pub fn is_feasible(&self, n: usize, tier: TierId, k: usize) -> bool {
        self.feasible[self.index(n, tier, k)]
    }

    /// The precomputed column minimum of partition `n`: its cheapest
    /// feasible `(cost, tier, k)` ignoring capacity — the greedy choice and
    /// the branch-and-bound lower-bound ingredient. `None` when no
    /// placement satisfies the partition's constraints.
    #[inline]
    pub fn min_feasible(&self, n: usize) -> Option<(f64, TierId, usize)> {
        self.min_feasible[n]
    }

    /// Re-evaluate the blocks of the listed partitions in place — the delta
    /// update behind the incremental serving engine: after a batch of heat
    /// deltas changes the projected accesses of a few partitions, only
    /// their rows are re-priced and every untouched row is reused verbatim.
    ///
    /// Each patched block is computed by the same [`build_row`] arithmetic
    /// (one hoisted model, tier-major scan, identical min-feasible
    /// tie-break) the full build uses, so a patched table is **bit-for-bit
    /// equal** to `CostTable::build` of the mutated problem. Large
    /// worklists fan out over the deterministic parallel map, merged in
    /// worklist order.
    ///
    /// `problem` must be the same instance the table was built from, with
    /// only per-partition spec fields mutated: the partition count, tier
    /// count and each patched partition's option count must be unchanged
    /// (anything else needs a rebuild and is rejected).
    pub fn patch_rows(
        &mut self,
        problem: &OptAssignProblem,
        rows: &[usize],
    ) -> Result<(), OptAssignError> {
        if problem.partitions.len() != self.offsets.len() || problem.n_tiers() != self.n_tiers {
            return Err(OptAssignError::InvalidProblem(format!(
                "patch shape mismatch: table covers {} partitions x {} tiers, problem has {} x {}",
                self.offsets.len(),
                self.n_tiers,
                problem.partitions.len(),
                problem.n_tiers()
            )));
        }
        for &n in rows {
            if n >= self.offsets.len() {
                return Err(OptAssignError::InvalidProblem(format!(
                    "patched row {n} out of range ({} partitions)",
                    self.offsets.len()
                )));
            }
            if problem.partitions[n].compression_options.len() != self.n_options[n] {
                return Err(OptAssignError::InvalidProblem(format!(
                    "partition {n} changed its option count ({} -> {}); rebuild the table",
                    self.n_options[n],
                    problem.partitions[n].compression_options.len()
                )));
            }
        }
        let model = problem.cost_model();
        let patched: Vec<Row> = if rows.len() >= PARALLEL_BUILD_MIN_PARTITIONS {
            parallel_map(rows, |_, &n| {
                build_row(problem, &model, self.n_tiers, &problem.partitions[n])
            })
        } else {
            rows.iter()
                .map(|&n| build_row(problem, &model, self.n_tiers, &problem.partitions[n]))
                .collect()
        };
        for (&n, row) in rows.iter().zip(patched) {
            let lo = self.offsets[n];
            let hi = lo + self.n_tiers * self.n_options[n];
            self.cost[lo..hi].copy_from_slice(&row.cost);
            self.feasible[lo..hi].copy_from_slice(&row.feasible);
            self.breakdowns[lo..hi].copy_from_slice(&row.breakdowns);
            self.min_feasible[n] = row.min_feasible;
        }
        Ok(())
    }

    /// Feasible candidates of partition `n` sorted by increasing cost, in
    /// exactly the construction order and (stable) sort the historical
    /// branch-and-bound used, so the search expands identical nodes.
    pub fn candidates_sorted(&self, n: usize) -> Vec<(f64, TierId, usize)> {
        let mut cands = Vec::new();
        for t in 0..self.n_tiers {
            let tier = TierId(t);
            for k in 0..self.n_options[n] {
                if self.feasible[self.index(n, tier, k)] {
                    cands.push((self.cost(n, tier, k), tier, k));
                }
            }
        }
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        cands
    }

    /// Assemble an [`Assignment`] from explicit choices by summing table
    /// entries — same accumulation order (partition order) and arithmetic
    /// as [`Assignment::from_choices`], without touching the model again.
    pub fn assignment(
        &self,
        problem: &OptAssignProblem,
        choices: Vec<(TierId, usize)>,
    ) -> Result<Assignment, OptAssignError> {
        if choices.len() != problem.partitions.len() {
            return Err(OptAssignError::InvalidProblem(format!(
                "expected {} choices, got {}",
                problem.partitions.len(),
                choices.len()
            )));
        }
        let mut objective = 0.0;
        let mut breakdown = CostBreakdown::default();
        for (n, &(tier, k)) in choices.iter().enumerate() {
            objective += self.cost(n, tier, k);
            breakdown.accumulate(self.breakdown(n, tier, k));
        }
        Ok(Assignment {
            choices,
            objective,
            breakdown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{CompressionOption, PartitionSpec};
    use scope_cloudsim::{ProviderCatalog, TierCatalog};

    fn partition(id: usize, size: f64, accesses: f64) -> PartitionSpec {
        PartitionSpec::new(id, format!("p{id}"), size, accesses)
            .with_compression_option(CompressionOption::new("gzip", 4.0, 5.0))
            .with_compression_option(CompressionOption::new("snappy", 2.0, 0.5))
    }

    #[test]
    fn table_entries_match_the_model_driven_evaluation_exactly() {
        let providers = ProviderCatalog::azure_s3_gcs();
        let azure_hot = providers.merged_tier_id("azure", "Hot").unwrap();
        let parts: Vec<PartitionSpec> = (0..5)
            .map(|i| {
                partition(i, 10.0 * (i + 1) as f64, (i * 7) as f64)
                    .with_current_tier(azure_hot)
                    .with_latency_threshold(if i % 2 == 0 { 60.0 } else { f64::INFINITY })
            })
            .collect();
        let problem = OptAssignProblem::multi_provider(&providers, parts, 6.0);
        problem.validate().unwrap();
        let table = CostTable::build(&problem);
        assert_eq!(table.n_partitions(), 5);
        assert_eq!(table.n_tiers(), 12);
        for (n, p) in problem.partitions.iter().enumerate() {
            assert_eq!(table.n_options(n), 3);
            for tier in problem.catalog.tier_ids() {
                for k in 0..3 {
                    // Bit-for-bit: same arithmetic, hoisted model or not.
                    assert_eq!(
                        table.cost(n, tier, k).to_bits(),
                        problem.placement_cost(p, tier, k).to_bits()
                    );
                    assert_eq!(
                        table.breakdown(n, tier, k),
                        &problem.cost_breakdown(p, tier, k)
                    );
                    assert_eq!(
                        table.is_feasible(n, tier, k),
                        problem.is_feasible(p, tier, k)
                    );
                }
            }
            match (table.min_feasible(n), problem.min_feasible_cost(p)) {
                (Some((tc, tt, tk)), Some((mc, mt, mk))) => {
                    assert_eq!(tc.to_bits(), mc.to_bits());
                    assert_eq!((tt, tk), (mt, mk));
                }
                (a, b) => assert_eq!(a.is_none(), b.is_none()),
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        // 80 partitions crosses the parallel threshold; compare against a
        // small problem replicated row-by-row through the sequential path.
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<PartitionSpec> = (0..80)
            .map(|i| partition(i, 1.0 + (i % 13) as f64, (i % 7) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        problem.validate().unwrap();
        let table = CostTable::build(&problem);
        for (n, p) in problem.partitions.iter().enumerate() {
            for tier in problem.catalog.tier_ids() {
                for k in 0..p.compression_options.len() {
                    assert_eq!(
                        table.cost(n, tier, k).to_bits(),
                        problem.placement_cost(p, tier, k).to_bits(),
                        "entry ({n}, {tier}, {k})"
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_partitions_have_no_column_min() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![partition(0, 1.0, 1.0).with_latency_threshold(1e-9)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let table = CostTable::build(&problem);
        assert!(table.min_feasible(0).is_none());
        assert!(table.candidates_sorted(0).is_empty());
        // Costs are still priced for infeasible entries.
        assert!(table.cost(0, TierId(0), 0) > 0.0);
    }

    #[test]
    fn assignment_from_table_matches_from_choices() {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let parts = vec![partition(0, 10.0, 5.0), partition(1, 20.0, 1.0)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let table = CostTable::build(&problem);
        let choices = vec![(hot, 1), (cool, 0)];
        let via_table = table.assignment(&problem, choices.clone()).unwrap();
        let via_model = Assignment::from_choices(&problem, choices).unwrap();
        assert_eq!(via_table, via_model);
        assert!(table.assignment(&problem, vec![(hot, 0)]).is_err());
    }

    #[test]
    fn patched_rows_are_bit_identical_to_a_rebuild() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<PartitionSpec> = (0..90)
            .map(|i| partition(i, 1.0 + (i % 13) as f64, (i % 7) as f64))
            .collect();
        let mut problem = OptAssignProblem::new(catalog, parts, 6.0);
        problem.validate().unwrap();
        let mut table = CostTable::build(&problem);

        // Mutate a scattered worklist of projected accesses (the serving
        // engine's rebucketing) and patch only those rows.
        let worklist: Vec<usize> = (0..90).filter(|i| i % 7 == 3).collect();
        for &n in &worklist {
            problem.partitions[n].predicted_accesses *= 31.0;
        }
        table.patch_rows(&problem, &worklist).unwrap();

        let rebuilt = CostTable::build(&problem);
        for (n, p) in problem.partitions.iter().enumerate() {
            for tier in problem.catalog.tier_ids() {
                for k in 0..p.compression_options.len() {
                    assert_eq!(
                        table.cost(n, tier, k).to_bits(),
                        rebuilt.cost(n, tier, k).to_bits(),
                        "entry ({n}, {tier}, {k})"
                    );
                    assert_eq!(table.breakdown(n, tier, k), rebuilt.breakdown(n, tier, k));
                    assert_eq!(
                        table.is_feasible(n, tier, k),
                        rebuilt.is_feasible(n, tier, k)
                    );
                }
            }
            assert_eq!(table.min_feasible(n), rebuilt.min_feasible(n));
        }
    }

    #[test]
    fn patch_rejects_shape_changes() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![partition(0, 10.0, 5.0), partition(1, 20.0, 1.0)];
        let mut problem = OptAssignProblem::new(catalog, parts, 6.0);
        let mut table = CostTable::build(&problem);
        assert!(table.patch_rows(&problem, &[2]).is_err());
        problem.partitions[0].compression_options.pop();
        assert!(table.patch_rows(&problem, &[0]).is_err());
        problem.partitions.pop();
        assert!(table.patch_rows(&problem, &[0]).is_err());
    }
}
