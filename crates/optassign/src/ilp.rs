//! Exact branch-and-bound solver for the capacity-constrained ILP.
//!
//! OPTASSIGN with per-tier capacity reservations is strongly NP-hard
//! (Theorem 1, by reduction from 3-PARTITION), so an exact solver must be
//! worst-case exponential. This branch-and-bound explores partitions in
//! decreasing-size order (the classic first-fail heuristic for packing
//! problems), tries each partition's feasible (tier, scheme) choices in
//! increasing-cost order, and prunes with the lower bound
//!
//! ```text
//! bound(node) = cost so far + Σ_{remaining p} min feasible cost of p
//! ```
//!
//! which ignores the capacity coupling and is therefore admissible. On the
//! capacity-free instances of the paper it collapses to the greedy solution
//! immediately; on 3-PARTITION-like instances it still finds the exact
//! optimum, just more slowly.
//!
//! Candidate costs come from a [`CostTable`] evaluated once per solve (the
//! bound's suffix minima are the table's precomputed column-min scans); the
//! pre-table, clone-per-evaluation path survives as
//! [`crate::reference::solve_branch_and_bound_reference`] for differential
//! tests and benchmarks, sharing this module's search core so only the cost
//! evaluation differs.

use crate::costtable::CostTable;
use crate::error::OptAssignError;
use crate::problem::{Assignment, OptAssignProblem};
use scope_cloudsim::TierId;

/// Statistics about a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchAndBoundStats {
    /// Number of search nodes expanded.
    pub nodes_expanded: u64,
    /// Number of nodes pruned by the lower bound.
    pub nodes_pruned: u64,
    /// Whether the search completed (false = node budget exhausted and the
    /// incumbent is best-effort rather than proven optimal).
    pub proved_optimal: bool,
}

struct SearchState<'a> {
    problem: &'a OptAssignProblem,
    /// Partition visit order (indices into problem.partitions).
    order: Vec<usize>,
    /// Remaining capacity per tier (GB), infinity when unreserved.
    capacity: Vec<f64>,
    /// Per-partition candidate (cost, tier, k) lists, sorted by cost.
    candidates: Vec<Vec<(f64, TierId, usize)>>,
    /// Suffix sums of per-partition minimum feasible costs along `order`.
    suffix_min: Vec<f64>,
    /// Incumbent.
    best_cost: f64,
    best_choices: Option<Vec<(TierId, usize)>>,
    /// Current partial assignment along `order`.
    current: Vec<(TierId, usize)>,
    stats: BranchAndBoundStats,
    node_budget: u64,
}

impl<'a> SearchState<'a> {
    fn search(&mut self, depth: usize, cost_so_far: f64) {
        // The node budget only kicks in once an incumbent exists, so the
        // solver always returns at least one feasible (if unproven) solution
        // when the instance is feasible.
        if self.stats.nodes_expanded >= self.node_budget && self.best_choices.is_some() {
            return;
        }
        self.stats.nodes_expanded += 1;
        if depth == self.order.len() {
            if cost_so_far < self.best_cost {
                self.best_cost = cost_so_far;
                let mut choices = vec![(TierId(0), 0usize); self.order.len()];
                for (d, &pidx) in self.order.iter().enumerate() {
                    choices[pidx] = self.current[d];
                }
                self.best_choices = Some(choices);
            }
            return;
        }
        // Lower bound: cost so far plus the capacity-free minimum of the rest.
        if cost_so_far + self.suffix_min[depth] >= self.best_cost {
            self.stats.nodes_pruned += 1;
            return;
        }
        let pidx = self.order[depth];
        let partition = &self.problem.partitions[pidx];
        // Clone the candidate list reference by index to avoid borrow issues.
        for ci in 0..self.candidates[pidx].len() {
            let (cost, tier, k) = self.candidates[pidx][ci];
            let stored = partition.stored_gb(k);
            if stored > self.capacity[tier.index()] + 1e-9 {
                continue;
            }
            self.capacity[tier.index()] -= stored;
            self.current[depth] = (tier, k);
            self.search(depth + 1, cost_so_far + cost);
            self.capacity[tier.index()] += stored;
        }
    }
}

/// The search core shared by the table-driven and reference solvers: given
/// per-partition sorted candidate lists (each guaranteed non-empty by the
/// caller), run the branch-and-bound and return the best choices. How the
/// candidate costs were *evaluated* is the only thing the two paths differ
/// in.
pub(crate) fn branch_and_bound_search(
    problem: &OptAssignProblem,
    candidates: Vec<Vec<(f64, TierId, usize)>>,
    node_budget: u64,
) -> Result<(Vec<(TierId, usize)>, BranchAndBoundStats), OptAssignError> {
    let n = problem.partitions.len();

    // Visit order: largest partitions first (hardest to pack).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        problem.partitions[b]
            .size_gb
            .partial_cmp(&problem.partitions[a].size_gb)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Suffix minima of the capacity-free minimum cost along the visit order.
    let mut suffix_min = vec![0.0; n + 1];
    for d in (0..n).rev() {
        let pidx = order[d];
        suffix_min[d] = suffix_min[d + 1] + candidates[pidx][0].0;
    }

    // Initial capacities.
    let capacity: Vec<f64> = problem
        .catalog
        .iter()
        .map(|(_, t)| t.capacity_gb.unwrap_or(f64::INFINITY))
        .collect();

    // Quick infeasibility check: total stored size at the best per-partition
    // ratio must fit in the total capacity (when every tier is bounded).
    if capacity.iter().all(|c| c.is_finite()) {
        let min_total: f64 = problem
            .partitions
            .iter()
            .map(|p| {
                (0..p.compression_options.len())
                    .map(|k| p.stored_gb(k))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        if min_total > capacity.iter().sum::<f64>() + 1e-9 {
            return Err(OptAssignError::InfeasibleCapacity);
        }
    }

    let mut state = SearchState {
        problem,
        order,
        capacity,
        candidates,
        suffix_min,
        best_cost: f64::INFINITY,
        best_choices: None,
        current: vec![(TierId(0), 0); n],
        stats: BranchAndBoundStats::default(),
        node_budget,
    };
    state.search(0, 0.0);
    let proved_optimal = state.stats.nodes_expanded < node_budget;

    let choices = state
        .best_choices
        .ok_or(OptAssignError::InfeasibleCapacity)?;
    let mut stats = state.stats;
    stats.proved_optimal = proved_optimal;
    Ok((choices, stats))
}

/// Solve OPTASSIGN exactly with capacity constraints by branch and bound.
///
/// `node_budget` caps the number of explored nodes; when it is hit the best
/// incumbent found so far is returned with `proved_optimal = false`.
pub fn solve_branch_and_bound(
    problem: &OptAssignProblem,
    node_budget: u64,
) -> Result<(Assignment, BranchAndBoundStats), OptAssignError> {
    problem.validate()?;
    let table = CostTable::build(problem);

    // Candidate lists from the table's precomputed feasible entries.
    let mut candidates: Vec<Vec<(f64, TierId, usize)>> =
        Vec::with_capacity(problem.partitions.len());
    for (i, p) in problem.partitions.iter().enumerate() {
        let cands = table.candidates_sorted(i);
        if cands.is_empty() {
            return Err(OptAssignError::InfeasiblePartition {
                partition: p.id,
                name: p.name.clone(),
            });
        }
        candidates.push(cands);
    }

    let (choices, stats) = branch_and_bound_search(problem, candidates, node_budget)?;
    let assignment = table.assignment(problem, choices)?;
    Ok((assignment, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use crate::problem::{CompressionOption, PartitionSpec};
    use scope_cloudsim::TierCatalog;

    fn partition(id: usize, size: f64, accesses: f64) -> PartitionSpec {
        PartitionSpec::new(id, format!("p{id}"), size, accesses)
            .with_compression_option(CompressionOption::new("gzip", 4.0, 5.0))
    }

    #[test]
    fn matches_greedy_when_capacity_is_unbounded() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..8)
            .map(|i| partition(i, 10.0 * (i + 1) as f64, (i * 3) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let greedy = solve_greedy(&problem).unwrap();
        let (bnb, stats) = solve_branch_and_bound(&problem, 1_000_000).unwrap();
        assert!((bnb.objective - greedy.objective).abs() < 1e-6);
        assert!(stats.proved_optimal);
        assert!(stats.nodes_expanded > 0);
    }

    #[test]
    fn capacity_constraints_force_spill_to_other_tiers() {
        // Premium can hold only one of the two hot partitions; the exact
        // solver must place the other elsewhere, while the greedy (capacity
        // oblivious) would put both on premium.
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 100.0).unwrap();
        let premium = catalog.tier_id("Premium").unwrap();
        let parts = vec![
            PartitionSpec::new(0, "a", 100.0, 10_000.0),
            PartitionSpec::new(1, "b", 100.0, 10_000.0),
        ];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let (a, stats) = solve_branch_and_bound(&problem, 1_000_000).unwrap();
        let on_premium = a
            .choices
            .iter()
            .filter(|(tier, _)| *tier == premium)
            .count();
        assert!(on_premium <= 1);
        assert!(stats.proved_optimal);
        // Greedy ignores capacity and would overload premium.
        let greedy = solve_greedy(&problem).unwrap();
        let greedy_on_premium = greedy
            .choices
            .iter()
            .filter(|(tier, _)| *tier == premium)
            .count();
        assert_eq!(greedy_on_premium, 2);
        assert!(a.objective >= greedy.objective - 1e-9);
    }

    #[test]
    fn solves_a_three_partition_like_packing_instance_exactly() {
        // 6 partitions of sizes that must split 3/3 across two equally-priced
        // bounded tiers; the optimum packs them to fit exactly.
        let mut catalog = TierCatalog::azure_hot_cool();
        catalog.set_capacity("Hot", 60.0).unwrap();
        catalog.set_capacity("Cool", 60.0).unwrap();
        let sizes = [10.0, 20.0, 30.0, 15.0, 25.0, 20.0]; // total 120
        let parts: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| PartitionSpec::new(i, format!("p{i}"), s, 0.0))
            .collect();
        let problem = OptAssignProblem::new(catalog.clone(), parts, 1.0);
        let (a, stats) = solve_branch_and_bound(&problem, 10_000_000).unwrap();
        assert!(stats.proved_optimal);
        // Per-tier stored volume must respect the 60 GB reservations.
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let volume = |tier| {
            problem
                .partitions
                .iter()
                .zip(&a.choices)
                .filter(|(_, &(t, _))| t == tier)
                .map(|(p, &(_, k))| p.stored_gb(k))
                .sum::<f64>()
        };
        assert!(volume(hot) <= 60.0 + 1e-9);
        assert!(volume(cool) <= 60.0 + 1e-9);
    }

    #[test]
    fn infeasible_capacity_is_detected() {
        let mut catalog = TierCatalog::azure_hot_cool();
        catalog.set_capacity("Hot", 1.0).unwrap();
        catalog.set_capacity("Cool", 1.0).unwrap();
        let parts = vec![PartitionSpec::new(0, "big", 100.0, 0.0)];
        let problem = OptAssignProblem::new(catalog, parts, 1.0);
        assert!(matches!(
            solve_branch_and_bound(&problem, 100_000),
            Err(OptAssignError::InfeasibleCapacity)
        ));
    }

    #[test]
    fn node_budget_returns_best_effort_solution() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..12)
            .map(|i| partition(i, 10.0 + i as f64, i as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let (a, stats) = solve_branch_and_bound(&problem, 5).unwrap();
        assert!(!stats.proved_optimal);
        assert_eq!(a.choices.len(), 12);
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![partition(0, 10.0, 1.0).with_latency_threshold(1e-6)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_branch_and_bound(&problem, 1000),
            Err(OptAssignError::InfeasiblePartition { .. })
        ));
    }
}
