//! Exact branch-and-bound solver for the capacity-constrained ILP.
//!
//! OPTASSIGN with per-tier capacity reservations is strongly NP-hard
//! (Theorem 1, by reduction from 3-PARTITION), so an exact solver must be
//! worst-case exponential. This branch-and-bound explores partitions in
//! decreasing-size order (the classic first-fail heuristic for packing
//! problems), tries each partition's feasible (tier, scheme) choices in
//! increasing-cost order, and prunes with the lower bound
//!
//! ```text
//! bound(node) = cost so far + Σ_{remaining p} min feasible cost of p
//! ```
//!
//! which ignores the capacity coupling and is therefore admissible. On the
//! capacity-free instances of the paper it collapses to the greedy solution
//! immediately; on 3-PARTITION-like instances it still finds the exact
//! optimum, just more slowly.
//!
//! Candidate costs come from a [`CostTable`] evaluated once per solve (the
//! bound's suffix minima are the table's precomputed column-min scans); the
//! pre-table, clone-per-evaluation path survives as
//! [`crate::reference::solve_branch_and_bound_reference`] for differential
//! tests and benchmarks, sharing this module's search core so only the cost
//! evaluation differs.

use crate::costtable::CostTable;
use crate::error::OptAssignError;
use crate::problem::{Assignment, OptAssignProblem};
use scope_cloudsim::TierId;

/// Statistics about a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchAndBoundStats {
    /// Number of search nodes expanded.
    pub nodes_expanded: u64,
    /// Number of nodes pruned by the lower bound.
    pub nodes_pruned: u64,
    /// Whether the search completed (false = node budget exhausted and the
    /// incumbent is best-effort rather than proven optimal).
    pub proved_optimal: bool,
}

struct SearchState<'a> {
    problem: &'a OptAssignProblem,
    /// Partition visit order (indices into problem.partitions).
    order: Vec<usize>,
    /// Remaining capacity per tier (GB), infinity when unreserved.
    capacity: Vec<f64>,
    /// Per-partition candidate (cost, tier, k) lists, sorted by cost.
    candidates: Vec<Vec<(f64, TierId, usize)>>,
    /// Suffix sums of per-partition minimum feasible costs along `order`.
    suffix_min: Vec<f64>,
    /// Incumbent.
    best_cost: f64,
    best_choices: Option<Vec<(TierId, usize)>>,
    /// Current partial assignment along `order`.
    current: Vec<(TierId, usize)>,
    stats: BranchAndBoundStats,
    node_budget: u64,
}

impl<'a> SearchState<'a> {
    fn search(&mut self, depth: usize, cost_so_far: f64) {
        // The node budget only kicks in once an incumbent exists, so the
        // solver always returns at least one feasible (if unproven) solution
        // when the instance is feasible.
        if self.stats.nodes_expanded >= self.node_budget && self.best_choices.is_some() {
            return;
        }
        self.stats.nodes_expanded += 1;
        if depth == self.order.len() {
            if cost_so_far < self.best_cost {
                self.best_cost = cost_so_far;
                let mut choices = vec![(TierId(0), 0usize); self.order.len()];
                for (d, &pidx) in self.order.iter().enumerate() {
                    choices[pidx] = self.current[d];
                }
                self.best_choices = Some(choices);
            }
            return;
        }
        // Lower bound: cost so far plus the capacity-free minimum of the rest.
        if cost_so_far + self.suffix_min[depth] >= self.best_cost {
            self.stats.nodes_pruned += 1;
            return;
        }
        let pidx = self.order[depth];
        let partition = &self.problem.partitions[pidx];
        // Clone the candidate list reference by index to avoid borrow issues.
        for ci in 0..self.candidates[pidx].len() {
            let (cost, tier, k) = self.candidates[pidx][ci];
            let stored = partition.stored_gb(k);
            if stored > self.capacity[tier.index()] + 1e-9 {
                continue;
            }
            self.capacity[tier.index()] -= stored;
            self.current[depth] = (tier, k);
            self.search(depth + 1, cost_so_far + cost);
            self.capacity[tier.index()] += stored;
        }
    }
}

/// The search core shared by the table-driven and reference solvers: given
/// per-partition sorted candidate lists (each guaranteed non-empty by the
/// caller), run the branch-and-bound and return the best choices. How the
/// candidate costs were *evaluated* is the only thing the two paths differ
/// in.
pub(crate) fn branch_and_bound_search(
    problem: &OptAssignProblem,
    candidates: Vec<Vec<(f64, TierId, usize)>>,
    node_budget: u64,
) -> Result<(Vec<(TierId, usize)>, BranchAndBoundStats), OptAssignError> {
    branch_and_bound_search_warm(problem, candidates, node_budget, None)
}

/// An incumbent seed for the warm search: the choices and per-partition
/// costs of a known-feasible assignment.
pub(crate) type WarmStart = (Vec<(TierId, usize)>, Vec<f64>);

/// [`branch_and_bound_search`] with an optional incumbent seed: `warm` is
/// `(choices, per-partition cost)` of a known-feasible assignment. The seed
/// only tightens the pruning bound — ties lose to the incumbent (the leaf
/// comparison is strict), so seeding with an optimum returns that optimum's
/// exact choices, and seeding with anything else returns what the cold
/// search would have found.
pub(crate) fn branch_and_bound_search_warm(
    problem: &OptAssignProblem,
    candidates: Vec<Vec<(f64, TierId, usize)>>,
    node_budget: u64,
    warm: Option<WarmStart>,
) -> Result<(Vec<(TierId, usize)>, BranchAndBoundStats), OptAssignError> {
    let n = problem.partitions.len();

    // Visit order: largest partitions first (hardest to pack).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        problem.partitions[b]
            .size_gb
            .partial_cmp(&problem.partitions[a].size_gb)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Seed the incumbent from the warm start. Its cost is accumulated along
    // the visit order — the exact running sum a search leaf reaching the
    // same choices would carry — so the strict `<` tie-break behaves as if
    // the search had discovered the incumbent first.
    let (best_cost, best_choices) = match warm {
        Some((choices, costs)) => {
            let mut c = 0.0;
            for &pidx in &order {
                c += costs[pidx];
            }
            (c, Some(choices))
        }
        None => (f64::INFINITY, None),
    };

    // Suffix minima of the capacity-free minimum cost along the visit order.
    let mut suffix_min = vec![0.0; n + 1];
    for d in (0..n).rev() {
        let pidx = order[d];
        suffix_min[d] = suffix_min[d + 1] + candidates[pidx][0].0;
    }

    // Initial capacities.
    let capacity: Vec<f64> = problem
        .catalog
        .iter()
        .map(|(_, t)| t.capacity_gb.unwrap_or(f64::INFINITY))
        .collect();

    // Quick infeasibility check: total stored size at the best per-partition
    // ratio must fit in the total capacity (when every tier is bounded).
    if capacity.iter().all(|c| c.is_finite()) {
        let min_total: f64 = problem
            .partitions
            .iter()
            .map(|p| {
                (0..p.compression_options.len())
                    .map(|k| p.stored_gb(k))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        if min_total > capacity.iter().sum::<f64>() + 1e-9 {
            return Err(OptAssignError::InfeasibleCapacity);
        }
    }

    let mut state = SearchState {
        problem,
        order,
        capacity,
        candidates,
        suffix_min,
        best_cost,
        best_choices,
        current: vec![(TierId(0), 0); n],
        stats: BranchAndBoundStats::default(),
        node_budget,
    };
    state.search(0, 0.0);
    let proved_optimal = state.stats.nodes_expanded < node_budget;

    let choices = state
        .best_choices
        .ok_or(OptAssignError::InfeasibleCapacity)?;
    let mut stats = state.stats;
    stats.proved_optimal = proved_optimal;
    Ok((choices, stats))
}

/// Solve OPTASSIGN exactly with capacity constraints by branch and bound.
///
/// `node_budget` caps the number of explored nodes; when it is hit the best
/// incumbent found so far is returned with `proved_optimal = false`.
pub fn solve_branch_and_bound(
    problem: &OptAssignProblem,
    node_budget: u64,
) -> Result<(Assignment, BranchAndBoundStats), OptAssignError> {
    problem.validate()?;
    let table = CostTable::build(problem);

    // Candidate lists from the table's precomputed feasible entries.
    let mut candidates: Vec<Vec<(f64, TierId, usize)>> =
        Vec::with_capacity(problem.partitions.len());
    for (i, p) in problem.partitions.iter().enumerate() {
        let cands = table.candidates_sorted(i);
        if cands.is_empty() {
            return Err(OptAssignError::InfeasiblePartition {
                partition: p.id,
                name: p.name.clone(),
            });
        }
        candidates.push(cands);
    }

    let (choices, stats) = branch_and_bound_search(problem, candidates, node_budget)?;
    let assignment = table.assignment(problem, choices)?;
    Ok((assignment, stats))
}

/// Warm-started branch and bound over a caller-held [`CostTable`] — the
/// serving-engine re-solve entry point: the table is typically the previous
/// epoch's, delta-patched with [`CostTable::patch_rows`], and `incumbent`
/// is the previous epoch's assignment.
///
/// The incumbent seeds the search's best cost/choices, so the bound prunes
/// from the first node; because the leaf comparison is strict, an optimal
/// incumbent is returned unchanged and a stale one is improved to exactly
/// what the cold search finds. The incumbent must be feasible for the
/// *current* table (per-entry mask + capacity), which is checked up front.
pub fn solve_branch_and_bound_warm(
    problem: &OptAssignProblem,
    table: &CostTable,
    incumbent: &[(TierId, usize)],
    node_budget: u64,
) -> Result<(Assignment, BranchAndBoundStats), OptAssignError> {
    problem.validate()?;
    if incumbent.len() != problem.partitions.len() {
        return Err(OptAssignError::InvalidProblem(format!(
            "incumbent covers {} partitions, problem has {}",
            incumbent.len(),
            problem.partitions.len()
        )));
    }
    let mut used = vec![0.0f64; problem.catalog.len()];
    let mut costs = Vec::with_capacity(incumbent.len());
    for (n, (p, &(tier, k))) in problem.partitions.iter().zip(incumbent).enumerate() {
        if !table.is_feasible(n, tier, k) {
            return Err(OptAssignError::InvalidProblem(format!(
                "incumbent choice for partition {} is infeasible",
                p.name
            )));
        }
        used[tier.index()] += p.stored_gb(k);
        costs.push(table.cost(n, tier, k));
    }
    for (ti, (_, t)) in problem.catalog.iter().enumerate() {
        if let Some(cap) = t.capacity_gb {
            if used[ti] > cap + 1e-9 {
                return Err(OptAssignError::InvalidProblem(format!(
                    "incumbent overfills tier {ti}: {} GB of {} GB",
                    used[ti], cap
                )));
            }
        }
    }

    let mut candidates: Vec<Vec<(f64, TierId, usize)>> =
        Vec::with_capacity(problem.partitions.len());
    for (i, p) in problem.partitions.iter().enumerate() {
        let cands = table.candidates_sorted(i);
        if cands.is_empty() {
            return Err(OptAssignError::InfeasiblePartition {
                partition: p.id,
                name: p.name.clone(),
            });
        }
        candidates.push(cands);
    }

    let (choices, stats) = branch_and_bound_search_warm(
        problem,
        candidates,
        node_budget,
        Some((incumbent.to_vec(), costs)),
    )?;
    let assignment = table.assignment(problem, choices)?;
    Ok((assignment, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use crate::problem::{CompressionOption, PartitionSpec};
    use scope_cloudsim::TierCatalog;

    fn partition(id: usize, size: f64, accesses: f64) -> PartitionSpec {
        PartitionSpec::new(id, format!("p{id}"), size, accesses)
            .with_compression_option(CompressionOption::new("gzip", 4.0, 5.0))
    }

    #[test]
    fn matches_greedy_when_capacity_is_unbounded() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..8)
            .map(|i| partition(i, 10.0 * (i + 1) as f64, (i * 3) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let greedy = solve_greedy(&problem).unwrap();
        let (bnb, stats) = solve_branch_and_bound(&problem, 1_000_000).unwrap();
        assert!((bnb.objective - greedy.objective).abs() < 1e-6);
        assert!(stats.proved_optimal);
        assert!(stats.nodes_expanded > 0);
    }

    #[test]
    fn capacity_constraints_force_spill_to_other_tiers() {
        // Premium can hold only one of the two hot partitions; the exact
        // solver must place the other elsewhere, while the greedy (capacity
        // oblivious) would put both on premium.
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 100.0).unwrap();
        let premium = catalog.tier_id("Premium").unwrap();
        let parts = vec![
            PartitionSpec::new(0, "a", 100.0, 10_000.0),
            PartitionSpec::new(1, "b", 100.0, 10_000.0),
        ];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let (a, stats) = solve_branch_and_bound(&problem, 1_000_000).unwrap();
        let on_premium = a
            .choices
            .iter()
            .filter(|(tier, _)| *tier == premium)
            .count();
        assert!(on_premium <= 1);
        assert!(stats.proved_optimal);
        // Greedy ignores capacity and would overload premium.
        let greedy = solve_greedy(&problem).unwrap();
        let greedy_on_premium = greedy
            .choices
            .iter()
            .filter(|(tier, _)| *tier == premium)
            .count();
        assert_eq!(greedy_on_premium, 2);
        assert!(a.objective >= greedy.objective - 1e-9);
    }

    #[test]
    fn solves_a_three_partition_like_packing_instance_exactly() {
        // 6 partitions of sizes that must split 3/3 across two equally-priced
        // bounded tiers; the optimum packs them to fit exactly.
        let mut catalog = TierCatalog::azure_hot_cool();
        catalog.set_capacity("Hot", 60.0).unwrap();
        catalog.set_capacity("Cool", 60.0).unwrap();
        let sizes = [10.0, 20.0, 30.0, 15.0, 25.0, 20.0]; // total 120
        let parts: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| PartitionSpec::new(i, format!("p{i}"), s, 0.0))
            .collect();
        let problem = OptAssignProblem::new(catalog.clone(), parts, 1.0);
        let (a, stats) = solve_branch_and_bound(&problem, 10_000_000).unwrap();
        assert!(stats.proved_optimal);
        // Per-tier stored volume must respect the 60 GB reservations.
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let volume = |tier| {
            problem
                .partitions
                .iter()
                .zip(&a.choices)
                .filter(|(_, &(t, _))| t == tier)
                .map(|(p, &(_, k))| p.stored_gb(k))
                .sum::<f64>()
        };
        assert!(volume(hot) <= 60.0 + 1e-9);
        assert!(volume(cool) <= 60.0 + 1e-9);
    }

    #[test]
    fn infeasible_capacity_is_detected() {
        let mut catalog = TierCatalog::azure_hot_cool();
        catalog.set_capacity("Hot", 1.0).unwrap();
        catalog.set_capacity("Cool", 1.0).unwrap();
        let parts = vec![PartitionSpec::new(0, "big", 100.0, 0.0)];
        let problem = OptAssignProblem::new(catalog, parts, 1.0);
        assert!(matches!(
            solve_branch_and_bound(&problem, 100_000),
            Err(OptAssignError::InfeasibleCapacity)
        ));
    }

    #[test]
    fn node_budget_returns_best_effort_solution() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..12)
            .map(|i| partition(i, 10.0 + i as f64, i as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let (a, stats) = solve_branch_and_bound(&problem, 5).unwrap();
        assert!(!stats.proved_optimal);
        assert_eq!(a.choices.len(), 12);
    }

    #[test]
    fn warm_start_with_the_cold_optimum_returns_it_unchanged() {
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 100.0).unwrap();
        let parts: Vec<_> = (0..8)
            .map(|i| partition(i, 10.0 * (i + 1) as f64, (i * 700) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let (cold, cold_stats) = solve_branch_and_bound(&problem, 1_000_000).unwrap();
        assert!(cold_stats.proved_optimal);

        let table = CostTable::build(&problem);
        let (warm, warm_stats) =
            solve_branch_and_bound_warm(&problem, &table, &cold.choices, 1_000_000).unwrap();
        // The strict leaf comparison keeps the seeded optimum on ties, so
        // the choices — not just the objective — are identical.
        assert_eq!(warm.choices, cold.choices);
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert!(warm_stats.proved_optimal);
        // Seeding a finite bound can only tighten pruning.
        assert!(warm_stats.nodes_expanded <= cold_stats.nodes_expanded);
    }

    #[test]
    fn warm_start_improves_a_suboptimal_feasible_incumbent() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..6)
            .map(|i| partition(i, 10.0 * (i + 1) as f64, (i * 1500) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let table = CostTable::build(&problem);
        // Deliberately bad incumbent: everything uncompressed on tier 0.
        let bad: Vec<_> = (0..6).map(|_| (TierId(0), 0usize)).collect();
        assert!(bad
            .iter()
            .enumerate()
            .all(|(n, &(t, k))| table.is_feasible(n, t, k)));
        let (warm, _) = solve_branch_and_bound_warm(&problem, &table, &bad, 1_000_000).unwrap();
        let (cold, _) = solve_branch_and_bound(&problem, 1_000_000).unwrap();
        assert_eq!(warm.choices, cold.choices);
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn warm_start_rejects_bad_incumbents() {
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 15.0).unwrap();
        let premium = catalog.tier_id("Premium").unwrap();
        let parts = vec![
            PartitionSpec::new(0, "a", 10.0, 0.0).with_latency_threshold(0.5),
            PartitionSpec::new(1, "b", 10.0, 0.0),
        ];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let table = CostTable::build(&problem);

        // Wrong length.
        assert!(matches!(
            solve_branch_and_bound_warm(&problem, &table, &[(TierId(0), 0)], 1000),
            Err(OptAssignError::InvalidProblem(_))
        ));
        // Infeasible entry: "a" has a latency threshold archive tiers miss.
        let archive = problem.catalog.tier_id("Archive").unwrap();
        assert!(matches!(
            solve_branch_and_bound_warm(&problem, &table, &[(archive, 0), (TierId(0), 0)], 1000),
            Err(OptAssignError::InvalidProblem(_))
        ));
        // Overfilled capacity: both 10 GB objects on the 15 GB premium tier.
        assert!(matches!(
            solve_branch_and_bound_warm(&problem, &table, &[(premium, 0), (premium, 0)], 1000),
            Err(OptAssignError::InvalidProblem(_))
        ));
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![partition(0, 10.0, 1.0).with_latency_threshold(1e-6)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_branch_and_bound(&problem, 1000),
            Err(OptAssignError::InfeasiblePartition { .. })
        ));
    }
}
