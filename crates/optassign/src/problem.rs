//! Problem definition and the cost model of the OPTASSIGN ILP (Eq. 1).
//!
//! For partition `P_n` assigned to tier `l` with compression scheme `k`
//! (ratio `R^k_n`, decompression time `D^k_n`), the objective charges
//!
//! ```text
//!   (α·C^s_l·horizon + γ·Δ_{L(P_n),l}) · Sp(P_n)/R^k_n
//! + β·(1−f)·ρ(P_n)·(C^c·D^k_n + C^r_l·Sp(P_n)·read_fraction/R^k_n)
//! ```
//!
//! subject to: every partition gets exactly one (tier, scheme); the stored
//! (compressed) bytes per tier respect the capacity reservation `S_l`; the
//! access latency `D^k_n + B_l` respects the partition's threshold
//! `T(P_n)`; and existing partitions keep their current compression scheme.
//! `f` is the fraction of queries that can be answered by computation
//! pushdown / directly on compressed data (0 when pushdown is unsupported).

use crate::error::OptAssignError;
use scope_cloudsim::{
    CostBreakdown, CostModel, CostWeights, ProviderCatalog, ProviderTopology, TierCatalog, TierId,
};
use serde::{Deserialize, Serialize};

/// Index of the mandatory "no compression" option in every partition's
/// option list.
pub const NO_COMPRESSION: usize = 0;

/// One candidate compression scheme for a partition, with its (predicted or
/// measured) performance on that partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionOption {
    /// Scheme name ("none", "gzip", "snappy", "lz4", ...).
    pub name: String,
    /// Compression ratio `R^k_n` (>= 1 in practice; 1.0 for "none").
    pub ratio: f64,
    /// Decompression time `D^k_n` in seconds per access (0.0 for "none").
    pub decompress_seconds: f64,
}

impl CompressionOption {
    /// The mandatory "no compression" option.
    pub fn none() -> Self {
        CompressionOption {
            name: "none".to_string(),
            ratio: 1.0,
            decompress_seconds: 0.0,
        }
    }

    /// A named compression option.
    pub fn new(name: impl Into<String>, ratio: f64, decompress_seconds: f64) -> Self {
        CompressionOption {
            name: name.into(),
            ratio,
            decompress_seconds,
        }
    }
}

/// A data partition (or whole dataset) to be placed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Dense id (index in the problem's partition list).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Uncompressed size in GB (`Sp(P_n)`).
    pub size_gb: f64,
    /// Projected number of accesses over the horizon (`ρ(P_n)`).
    pub predicted_accesses: f64,
    /// Fraction of the partition read per access (1.0 = full scans).
    pub read_fraction: f64,
    /// Latency threshold `T(P_n)` in seconds.
    pub latency_threshold_seconds: f64,
    /// Tier the partition currently occupies (`None` = newly ingested,
    /// the paper's `L(P_i) = -1`).
    pub current_tier: Option<TierId>,
    /// Days the partition has already resided on `current_tier`. Moving it
    /// off a tier before that tier's minimum residency period is priced as
    /// an early-deletion penalty for the *unmet* days, so the objective
    /// sees the same charge the billing engine will levy.
    pub residency_days: u32,
    /// For existing partitions whose compression must not change: the index
    /// of the only allowed compression option (`K(P_n)`).
    pub fixed_compression: Option<usize>,
    /// Candidate compression options; index [`NO_COMPRESSION`] must be the
    /// "no compression" option.
    pub compression_options: Vec<CompressionOption>,
}

impl PartitionSpec {
    /// Create a partition with only the "no compression" option and a
    /// best-effort latency threshold.
    pub fn new(id: usize, name: impl Into<String>, size_gb: f64, predicted_accesses: f64) -> Self {
        PartitionSpec {
            id,
            name: name.into(),
            size_gb,
            predicted_accesses,
            read_fraction: 1.0,
            latency_threshold_seconds: f64::INFINITY,
            current_tier: None,
            residency_days: 0,
            fixed_compression: None,
            compression_options: vec![CompressionOption::none()],
        }
    }

    /// Builder-style setter for the latency threshold.
    pub fn with_latency_threshold(mut self, seconds: f64) -> Self {
        self.latency_threshold_seconds = seconds;
        self
    }

    /// Builder-style setter for the current tier.
    pub fn with_current_tier(mut self, tier: TierId) -> Self {
        self.current_tier = Some(tier);
        self
    }

    /// Builder-style setter for the days already served on the current tier.
    pub fn with_residency_days(mut self, days: u32) -> Self {
        self.residency_days = days;
        self
    }

    /// Builder-style setter for the read fraction.
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction;
        self
    }

    /// Builder-style addition of a compression option, returning its index.
    pub fn with_compression_option(mut self, option: CompressionOption) -> Self {
        self.compression_options.push(option);
        self
    }

    /// Validate the partition specification.
    pub fn validate(&self) -> Result<(), OptAssignError> {
        if !(self.size_gb >= 0.0) || !self.size_gb.is_finite() {
            return Err(OptAssignError::InvalidProblem(format!(
                "partition {} has invalid size {}",
                self.name, self.size_gb
            )));
        }
        if !(self.predicted_accesses >= 0.0) {
            return Err(OptAssignError::InvalidProblem(format!(
                "partition {} has invalid access count {}",
                self.name, self.predicted_accesses
            )));
        }
        if self.compression_options.is_empty()
            || self.compression_options[NO_COMPRESSION].ratio != 1.0
        {
            return Err(OptAssignError::InvalidProblem(format!(
                "partition {} must have the 'no compression' option at index 0",
                self.name
            )));
        }
        if let Some(k) = self.fixed_compression {
            if k >= self.compression_options.len() {
                return Err(OptAssignError::InvalidProblem(format!(
                    "partition {} fixes compression option {k} which does not exist",
                    self.name
                )));
            }
        }
        for opt in &self.compression_options {
            if !(opt.ratio > 0.0) || !(opt.decompress_seconds >= 0.0) {
                return Err(OptAssignError::InvalidProblem(format!(
                    "partition {} has an invalid compression option {}",
                    self.name, opt.name
                )));
            }
        }
        Ok(())
    }

    /// Stored size in GB under compression option `k`.
    pub fn stored_gb(&self, k: usize) -> f64 {
        self.size_gb / self.compression_options[k].ratio
    }
}

/// An OPTASSIGN problem instance.
#[derive(Debug, Clone)]
pub struct OptAssignProblem {
    /// The tier catalog (costs, latencies, capacities). For multi-provider
    /// instances this is a *merged* catalog (see
    /// [`ProviderCatalog::merged_catalog`]) and [`Self::topology`] carries
    /// the provider identity of every tier.
    pub catalog: TierCatalog,
    /// Provider identity + egress matrix for the tiers of a merged
    /// multi-provider catalog. `None` for the classic single-provider
    /// problem (no egress anywhere).
    pub topology: Option<ProviderTopology>,
    /// Partitions to place.
    pub partitions: Vec<PartitionSpec>,
    /// Objective weights (α, β, γ).
    pub weights: CostWeights,
    /// Projection horizon in months (storage is charged per month).
    pub horizon_months: f64,
    /// Fraction `f` of queries answered by pushdown / directly on compressed
    /// data (they pay neither read nor decompression cost).
    pub pushdown_fraction: f64,
}

impl OptAssignProblem {
    /// Create a problem with default weights, no pushdown.
    pub fn new(catalog: TierCatalog, partitions: Vec<PartitionSpec>, horizon_months: f64) -> Self {
        OptAssignProblem {
            catalog,
            topology: None,
            partitions,
            weights: CostWeights::default(),
            horizon_months,
            pushdown_fraction: 0.0,
        }
    }

    /// Create a problem over the merged tier space of a multi-provider
    /// catalog. Partition `current_tier`s use merged [`TierId`]s and every
    /// solver prices cross-provider moves with the catalog's egress matrix.
    pub fn multi_provider(
        providers: &ProviderCatalog,
        partitions: Vec<PartitionSpec>,
        horizon_months: f64,
    ) -> Self {
        OptAssignProblem {
            catalog: providers.merged_catalog(),
            topology: Some(providers.topology()),
            partitions,
            weights: CostWeights::default(),
            horizon_months,
            pushdown_fraction: 0.0,
        }
    }

    /// Builder-style setter for the provider topology (for callers that
    /// build the merged catalog themselves).
    pub fn with_topology(mut self, topology: ProviderTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Builder-style setter for the objective weights.
    pub fn with_weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// The cost model this problem prices placements with (egress-aware
    /// when a topology is attached).
    pub fn cost_model(&self) -> CostModel {
        match &self.topology {
            Some(t) => CostModel::with_topology(self.catalog.clone(), t.clone()),
            None => CostModel::new(self.catalog.clone()),
        }
    }

    /// Builder-style setter for the pushdown fraction.
    pub fn with_pushdown_fraction(mut self, f: f64) -> Self {
        self.pushdown_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Validate the whole problem.
    pub fn validate(&self) -> Result<(), OptAssignError> {
        if self.partitions.is_empty() {
            return Err(OptAssignError::InvalidProblem(
                "no partitions to place".to_string(),
            ));
        }
        if !(self.horizon_months > 0.0) {
            return Err(OptAssignError::InvalidProblem(format!(
                "horizon_months must be positive, got {}",
                self.horizon_months
            )));
        }
        if let Some(t) = &self.topology {
            if t.tier_count() != self.catalog.len() {
                return Err(OptAssignError::InvalidProblem(format!(
                    "provider topology covers {} tiers but the catalog has {} — \
                     catalog and topology must come from the same ProviderCatalog",
                    t.tier_count(),
                    self.catalog.len()
                )));
            }
        }
        for (i, p) in self.partitions.iter().enumerate() {
            if p.id != i {
                return Err(OptAssignError::InvalidProblem(format!(
                    "partition ids must be dense indices: expected {i}, found {}",
                    p.id
                )));
            }
            p.validate()?;
            if let Some(from) = p.current_tier {
                self.catalog.tier(from).map_err(|e| {
                    OptAssignError::InvalidProblem(format!(
                        "partition {} has an unknown current tier: {e}",
                        p.name
                    ))
                })?;
            }
        }
        Ok(())
    }

    /// Number of tiers.
    pub fn n_tiers(&self) -> usize {
        self.catalog.len()
    }

    /// Effective accesses that pay read + decompression (the `(1-f)ρ` term).
    fn effective_accesses(&self, p: &PartitionSpec) -> f64 {
        (1.0 - self.pushdown_fraction) * p.predicted_accesses
    }

    /// Access latency of partition `p` on tier `tier` under option `k`.
    pub fn latency_seconds(&self, p: &PartitionSpec, tier: TierId, k: usize) -> f64 {
        let ttfb = self
            .catalog
            .tier(tier)
            .map(|t| t.ttfb_seconds)
            .unwrap_or(f64::INFINITY);
        ttfb + p.compression_options[k].decompress_seconds
    }

    /// Is the (tier, option) choice feasible for partition `p` with respect
    /// to the latency threshold and the fixed-compression constraint?
    /// (Capacity is a coupling constraint handled by the solvers.)
    pub fn is_feasible(&self, p: &PartitionSpec, tier: TierId, k: usize) -> bool {
        if k >= p.compression_options.len() {
            return false;
        }
        if let Some(fixed) = p.fixed_compression {
            if k != fixed {
                return false;
            }
        }
        self.latency_seconds(p, tier, k) <= p.latency_threshold_seconds
    }

    /// Unweighted cost breakdown of placing partition `p` on `tier` with
    /// option `k` over the horizon.
    ///
    /// The write term carries the full intra-cloud price of the move: the
    /// tier-change read+write plus the early-deletion penalty for the unmet
    /// days of the current tier's minimum residency period (pro-rated by
    /// [`PartitionSpec::residency_days`]), so the objective matches what
    /// the billing engine charges for the move. In a multi-provider problem
    /// a cross-provider move additionally fills the egress term.
    ///
    /// Convenience form that builds a fresh [`CostModel`] (a catalog +
    /// topology clone) per call. Anything evaluating more than a handful of
    /// placements should hoist one model with [`Self::cost_model`] and call
    /// [`Self::cost_breakdown_with`] — or better, build a
    /// [`CostTable`](crate::costtable::CostTable) once per solve, as every
    /// shipped solver does.
    pub fn cost_breakdown(&self, p: &PartitionSpec, tier: TierId, k: usize) -> CostBreakdown {
        self.cost_breakdown_with(&self.cost_model(), p, tier, k)
    }

    /// [`Self::cost_breakdown`] over a caller-hoisted [`CostModel`] — the
    /// per-solve entry point that avoids re-cloning catalog + topology on
    /// every evaluation. The model must come from [`Self::cost_model`] (or
    /// be built over the same catalog/topology); the arithmetic is
    /// identical to the per-call form.
    pub fn cost_breakdown_with(
        &self,
        model: &CostModel,
        p: &PartitionSpec,
        tier: TierId,
        k: usize,
    ) -> CostBreakdown {
        let opt = &p.compression_options[k];
        // Storage and migration are charged on the full stored size; reads
        // only touch `read_fraction` of it.
        let stored_gb = p.stored_gb(k);
        let accesses = self.effective_accesses(p);
        let mut write = model.read_write_cost(p.current_tier, tier, stored_gb);
        // Egress covers the bytes leaving the source tier (the partition's
        // current, uncompressed size), matching the billing engine.
        let egress = model.egress_cost(p.current_tier, tier, p.size_gb);
        if let Some(from) = p.current_tier {
            if from != tier {
                // Same rule the billing engine applies; `validate` checks
                // current tiers against the catalog, so lookup only fails
                // for an unvalidated problem — poison the breakdown with
                // NaN (rejected by every cost comparison) instead of
                // panicking mid-solve.
                write += model
                    .early_deletion_penalty(from, p.size_gb, p.residency_days)
                    .unwrap_or(f64::NAN);
            }
        }
        CostBreakdown {
            storage: model.storage_cost(tier, stored_gb, self.horizon_months),
            read: model.read_cost(tier, stored_gb * p.read_fraction.clamp(0.0, 1.0), accesses),
            write,
            decompression: model.decompression_cost(opt.decompress_seconds, accesses),
            egress,
        }
    }

    /// The weighted objective contribution (Eq. 1) of one placement. Egress
    /// is a transfer cost and is weighted with γ alongside the write term.
    ///
    /// Builds a fresh [`CostModel`] per call — see [`Self::cost_breakdown`]
    /// for when to hoist instead.
    pub fn placement_cost(&self, p: &PartitionSpec, tier: TierId, k: usize) -> f64 {
        self.placement_cost_with(&self.cost_model(), p, tier, k)
    }

    /// [`Self::placement_cost`] over a caller-hoisted [`CostModel`].
    pub fn placement_cost_with(
        &self,
        model: &CostModel,
        p: &PartitionSpec,
        tier: TierId,
        k: usize,
    ) -> f64 {
        self.weighted_objective(&self.cost_breakdown_with(model, p, tier, k))
    }

    /// Apply the problem's α/β/γ weights to an unweighted breakdown — the
    /// single definition of the Eq. 1 weighting, shared by the per-call
    /// pricing methods and the [`CostTable`](crate::costtable::CostTable)
    /// builder so the two can never drift.
    pub fn weighted_objective(&self, b: &CostBreakdown) -> f64 {
        self.weights.alpha * b.storage
            + self.weights.gamma * (b.write + b.egress)
            + self.weights.beta * (b.read + b.decompression)
    }

    /// The cheapest feasible placement cost for a partition ignoring
    /// capacity — used both by the greedy solver and as the branch-and-bound
    /// lower bound.
    ///
    /// This is the historical **model-driven** evaluation: every
    /// [`Self::placement_cost`] call clones the catalog (and topology) into
    /// a fresh model. It is kept as the reference path the cost-table
    /// engine is differential-tested (and benchmarked) against — hot paths
    /// use [`CostTable::min_feasible`](crate::costtable::CostTable) instead.
    pub fn min_feasible_cost(&self, p: &PartitionSpec) -> Option<(f64, TierId, usize)> {
        let mut best: Option<(f64, TierId, usize)> = None;
        for tier in self.catalog.tier_ids() {
            for k in 0..p.compression_options.len() {
                if !self.is_feasible(p, tier, k) {
                    continue;
                }
                let cost = self.placement_cost(p, tier, k);
                if best.map(|(c, _, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, tier, k));
                }
            }
        }
        best
    }
}

/// The result of solving an OPTASSIGN instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Per-partition choice of (tier, compression option index), indexed by
    /// partition id.
    pub choices: Vec<(TierId, usize)>,
    /// Weighted objective value (Eq. 1).
    pub objective: f64,
    /// Unweighted total cost breakdown (cents over the horizon).
    pub breakdown: CostBreakdown,
}

impl Assignment {
    /// Build an assignment from explicit choices, recomputing costs.
    pub fn from_choices(
        problem: &OptAssignProblem,
        choices: Vec<(TierId, usize)>,
    ) -> Result<Self, OptAssignError> {
        if choices.len() != problem.partitions.len() {
            return Err(OptAssignError::InvalidProblem(format!(
                "expected {} choices, got {}",
                problem.partitions.len(),
                choices.len()
            )));
        }
        // One hoisted model for the whole assignment instead of a catalog +
        // topology clone per placement (2 clones per partition before).
        let model = problem.cost_model();
        let mut objective = 0.0;
        let mut breakdown = CostBreakdown::default();
        for (p, &(tier, k)) in problem.partitions.iter().zip(&choices) {
            objective += problem.placement_cost_with(&model, p, tier, k);
            breakdown.accumulate(&problem.cost_breakdown_with(&model, p, tier, k));
        }
        Ok(Assignment {
            choices,
            objective,
            breakdown,
        })
    }

    /// Number of partitions assigned to each tier — the "Tiering Scheme"
    /// column of Tables IX–XI.
    pub fn tier_histogram(&self, n_tiers: usize) -> Vec<usize> {
        let mut hist = vec![0usize; n_tiers];
        for &(tier, _) in &self.choices {
            if tier.index() < n_tiers {
                hist[tier.index()] += 1;
            }
        }
        hist
    }

    /// Maximum access latency (TTFB + decompression) over all partitions.
    pub fn max_latency_seconds(&self, problem: &OptAssignProblem) -> f64 {
        problem
            .partitions
            .iter()
            .zip(&self.choices)
            .map(|(p, &(tier, k))| problem.latency_seconds(p, tier, k))
            .fold(0.0, f64::max)
    }

    /// Expected decompression latency per access, averaged over accesses
    /// (the "Expected Decomp. Latency" column of Tables IX–XI), in seconds.
    pub fn expected_decompression_latency(&self, problem: &OptAssignProblem) -> f64 {
        let mut total_accesses = 0.0;
        let mut weighted = 0.0;
        for (p, &(_, k)) in problem.partitions.iter().zip(&self.choices) {
            weighted += p.predicted_accesses * p.compression_options[k].decompress_seconds;
            total_accesses += p.predicted_accesses;
        }
        if total_accesses > 0.0 {
            weighted / total_accesses
        } else {
            0.0
        }
    }

    /// Expected time-to-first-byte per access, averaged over accesses.
    pub fn expected_ttfb(&self, problem: &OptAssignProblem) -> f64 {
        let mut total_accesses = 0.0;
        let mut weighted = 0.0;
        for (p, &(tier, _)) in problem.partitions.iter().zip(&self.choices) {
            let ttfb = problem
                .catalog
                .tier(tier)
                .map(|t| t.ttfb_seconds)
                .unwrap_or(0.0);
            weighted += p.predicted_accesses * ttfb;
            total_accesses += p.predicted_accesses;
        }
        if total_accesses > 0.0 {
            weighted / total_accesses
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> TierCatalog {
        TierCatalog::azure_adls_gen2()
    }

    fn simple_partition(id: usize, size: f64, accesses: f64) -> PartitionSpec {
        PartitionSpec::new(id, format!("p{id}"), size, accesses)
            .with_compression_option(CompressionOption::new("gzip", 4.0, 10.0))
            .with_compression_option(CompressionOption::new("snappy", 2.0, 1.0))
    }

    #[test]
    fn validation_catches_malformed_problems() {
        let c = catalog();
        assert!(OptAssignProblem::new(c.clone(), vec![], 6.0)
            .validate()
            .is_err());
        let mut p = simple_partition(0, 10.0, 5.0);
        p.compression_options[0].ratio = 2.0; // index 0 must be "none" (ratio 1)
        assert!(OptAssignProblem::new(c.clone(), vec![p], 6.0)
            .validate()
            .is_err());
        let mut p = simple_partition(0, 10.0, 5.0);
        p.id = 5;
        assert!(OptAssignProblem::new(c.clone(), vec![p], 6.0)
            .validate()
            .is_err());
        let p = simple_partition(0, f64::NAN, 5.0);
        assert!(OptAssignProblem::new(c.clone(), vec![p], 6.0)
            .validate()
            .is_err());
        let p = simple_partition(0, 10.0, 5.0);
        assert!(OptAssignProblem::new(c.clone(), vec![p], 0.0)
            .validate()
            .is_err());
        let good = OptAssignProblem::new(c, vec![simple_partition(0, 10.0, 5.0)], 6.0);
        assert!(good.validate().is_ok());
    }

    #[test]
    fn latency_feasibility_excludes_archive_for_tight_thresholds() {
        let c = catalog();
        let archive = c.tier_id("Archive").unwrap();
        let hot = c.tier_id("Hot").unwrap();
        let p = simple_partition(0, 10.0, 5.0).with_latency_threshold(1.0);
        let problem = OptAssignProblem::new(c, vec![p], 6.0);
        let part = &problem.partitions[0];
        assert!(problem.is_feasible(part, hot, 0));
        assert!(!problem.is_feasible(part, archive, 0));
        // gzip adds 10 s of decompression: infeasible even on hot.
        assert!(!problem.is_feasible(part, hot, 1));
        // snappy adds 1 s: also infeasible at a 1 s threshold (0.06 + 1 > 1).
        assert!(!problem.is_feasible(part, hot, 2));
    }

    #[test]
    fn fixed_compression_restricts_choices() {
        let c = catalog();
        let hot = c.tier_id("Hot").unwrap();
        let mut p = simple_partition(0, 10.0, 5.0);
        p.fixed_compression = Some(1);
        let problem = OptAssignProblem::new(c, vec![p], 6.0);
        let part = &problem.partitions[0];
        assert!(!problem.is_feasible(part, hot, 0));
        assert!(problem.is_feasible(part, hot, 1));
        assert!(!problem.is_feasible(part, hot, 2));
    }

    #[test]
    fn compression_shrinks_storage_term_but_adds_compute() {
        let c = catalog();
        let hot = c.tier_id("Hot").unwrap();
        let p = simple_partition(0, 100.0, 20.0);
        let problem = OptAssignProblem::new(c, vec![p], 6.0);
        let part = &problem.partitions[0];
        let none = problem.cost_breakdown(part, hot, 0);
        let gzip = problem.cost_breakdown(part, hot, 1);
        assert!(gzip.storage < none.storage);
        assert!(gzip.read < none.read);
        assert!(gzip.decompression > none.decompression);
        assert_eq!(none.decompression, 0.0);
    }

    #[test]
    fn pushdown_fraction_reduces_read_and_decompression_costs() {
        let c = catalog();
        let hot = c.tier_id("Hot").unwrap();
        let p = simple_partition(0, 100.0, 20.0);
        let base = OptAssignProblem::new(c.clone(), vec![p.clone()], 6.0);
        let pushdown = OptAssignProblem::new(c, vec![p], 6.0).with_pushdown_fraction(0.5);
        let b0 = base.cost_breakdown(&base.partitions[0], hot, 1);
        let b1 = pushdown.cost_breakdown(&pushdown.partitions[0], hot, 1);
        assert!((b1.read - b0.read * 0.5).abs() < 1e-9);
        assert!((b1.decompression - b0.decompression * 0.5).abs() < 1e-9);
        assert_eq!(b1.storage, b0.storage);
    }

    #[test]
    fn placement_cost_respects_weights() {
        let c = catalog();
        let hot = c.tier_id("Hot").unwrap();
        let p = simple_partition(0, 100.0, 20.0);
        let storage_only = OptAssignProblem::new(c.clone(), vec![p.clone()], 6.0)
            .with_weights(CostWeights::new(1.0, 0.0, 0.0));
        let read_only =
            OptAssignProblem::new(c, vec![p], 6.0).with_weights(CostWeights::new(0.0, 1.0, 0.0));
        let part = &storage_only.partitions[0];
        let b = storage_only.cost_breakdown(part, hot, 0);
        assert!((storage_only.placement_cost(part, hot, 0) - b.storage).abs() < 1e-9);
        assert!(
            (read_only.placement_cost(&read_only.partitions[0], hot, 0)
                - (b.read + b.decompression))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn residency_penalty_prices_the_unmet_days_into_the_write_term() {
        let c = catalog();
        let cool = c.tier_id("Cool").unwrap();
        let hot = c.tier_id("Hot").unwrap();
        let fresh = PartitionSpec::new(0, "fresh", 100.0, 0.0).with_current_tier(cool);
        let served = PartitionSpec::new(0, "served", 100.0, 0.0)
            .with_current_tier(cool)
            .with_residency_days(20);
        let met = PartitionSpec::new(0, "met", 100.0, 0.0)
            .with_current_tier(cool)
            .with_residency_days(30);
        let problem = OptAssignProblem::new(c, vec![fresh.clone()], 6.0);
        let move_cost = |p: &PartitionSpec| problem.cost_breakdown(p, hot, 0).write;
        // Fresh data owes the full 30-day window, 20-day residency owes 10
        // days, a met window owes nothing beyond the change itself.
        let change = move_cost(&met);
        assert!((move_cost(&fresh) - (change + 1.52 * 100.0)).abs() < 1e-9);
        assert!((move_cost(&served) - (change + 1.52 * 100.0 * (10.0 / 30.0))).abs() < 1e-9);
        // Staying on the tier owes nothing at all.
        assert_eq!(problem.cost_breakdown(&fresh, cool, 0).write, 0.0);
    }

    #[test]
    fn multi_provider_problem_prices_egress_into_cross_provider_moves() {
        let providers = ProviderCatalog::azure_s3_gcs();
        let merged = providers.merged_catalog();
        let azure_hot = merged.tier_id("azure:Hot").unwrap();
        let azure_cool = merged.tier_id("azure:Cool").unwrap();
        let gcs_coldline = merged.tier_id("gcs:Coldline").unwrap();
        let p = PartitionSpec::new(0, "d", 100.0, 0.0).with_current_tier(azure_hot);
        let problem = OptAssignProblem::multi_provider(&providers, vec![p], 6.0);
        assert!(problem.validate().is_ok());
        // A topology that does not cover the catalog is rejected up front
        // (it would otherwise silently price uncovered tiers' egress as 0).
        let mismatched = OptAssignProblem::new(
            TierCatalog::azure_adls_gen2(),
            vec![PartitionSpec::new(0, "d", 1.0, 0.0)],
            6.0,
        )
        .with_topology(providers.topology());
        assert!(mismatched.validate().is_err());
        let part = &problem.partitions[0];
        // Intra-provider move: no egress.
        let intra = problem.cost_breakdown(part, azure_cool, 0);
        assert_eq!(intra.egress, 0.0);
        // Cross-provider move: azure→gcs at 2.0 c/GB.
        let cross = problem.cost_breakdown(part, gcs_coldline, 0);
        assert!((cross.egress - 200.0).abs() < 1e-9);
        // placement_cost charges egress under gamma: zeroing gamma removes
        // both the write and the egress terms.
        let gamma_free = OptAssignProblem::multi_provider(
            &providers,
            vec![PartitionSpec::new(0, "d", 100.0, 0.0).with_current_tier(azure_hot)],
            6.0,
        )
        .with_weights(CostWeights::new(0.0, 0.0, 1.0));
        let move_only = gamma_free.placement_cost(&gamma_free.partitions[0], gcs_coldline, 0);
        assert!((move_only - (cross.write + cross.egress)).abs() < 1e-9);
    }

    #[test]
    fn min_feasible_cost_finds_the_archive_for_cold_data() {
        let c = catalog();
        let archive = c.tier_id("Archive").unwrap();
        let p = PartitionSpec::new(0, "cold", 1000.0, 0.0);
        let problem = OptAssignProblem::new(c, vec![p], 6.0);
        let (cost, tier, k) = problem.min_feasible_cost(&problem.partitions[0]).unwrap();
        assert_eq!(tier, archive);
        assert_eq!(k, NO_COMPRESSION);
        assert!(cost > 0.0);
    }

    #[test]
    fn assignment_statistics() {
        let c = catalog();
        let hot = c.tier_id("Hot").unwrap();
        let cool = c.tier_id("Cool").unwrap();
        let parts = vec![
            simple_partition(0, 10.0, 5.0),
            simple_partition(1, 20.0, 1.0),
        ];
        let problem = OptAssignProblem::new(c, parts, 6.0);
        let a = Assignment::from_choices(&problem, vec![(hot, 1), (cool, 0)]).unwrap();
        assert_eq!(a.tier_histogram(4), vec![0, 1, 1, 0]);
        assert!(a.objective > 0.0);
        assert!(a.breakdown.total() > 0.0);
        assert!(a.max_latency_seconds(&problem) >= 10.0); // gzip on p0
        assert!(a.expected_decompression_latency(&problem) > 0.0);
        assert!(a.expected_ttfb(&problem) > 0.0);
        // Wrong number of choices is rejected.
        assert!(Assignment::from_choices(&problem, vec![(hot, 0)]).is_err());
    }
}
