//! The historical **model-driven** solver paths, preserved verbatim in
//! behaviour: every cost is evaluated through
//! [`OptAssignProblem::placement_cost`], which builds (clones) a fresh
//! [`CostModel`](scope_cloudsim::CostModel) per call.
//!
//! These are *not* the production entry points — [`crate::solve_greedy`],
//! [`crate::solve_branch_and_bound`] and
//! [`crate::solve_equal_size_matching`] search a precomputed
//! [`CostTable`](crate::costtable::CostTable) instead. The reference paths
//! exist for two reasons:
//!
//! 1. **Differential oracles** — `tests/differential_costtable.rs` pins the
//!    table-driven solvers bit-for-bit equal to these on random single- and
//!    multi-provider instances, so the table engine can never silently
//!    drift from the objective definition.
//! 2. **Benchmark baselines** — the `solver_bench` bin and the Criterion
//!    benches measure the table engine's speedup against exactly the
//!    pre-table evaluation cost, not a strawman.
//!
//! Both solver families share their search cores (the branch-and-bound
//! tree walk, the tier-copy construction + Hungarian matching); the only
//! difference is whether a placement price is a table lookup or a fresh
//! model evaluation.

use crate::error::OptAssignError;
use crate::ilp::{branch_and_bound_search, BranchAndBoundStats};
use crate::matching::equal_size_matching_core;
use crate::problem::{Assignment, OptAssignProblem, NO_COMPRESSION};
use scope_cloudsim::TierId;

/// [`crate::solve_greedy`] evaluated through the model instead of a
/// [`CostTable`]: per partition, scan every `(tier, scheme)` pair with
/// [`OptAssignProblem::min_feasible_cost`] (a catalog clone per price).
pub fn solve_greedy_reference(problem: &OptAssignProblem) -> Result<Assignment, OptAssignError> {
    problem.validate()?;
    let mut choices = Vec::with_capacity(problem.partitions.len());
    for p in &problem.partitions {
        match problem.min_feasible_cost(p) {
            Some((_, tier, k)) => choices.push((tier, k)),
            None => {
                return Err(OptAssignError::InfeasiblePartition {
                    partition: p.id,
                    name: p.name.clone(),
                })
            }
        }
    }
    Assignment::from_choices(problem, choices)
}

/// [`crate::solve_branch_and_bound`] with candidate lists evaluated through
/// the model: same search core, same visit order, same bound — only the
/// prices are recomputed per `(partition, tier, scheme)` instead of read
/// from the table.
pub fn solve_branch_and_bound_reference(
    problem: &OptAssignProblem,
    node_budget: u64,
) -> Result<(Assignment, BranchAndBoundStats), OptAssignError> {
    problem.validate()?;
    let mut candidates: Vec<Vec<(f64, TierId, usize)>> =
        Vec::with_capacity(problem.partitions.len());
    for p in &problem.partitions {
        let mut cands = Vec::new();
        for tier in problem.catalog.tier_ids() {
            for k in 0..p.compression_options.len() {
                if problem.is_feasible(p, tier, k) {
                    cands.push((problem.placement_cost(p, tier, k), tier, k));
                }
            }
        }
        if cands.is_empty() {
            return Err(OptAssignError::InfeasiblePartition {
                partition: p.id,
                name: p.name.clone(),
            });
        }
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        candidates.push(cands);
    }
    let (choices, stats) = branch_and_bound_search(problem, candidates, node_budget)?;
    let assignment = Assignment::from_choices(problem, choices)?;
    Ok((assignment, stats))
}

/// [`crate::solve_equal_size_matching`] with the `n × m` edge-weight matrix
/// evaluated through the model (one [`OptAssignProblem::placement_cost`] —
/// and therefore one catalog clone — per cell, duplicate tier copies
/// included), exactly as the pre-table solver priced it.
pub fn solve_equal_size_matching_reference(
    problem: &OptAssignProblem,
) -> Result<Assignment, OptAssignError> {
    let choices = equal_size_matching_core(problem, |i, tier| {
        let p = &problem.partitions[i];
        problem
            .is_feasible(p, tier, NO_COMPRESSION)
            .then(|| problem.placement_cost(p, tier, NO_COMPRESSION))
    })?;
    Assignment::from_choices(problem, choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{CompressionOption, PartitionSpec};
    use crate::{solve_branch_and_bound, solve_equal_size_matching, solve_greedy};
    use scope_cloudsim::TierCatalog;

    fn partition(id: usize, size: f64, accesses: f64) -> PartitionSpec {
        PartitionSpec::new(id, format!("p{id}"), size, accesses)
            .with_compression_option(CompressionOption::new("gzip", 4.0, 5.0))
            .with_compression_option(CompressionOption::new("snappy", 2.0, 0.5))
    }

    #[test]
    fn reference_solvers_agree_with_table_solvers_on_a_fixed_instance() {
        // The broad random coverage lives in the differential proptests;
        // this is the smoke check that the two families share semantics.
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 25.0).unwrap();
        let parts: Vec<_> = (0..6)
            .map(|i| partition(i, 20.0, (i * 100) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert_eq!(
            solve_greedy(&problem).unwrap(),
            solve_greedy_reference(&problem).unwrap()
        );
        let (table_bnb, table_stats) = solve_branch_and_bound(&problem, 1_000_000).unwrap();
        let (ref_bnb, ref_stats) = solve_branch_and_bound_reference(&problem, 1_000_000).unwrap();
        assert_eq!(table_bnb, ref_bnb);
        assert_eq!(table_stats, ref_stats);

        // Equal-size / no-compression instance for the matching.
        let parts: Vec<_> = (0..5)
            .map(|i| PartitionSpec::new(i, format!("q{i}"), 20.0, (i * 50) as f64))
            .collect();
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 45.0).unwrap();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert_eq!(
            solve_equal_size_matching(&problem).unwrap(),
            solve_equal_size_matching_reference(&problem).unwrap()
        );
    }

    #[test]
    fn reference_errors_match_table_errors() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![PartitionSpec::new(0, "p0", 10.0, 1.0).with_latency_threshold(1e-9)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_greedy_reference(&problem),
            Err(OptAssignError::InfeasiblePartition { partition: 0, .. })
        ));
        assert!(matches!(
            solve_branch_and_bound_reference(&problem, 1000),
            Err(OptAssignError::InfeasiblePartition { partition: 0, .. })
        ));
        assert!(matches!(
            solve_equal_size_matching_reference(&problem),
            Err(OptAssignError::InfeasiblePartition { partition: 0, .. })
        ));
    }
}
