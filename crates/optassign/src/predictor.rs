//! The tier predictor of §IV-C and the caching/recency baselines of
//! Table IV.
//!
//! "Predicting access patterns is a non-trivial problem. We have proposed a
//! Random Forest model that is near optimal, with high precision and recall
//! (F-1 score > 0.96)." The model's features are (i) dataset size,
//! (ii) months since dataset creation, and the aggregated monthly
//! (iii) read and (iv) write accesses for the last few months; the training
//! labels are the *ideal* tiers — the ones OPTASSIGN would pick if the
//! future accesses were known — and validation is out-of-time.

use crate::greedy::solve_greedy;
use crate::problem::{OptAssignProblem, PartitionSpec};
use crate::OptAssignError;
use scope_cloudsim::{ProviderCatalog, ProviderTopology, TierCatalog, TierId};
use scope_learn::forest::ForestParams;
use scope_learn::{
    confusion_matrix, Classifier, ColumnMatrix, ConfusionMatrix, RandomForestClassifier,
};
use scope_workload::{AccessSeries, DatasetCatalog, DatasetMeta};

/// Feature-extraction configuration for the tier predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorFeatures {
    /// Number of trailing months of read/write history fed to the model.
    pub lookback_months: u32,
}

impl Default for PredictorFeatures {
    fn default() -> Self {
        PredictorFeatures { lookback_months: 3 }
    }
}

impl PredictorFeatures {
    /// Extract the feature vector for `dataset` as seen at the beginning of
    /// `at_month` (only months strictly before `at_month` are visible).
    pub fn extract(&self, dataset: &DatasetMeta, series: &AccessSeries, at_month: u32) -> Vec<f64> {
        let age = dataset.age_at(at_month).unwrap_or(0) as f64;
        let mut features = vec![dataset.size_gb, age];
        for back in 1..=self.lookback_months {
            let month = at_month.checked_sub(back);
            let access = month.map(|m| series.get(dataset.id, m)).unwrap_or_default();
            features.push(access.reads);
            features.push(access.writes);
        }
        features
    }

    /// Names of the features, for reports.
    pub fn names(&self) -> Vec<String> {
        let mut names = vec!["size_gb".to_string(), "months_since_creation".to_string()];
        for back in 1..=self.lookback_months {
            names.push(format!("reads_m-{back}"));
            names.push(format!("writes_m-{back}"));
        }
        names
    }
}

/// Compute, for every dataset, the *ideal* tier for the projection window
/// `[from_month, from_month + horizon_months)` assuming the future accesses
/// in `series` are known exactly. This is the label-encoding step the paper
/// uses ("We used OPTASSIGN to assign the ground truth label encoding (i.e.
/// the optimal tier) for each dataset while training the model").
///
/// `current_tier` is the tier all datasets currently occupy (the platform
/// default, Hot, in the paper's storage accounts).
pub fn ideal_tier_labels(
    catalog: &TierCatalog,
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    from_month: u32,
    horizon_months: u32,
    current_tier: TierId,
) -> Result<Vec<TierId>, OptAssignError> {
    ideal_tier_labels_with(
        catalog,
        None,
        datasets,
        series,
        from_month,
        horizon_months,
        current_tier,
    )
}

/// [`ideal_tier_labels`] over the merged tier space of a multi-provider
/// catalog: labels are merged [`TierId`]s, `current_tier` is a merged id
/// (e.g. from [`ProviderCatalog::merged_tier_id`]), and the objective the
/// labels minimize charges the egress matrix for cross-provider moves.
pub fn ideal_tier_labels_multi(
    providers: &ProviderCatalog,
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    from_month: u32,
    horizon_months: u32,
    current_tier: TierId,
) -> Result<Vec<TierId>, OptAssignError> {
    ideal_tier_labels_with(
        &providers.merged_catalog(),
        Some(providers.topology()),
        datasets,
        series,
        from_month,
        horizon_months,
        current_tier,
    )
}

/// Shared implementation of the label computation, optionally egress-aware.
fn ideal_tier_labels_with(
    catalog: &TierCatalog,
    topology: Option<ProviderTopology>,
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    from_month: u32,
    horizon_months: u32,
    current_tier: TierId,
) -> Result<Vec<TierId>, OptAssignError> {
    let partitions: Vec<PartitionSpec> = datasets
        .iter()
        .map(|d| {
            let mut reads = 0.0;
            let mut volume_weighted_fraction = 0.0;
            for m in from_month..from_month + horizon_months {
                let acc = series.get(d.id, m);
                reads += acc.reads;
                volume_weighted_fraction += acc.reads * acc.read_fraction;
            }
            let read_fraction = if reads > 0.0 {
                (volume_weighted_fraction / reads).clamp(0.0, 1.0)
            } else {
                1.0
            };
            PartitionSpec::new(d.id, d.name.clone(), d.size_gb, reads)
                .with_latency_threshold(d.latency_threshold_seconds)
                .with_current_tier(current_tier)
                .with_read_fraction(read_fraction)
        })
        .collect();
    let mut problem = OptAssignProblem::new(catalog.clone(), partitions, horizon_months as f64);
    if let Some(t) = topology {
        problem = problem.with_topology(t);
    }
    let assignment = solve_greedy(&problem)?;
    Ok(assignment.choices.iter().map(|&(tier, _)| tier).collect())
}

/// The trained Random-Forest tier predictor.
#[derive(Debug)]
pub struct TierPredictor {
    model: RandomForestClassifier,
    features: PredictorFeatures,
    n_tiers: usize,
    topology: Option<ProviderTopology>,
}

impl TierPredictor {
    /// Train the predictor.
    ///
    /// Training examples are generated for every decision month `m` in
    /// `[features.lookback_months, train_until_month]`: the features are
    /// what was observable before `m`, the label is the ideal tier for the
    /// window `[m, m + horizon_months)`. Months after `train_until_month`
    /// are never seen during training, so evaluating at a later month is
    /// out-of-time validation.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        catalog: &TierCatalog,
        datasets: &DatasetCatalog,
        series: &AccessSeries,
        train_until_month: u32,
        horizon_months: u32,
        current_tier: TierId,
        features: PredictorFeatures,
        seed: u64,
    ) -> Result<Self, OptAssignError> {
        Self::train_with(
            catalog,
            None,
            datasets,
            series,
            train_until_month,
            horizon_months,
            current_tier,
            features,
            seed,
        )
    }

    /// Train over the merged tier space of a multi-provider catalog: the
    /// label classes are merged [`TierId`]s across every provider's ladder
    /// and the label-encoding objective is egress-aware, so the model
    /// learns *which cloud and tier* each dataset should live on.
    #[allow(clippy::too_many_arguments)]
    pub fn train_multi(
        providers: &ProviderCatalog,
        datasets: &DatasetCatalog,
        series: &AccessSeries,
        train_until_month: u32,
        horizon_months: u32,
        current_tier: TierId,
        features: PredictorFeatures,
        seed: u64,
    ) -> Result<Self, OptAssignError> {
        Self::train_with(
            &providers.merged_catalog(),
            Some(providers.topology()),
            datasets,
            series,
            train_until_month,
            horizon_months,
            current_tier,
            features,
            seed,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn train_with(
        catalog: &TierCatalog,
        topology: Option<ProviderTopology>,
        datasets: &DatasetCatalog,
        series: &AccessSeries,
        train_until_month: u32,
        horizon_months: u32,
        current_tier: TierId,
        features: PredictorFeatures,
        seed: u64,
    ) -> Result<Self, OptAssignError> {
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<usize> = Vec::new();
        let first_month = features.lookback_months;
        if train_until_month < first_month {
            return Err(OptAssignError::InvalidProblem(format!(
                "train_until_month {train_until_month} is before the lookback window {first_month}"
            )));
        }
        for month in first_month..=train_until_month {
            if month + horizon_months > series.months() {
                break;
            }
            let labels = ideal_tier_labels_with(
                catalog,
                topology.clone(),
                datasets,
                series,
                month,
                horizon_months,
                current_tier,
            )?;
            for d in datasets.iter() {
                if d.created_month > month {
                    continue; // dataset does not exist yet
                }
                xs.push(features.extract(d, series, month));
                ys.push(labels[d.id].index());
            }
        }
        if xs.is_empty() {
            return Err(OptAssignError::InvalidProblem(
                "no training examples could be generated".to_string(),
            ));
        }
        // Train on the shared column-major view: one build of the feature
        // matrix, index-based bagging and the deterministic parallel tree
        // fan-out underneath (bit-identical to the sequential path).
        let cols = ColumnMatrix::from_rows(&xs)
            .map_err(|e| OptAssignError::InvalidProblem(format!("training failed: {e}")))?;
        let model = RandomForestClassifier::fit_columns(
            &cols,
            &ys,
            ForestParams {
                n_trees: 60,
                seed,
                ..Default::default()
            },
        )
        .map_err(|e| OptAssignError::InvalidProblem(format!("training failed: {e}")))?;
        Ok(TierPredictor {
            model,
            features,
            n_tiers: catalog.len(),
            topology,
        })
    }

    /// Predict the tier for one dataset at the start of `at_month`.
    pub fn predict(&self, dataset: &DatasetMeta, series: &AccessSeries, at_month: u32) -> TierId {
        let x = self.features.extract(dataset, series, at_month);
        TierId(Classifier::predict_one(&self.model, &x).min(self.n_tiers - 1))
    }

    /// Predict tiers for every dataset in a catalog.
    ///
    /// Batched: extracts one column-major feature matrix and walks the
    /// forest through [`Classifier::predict_columns`] (parallel over rows,
    /// merged in order) — identical labels to calling
    /// [`TierPredictor::predict`] per dataset.
    pub fn predict_all(
        &self,
        datasets: &DatasetCatalog,
        series: &AccessSeries,
        at_month: u32,
    ) -> Vec<TierId> {
        let xs: Vec<Vec<f64>> = datasets
            .iter()
            .map(|d| self.features.extract(d, series, at_month))
            .collect();
        let Ok(cols) = ColumnMatrix::from_rows(&xs) else {
            return Vec::new(); // no datasets
        };
        self.model
            .predict_columns(&cols)
            .into_iter()
            .map(|c| TierId(c.min(self.n_tiers - 1)))
            .collect()
    }

    /// Evaluate predicted vs ideal tiers at `at_month` over the following
    /// `horizon_months`, producing the confusion matrix of Table III. For a
    /// predictor trained with [`TierPredictor::train_multi`], pass the
    /// merged catalog — the ideal labels are computed with the same egress
    /// awareness the training labels had.
    pub fn evaluate(
        &self,
        catalog: &TierCatalog,
        datasets: &DatasetCatalog,
        series: &AccessSeries,
        at_month: u32,
        horizon_months: u32,
        current_tier: TierId,
    ) -> Result<ConfusionMatrix, OptAssignError> {
        let ideal = ideal_tier_labels_with(
            catalog,
            self.topology.clone(),
            datasets,
            series,
            at_month,
            horizon_months,
            current_tier,
        )?;
        let predicted = self.predict_all(datasets, series, at_month);
        let truth: Vec<usize> = ideal.iter().map(|t| t.index()).collect();
        let preds: Vec<usize> = predicted.iter().map(|t| t.index()).collect();
        Ok(confusion_matrix(&truth, &preds, self.n_tiers))
    }
}

/// The intuitive tiering baselines of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieringBaseline {
    /// Keep everything on the hot (first) tier — the platform default.
    AllHot,
    /// "Hot if the data was accessed in the last `months` months, else
    /// cool" — the caching-inspired rules.
    HotIfAccessedWithin(u32),
    /// Use the tier that would have been optimal in the previous month.
    PreviousOptimal,
}

impl TieringBaseline {
    /// Produce a tier choice per dataset at the start of `at_month`.
    ///
    /// `hot` and `cool` are the tier ids the rule switches between;
    /// `horizon_months` is only used by [`TieringBaseline::PreviousOptimal`].
    #[allow(clippy::too_many_arguments)]
    pub fn assign(
        &self,
        catalog: &TierCatalog,
        datasets: &DatasetCatalog,
        series: &AccessSeries,
        at_month: u32,
        hot: TierId,
        cool: TierId,
        current_tier: TierId,
    ) -> Result<Vec<TierId>, OptAssignError> {
        match *self {
            TieringBaseline::AllHot => Ok(vec![hot; datasets.len()]),
            TieringBaseline::HotIfAccessedWithin(months) => Ok(datasets
                .iter()
                .map(|d| {
                    let from = at_month.saturating_sub(months);
                    let recent_reads = series.total_reads(d.id, from, at_month);
                    if recent_reads > 0.0 {
                        hot
                    } else {
                        cool
                    }
                })
                .collect()),
            TieringBaseline::PreviousOptimal => {
                let prev_month = at_month.saturating_sub(1);
                ideal_tier_labels(catalog, datasets, series, prev_month, 1, current_tier)
            }
        }
    }

    /// Name used in reports (matches the Table IV row labels).
    pub fn name(&self) -> String {
        match self {
            TieringBaseline::AllHot => "All hot".to_string(),
            TieringBaseline::HotIfAccessedWithin(m) => {
                format!("\"Hot\" if data accessed in last {m} mos")
            }
            TieringBaseline::PreviousOptimal => "Use optimal tier of prev. month".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_learn::f1_score;
    use scope_workload::{EnterpriseOptions, EnterpriseWorkload};

    fn workload() -> EnterpriseWorkload {
        EnterpriseWorkload::generate(EnterpriseOptions {
            n_datasets: 150,
            history_months: 10,
            future_months: 4,
            seed: 5,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn feature_extraction_shape_and_visibility() {
        let w = workload();
        let f = PredictorFeatures::default();
        let d = w.catalog.get(0).unwrap();
        let x = f.extract(d, &w.series, 6);
        assert_eq!(x.len(), 2 + 2 * 3);
        assert_eq!(x.len(), f.names().len());
        assert_eq!(x[0], d.size_gb);
        // Features at month 0 see no history (all zeros in the lookback).
        let x0 = f.extract(d, &w.series, 0);
        assert!(x0[2..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ideal_labels_put_unread_data_on_the_cool_tier() {
        let w = workload();
        let catalog = TierCatalog::azure_hot_cool();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let labels = ideal_tier_labels(&catalog, &w.catalog, &w.series, 10, 4, hot).unwrap();
        assert_eq!(labels.len(), w.catalog.len());
        // Every dataset with zero future reads must be labelled Cool (its
        // storage is cheaper and there is no read penalty).
        for d in w.catalog.iter() {
            let future_reads = w.series.total_reads(d.id, 10, 14);
            if future_reads == 0.0 {
                assert_eq!(labels[d.id], cool, "dataset {} should be cool", d.id);
            }
        }
        assert!(labels.contains(&cool));
    }

    #[test]
    fn ideal_labels_keep_heavily_read_data_hot() {
        // A hand-built two-dataset catalog: one dataset is scanned in full
        // thousands of times over the horizon (Hot is cheaper once read
        // costs dominate), the other is never read (Cool wins on storage).
        use scope_workload::{AccessPattern, DatasetMeta, MonthlyAccess};
        let catalog = TierCatalog::azure_hot_cool();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let datasets = scope_workload::DatasetCatalog::new(vec![
            DatasetMeta {
                id: 0,
                name: "busy".into(),
                size_gb: 100.0,
                created_month: 0,
                latency_threshold_seconds: f64::INFINITY,
                pattern: AccessPattern::Constant { rate: 500.0 },
            },
            DatasetMeta {
                id: 1,
                name: "cold".into(),
                size_gb: 100.0,
                created_month: 0,
                latency_threshold_seconds: f64::INFINITY,
                pattern: AccessPattern::Dormant,
            },
        ]);
        let mut series = AccessSeries::new(4);
        for m in 0..4 {
            series.set(
                0,
                m,
                MonthlyAccess {
                    reads: 500.0,
                    writes: 0.0,
                    read_fraction: 1.0,
                },
            );
        }
        let labels = ideal_tier_labels(&catalog, &datasets, &series, 0, 4, hot).unwrap();
        assert_eq!(labels[0], hot);
        assert_eq!(labels[1], cool);
    }

    #[test]
    fn predictor_learns_tiering_with_high_f1() {
        let w = workload();
        let catalog = TierCatalog::azure_hot_cool();
        let hot = catalog.tier_id("Hot").unwrap();
        let features = PredictorFeatures::default();
        // Train on months 3..=7, evaluate out-of-time at month 10.
        let predictor =
            TierPredictor::train(&catalog, &w.catalog, &w.series, 7, 2, hot, features, 42).unwrap();
        let cm = predictor
            .evaluate(&catalog, &w.catalog, &w.series, 10, 2, hot)
            .unwrap();
        assert_eq!(cm.total(), w.catalog.len());
        assert!(
            cm.accuracy() > 0.8,
            "accuracy = {} (confusion: {:?})",
            cm.accuracy(),
            cm.counts
        );
        assert!(f1_score(&cm, 1) > 0.8, "cool F1 = {}", f1_score(&cm, 1));
    }

    #[test]
    fn multi_provider_labels_cross_clouds_for_latency_bounded_cold_data() {
        use scope_workload::{AccessPattern, DatasetMeta, MonthlyAccess};
        let providers = ProviderCatalog::azure_s3_gcs();
        let azure_hot = providers.merged_tier_id("azure", "Hot").unwrap();
        let azure = providers.provider_id("azure").unwrap();
        let topo = providers.topology();
        // A cold dataset that must stay sub-second: azure's only compliant
        // cold tier is Cool (1.52), while gcs Coldline (0.4, ms-latency)
        // repays the 2 c/GB egress over 6 months.
        let datasets = scope_workload::DatasetCatalog::new(vec![DatasetMeta {
            id: 0,
            name: "cold-sla".into(),
            size_gb: 100.0,
            created_month: 0,
            latency_threshold_seconds: 1.0,
            pattern: AccessPattern::Dormant,
        }]);
        let mut series = AccessSeries::new(6);
        series.set(
            0,
            0,
            MonthlyAccess {
                reads: 0.0,
                writes: 0.0,
                read_fraction: 1.0,
            },
        );
        let labels =
            ideal_tier_labels_multi(&providers, &datasets, &series, 0, 6, azure_hot).unwrap();
        assert_ne!(topo.provider_of(labels[0]), Some(azure), "{:?}", labels);
        // With internet-priced egress the same dataset stays home.
        let expensive = providers.clone().with_egress_scale(10.0).unwrap();
        let labels =
            ideal_tier_labels_multi(&expensive, &datasets, &series, 0, 6, azure_hot).unwrap();
        assert_eq!(topo.provider_of(labels[0]), Some(azure), "{:?}", labels);
    }

    #[test]
    fn multi_provider_predictor_learns_merged_tier_labels() {
        let w = workload();
        let providers = ProviderCatalog::azure_s3_gcs();
        let azure_hot = providers.merged_tier_id("azure", "Hot").unwrap();
        let features = PredictorFeatures::default();
        let predictor = TierPredictor::train_multi(
            &providers, &w.catalog, &w.series, 7, 2, azure_hot, features, 42,
        )
        .unwrap();
        let merged = providers.merged_catalog();
        let cm = predictor
            .evaluate(&merged, &w.catalog, &w.series, 10, 2, azure_hot)
            .unwrap();
        assert_eq!(cm.total(), w.catalog.len());
        assert_eq!(cm.counts.len(), merged.len());
        assert!(
            cm.accuracy() > 0.6,
            "merged-space accuracy = {} (confusion: {:?})",
            cm.accuracy(),
            cm.counts
        );
        // Predictions live in the merged id space.
        let preds = predictor.predict_all(&w.catalog, &w.series, 10);
        assert!(preds.iter().all(|t| t.index() < merged.len()));
    }

    #[test]
    fn batched_predict_all_equals_per_dataset_predict() {
        let w = workload();
        let catalog = TierCatalog::azure_hot_cool();
        let hot = catalog.tier_id("Hot").unwrap();
        let predictor = TierPredictor::train(
            &catalog,
            &w.catalog,
            &w.series,
            7,
            2,
            hot,
            PredictorFeatures::default(),
            42,
        )
        .unwrap();
        let batched = predictor.predict_all(&w.catalog, &w.series, 10);
        let scalar: Vec<TierId> = w
            .catalog
            .iter()
            .map(|d| predictor.predict(d, &w.series, 10))
            .collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn baselines_produce_full_assignments() {
        let w = workload();
        let catalog = TierCatalog::azure_hot_cool();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        for baseline in [
            TieringBaseline::AllHot,
            TieringBaseline::HotIfAccessedWithin(1),
            TieringBaseline::HotIfAccessedWithin(2),
            TieringBaseline::PreviousOptimal,
        ] {
            let tiers = baseline
                .assign(&catalog, &w.catalog, &w.series, 10, hot, cool, hot)
                .unwrap();
            assert_eq!(tiers.len(), w.catalog.len(), "{}", baseline.name());
        }
        // AllHot really is all hot.
        let all_hot = TieringBaseline::AllHot
            .assign(&catalog, &w.catalog, &w.series, 10, hot, cool, hot)
            .unwrap();
        assert!(all_hot.iter().all(|&t| t == hot));
        // The recency rule sends never-accessed data to cool.
        let recency = TieringBaseline::HotIfAccessedWithin(2)
            .assign(&catalog, &w.catalog, &w.series, 10, hot, cool, hot)
            .unwrap();
        assert!(recency.contains(&cool));
        assert!(recency.contains(&hot));
    }

    #[test]
    fn training_validates_inputs() {
        let w = workload();
        let catalog = TierCatalog::azure_hot_cool();
        let hot = catalog.tier_id("Hot").unwrap();
        // train_until before the lookback window.
        assert!(TierPredictor::train(
            &catalog,
            &w.catalog,
            &w.series,
            1,
            2,
            hot,
            PredictorFeatures { lookback_months: 3 },
            1,
        )
        .is_err());
    }

    #[test]
    fn baseline_names_match_table_iv_style() {
        assert_eq!(TieringBaseline::AllHot.name(), "All hot");
        assert!(TieringBaseline::HotIfAccessedWithin(2)
            .name()
            .contains("2 mos"));
        assert!(TieringBaseline::PreviousOptimal.name().contains("prev"));
    }
}
