//! # scope-optassign
//!
//! OPTASSIGN (§IV of the paper): optimal assignment of storage tier and
//! compression scheme to data partitions with predicted access volumes,
//! subject to per-tier capacity reservations and per-partition latency
//! thresholds.
//!
//! The crate implements the full algorithm portfolio of the paper:
//!
//! * [`problem`] — the cost model of the ILP objective (Eq. 1) and the
//!   feasibility predicates (latency, fixed-compression and capacity
//!   constraints),
//! * [`greedy`] — the optimal polynomial algorithm for the *unbounded
//!   capacity* case (Theorem 3): per partition, pick the cheapest feasible
//!   (tier, scheme) pair,
//! * [`ilp`] — an exact branch-and-bound 0/1 solver for the general,
//!   capacity-constrained case (the problem is strongly NP-hard, Theorem 1,
//!   so exponential worst-case time is expected; the bound makes realistic
//!   instances fast),
//! * [`matching`] — the minimum-weight bipartite matching (Hungarian
//!   algorithm) specialisation for equal-sized partitions with no
//!   compression (Theorem 2),
//! * [`predictor`] — the Random-Forest tier predictor of §IV-C (features:
//!   dataset size, age, recent monthly reads/writes; labels: the
//!   cost-optimal tier) together with the caching/recency baselines of
//!   Table IV,
//! * [`schedule`] — per-billing-period tier schedules: a dynamic program
//!   that prices storage, accesses, transition costs and day-exact
//!   early-deletion (residency) penalties per period and finds the
//!   cost-optimal mid-horizon re-tiering plan, the objective the paper's
//!   per-billing-period tier changes call for.
//!
//! Every solver also searches **merged multi-provider tier spaces**: build
//! the problem with [`OptAssignProblem::multi_provider`] (or pass a
//! provider-aware `CostModel` to the schedule DP) and tier ids range over
//! every provider's ladder while cross-provider moves are priced with the
//! catalog's egress matrix — the SkyStore-style generalisation of the
//! paper's single-cloud OPTASSIGN.
//!
//! ## The cost-table engine ([`costtable`])
//!
//! Every solver's inner loop is pure cost evaluation, so each solve first
//! materialises a [`CostTable`]: the dense `[partition × tier ×
//! compression]` matrix of weighted objective values, unweighted
//! breakdowns and SLA-feasibility flags, evaluated **exactly once** with a
//! single hoisted cost model (egress-aware on merged catalogs) and — on
//! large instances — built in parallel with the deterministic fan-out of
//! [`scope_cloudsim::parallel`]. Layout: per-partition tier-major blocks
//! (`offset[n] + tier · K_n + k`), with per-partition column minima
//! precomputed for the greedy choice and the branch-and-bound lower bound.
//!
//! **When to use which path:** the solvers and `ideal_tier_labels` are
//! already table-driven — just call them. Use
//! [`plan_tier_schedule_with_model`] / `*_with`-suffixed problem methods
//! with a hoisted model when you price many placements yourself; the
//! per-call convenience methods ([`OptAssignProblem::placement_cost`] et
//! al.) clone the catalog per evaluation and are for one-off pricing. The
//! pre-table model-driven solvers survive in [`reference`] as differential
//! oracles and benchmark baselines — never as production paths.

#![warn(missing_docs)]

pub mod costtable;
pub mod error;
pub mod greedy;
pub mod ilp;
pub mod matching;
pub mod predictor;
pub mod problem;
pub mod reference;
pub mod schedule;

pub use costtable::CostTable;
pub use error::OptAssignError;
pub use greedy::solve_greedy;
pub use ilp::{solve_branch_and_bound, solve_branch_and_bound_warm, BranchAndBoundStats};
pub use matching::solve_equal_size_matching;
pub use predictor::{
    ideal_tier_labels, ideal_tier_labels_multi, PredictorFeatures, TierPredictor, TieringBaseline,
};
pub use problem::{Assignment, CompressionOption, OptAssignProblem, PartitionSpec, NO_COMPRESSION};
pub use schedule::{
    ideal_tier_schedules, ideal_tier_schedules_with_model, placement_schedule_cost,
    placement_schedule_cost_with_model, plan_placement_schedule,
    plan_placement_schedule_with_model, plan_tier_schedule, plan_tier_schedule_with_model,
    schedule_cost, schedule_cost_with_model, PeriodAccess, PeriodUsage, PlacementPlan,
    ScheduleOptions, TierSchedule,
};
