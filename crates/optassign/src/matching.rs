//! Minimum-weight bipartite matching for the equal-size / no-compression
//! special case (Theorem 2).
//!
//! When all partitions have the same span and compression is disabled, each
//! tier `l` with capacity `S_l` can be replaced by `Z_l = min(N, ⌊S_l/S⌋)`
//! copies; an edge connects a partition to a tier copy iff the tier's TTFB
//! satisfies the partition's latency threshold, weighted by the storage +
//! expected read cost. A minimum-weight perfect matching on this bipartite
//! graph is an optimal feasible assignment. The matching itself is solved
//! with the Hungarian algorithm (Jonker-Volgenant style potentials).
//!
//! Two engines share that algorithm: the dense JV over the copy-expanded
//! `n × m` matrix ([`hungarian`], kept as the reference semantics — on
//! copy-expanded matrices its zero-cost within-tier displacement cycles
//! make every augmentation walk the matched prefix of its preferred tiers,
//! `O(n²·m)` overall), and the **collapsed-copy emulation**
//! ([`hungarian_collapsed`]) the production solver uses, which exploits the
//! fact that identical copy columns form two per-tier equivalence classes
//! to run the same tree growth at `O(L)` per step — step-for-step
//! equivalent, ties included.

use crate::costtable::CostTable;
use crate::error::OptAssignError;
use crate::problem::{Assignment, OptAssignProblem, NO_COMPRESSION};
use scope_cloudsim::TierId;

/// Tolerance used when checking that all partitions have equal spans.
const SIZE_TOLERANCE: f64 = 1e-9;

/// The matching core shared by the table-driven and reference solvers:
/// validate the equal-size / no-compression shape, build the tier copies,
/// fill the edge-weight matrix with `eval(partition, tier)` (`None` =
/// latency-infeasible), run the Hungarian algorithm and extract the
/// choices. The two public entry points differ only in how `eval` prices a
/// placement.
pub(crate) fn equal_size_matching_core(
    problem: &OptAssignProblem,
    eval: impl Fn(usize, TierId) -> Option<f64>,
) -> Result<Vec<(TierId, usize)>, OptAssignError> {
    let (n, caps) = equal_size_shape(problem)?;

    // Build tier copies.
    let mut copy_tier: Vec<TierId> = Vec::new();
    for (t, &copies) in caps.iter().enumerate() {
        copy_tier.extend(std::iter::repeat(TierId(t)).take(copies));
    }

    // Cost matrix: rows = partitions, columns = tier copies. Infeasible
    // (latency-violating) edges get a large-but-finite penalty so the
    // Hungarian algorithm still finds a matching; we reject afterwards if a
    // penalty edge was selected.
    let m = copy_tier.len();
    let mut finite_max = 0.0f64;
    let mut cost = vec![vec![0.0f64; m]; n];
    for (i, row) in cost.iter_mut().enumerate() {
        for (j, &tier) in copy_tier.iter().enumerate() {
            if let Some(c) = eval(i, tier) {
                row[j] = c;
                finite_max = finite_max.max(c);
            } else {
                row[j] = f64::NAN; // placeholder, replaced below
            }
        }
    }
    let penalty = (finite_max + 1.0) * 1e6;
    for row in &mut cost {
        for c in row.iter_mut() {
            if c.is_nan() {
                *c = penalty;
            }
        }
    }

    let col_of_row = hungarian(&cost);
    let mut choices = vec![(TierId(0), NO_COMPRESSION); n];
    for (i, &j) in col_of_row.iter().enumerate() {
        if cost[i][j] >= penalty {
            return Err(OptAssignError::InfeasiblePartition {
                partition: problem.partitions[i].id,
                name: problem.partitions[i].name.clone(),
            });
        }
        choices[i] = (copy_tier[j], NO_COMPRESSION);
    }
    Ok(choices)
}

/// Validate the equal-size / no-compression shape and compute the per-tier
/// copy counts `Z_l = min(N, ⌊S_l/S⌋)` (N when unbounded). Shared by the
/// expanded and collapsed matching cores so both solve the identical
/// bipartite instance. Errors on malformed problems and on capacities that
/// cannot hold all partitions.
fn equal_size_shape(problem: &OptAssignProblem) -> Result<(usize, Vec<usize>), OptAssignError> {
    problem.validate()?;
    let n = problem.partitions.len();
    let size = problem.partitions[0].size_gb;
    for p in &problem.partitions {
        if (p.size_gb - size).abs() > SIZE_TOLERANCE {
            return Err(OptAssignError::NotEqualSizeInstance(format!(
                "partition {} has size {} != {}",
                p.name, p.size_gb, size
            )));
        }
        if p.compression_options.len() != 1 {
            return Err(OptAssignError::NotEqualSizeInstance(format!(
                "partition {} offers compression options",
                p.name
            )));
        }
    }
    let caps: Vec<usize> = problem
        .catalog
        .iter()
        .map(|(_, tier)| match tier.capacity_gb {
            None => n,
            Some(cap) => {
                if size <= SIZE_TOLERANCE {
                    n
                } else {
                    ((cap / size).floor() as usize).min(n)
                }
            }
        })
        .collect();
    if caps.iter().sum::<usize>() < n {
        return Err(OptAssignError::InfeasibleCapacity);
    }
    Ok((n, caps))
}

/// The collapsed-copy matching core: same instance as
/// [`equal_size_matching_core`] (same `n × L` costs, same penalty rule for
/// infeasible edges), solved with [`hungarian_collapsed`] instead of the
/// dense JV over the copy-expanded matrix.
pub(crate) fn equal_size_matching_collapsed(
    problem: &OptAssignProblem,
    eval: impl Fn(usize, TierId) -> Option<f64>,
) -> Result<Vec<(TierId, usize)>, OptAssignError> {
    let (n, caps) = equal_size_shape(problem)?;
    let l = caps.len();

    // n × L cost grid with the identical penalty construction the expanded
    // matrix uses (the max runs over feasible cells; duplicate copy columns
    // cannot change it).
    let mut finite_max = 0.0f64;
    let mut cost = vec![vec![0.0f64; l]; n];
    for (i, row) in cost.iter_mut().enumerate() {
        for (t, cell) in row.iter_mut().enumerate() {
            if let Some(c) = eval(i, TierId(t)) {
                *cell = c;
                finite_max = finite_max.max(c);
            } else {
                *cell = f64::NAN;
            }
        }
    }
    let penalty = (finite_max + 1.0) * 1e6;
    for row in &mut cost {
        for c in row.iter_mut() {
            if c.is_nan() {
                *c = penalty;
            }
        }
    }

    let tier_of_row = hungarian_collapsed(&cost, &caps)?;
    let mut choices = vec![(TierId(0), NO_COMPRESSION); n];
    for (i, &t) in tier_of_row.iter().enumerate() {
        if cost[i][t] >= penalty {
            return Err(OptAssignError::InfeasiblePartition {
                partition: problem.partitions[i].id,
                name: problem.partitions[i].name.clone(),
            });
        }
        choices[i] = (TierId(t), NO_COMPRESSION);
    }
    Ok(choices)
}

/// Solve the equal-size / no-compression special case by minimum-weight
/// bipartite matching.
///
/// Requirements checked:
/// * every partition has the same `size_gb`,
/// * every partition offers only the "no compression" option,
///
/// Capacity reservations are honoured exactly (via the tier-copy
/// construction). Returns an error if the instance does not satisfy the
/// requirements, if capacities cannot hold all partitions, or if some
/// partition has no latency-feasible tier.
///
/// Edge weights come from a [`CostTable`] evaluated once per solve, and
/// the Hungarian search runs on the **collapsed-copy emulation**
/// ([`hungarian_collapsed`]) — `O(L)` per tree-growth step instead of
/// `O(n·L)` over the copy-expanded matrix. The result is exactly the
/// assignment of the pre-table solver preserved in
/// [`crate::reference::solve_equal_size_matching_reference`], which the
/// differential proptests enforce bit-for-bit.
pub fn solve_equal_size_matching(problem: &OptAssignProblem) -> Result<Assignment, OptAssignError> {
    problem.validate()?;
    let table = CostTable::build(problem);
    let choices = equal_size_matching_collapsed(problem, |i, tier| {
        table
            .is_feasible(i, tier, NO_COMPRESSION)
            .then(|| table.cost(i, tier, NO_COMPRESSION))
    })?;
    table.assignment(problem, choices)
}

/// Hungarian algorithm (shortest augmenting path / potentials formulation)
/// for rectangular cost matrices with `rows <= cols`. Returns, for each row,
/// the column it is matched to. `O(rows² · cols)`.
fn hungarian(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(n <= m, "hungarian requires rows <= cols");
    // Potentials and matching arrays are 1-indexed internally (0 = sentinel).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![0usize; n];
    for j in 1..=m {
        if p[j] > 0 {
            result[p[j] - 1] = j - 1;
        }
    }
    result
}

/// Where an augmenting-tree column was reached from, in collapsed
/// coordinates: the virtual start column, or the matched copy at `position`
/// of `tier`.
#[derive(Clone, Copy)]
enum Way {
    /// The augmentation's virtual root (the new row).
    Virtual,
    /// The matched copy at (tier, prefix position).
    Matched(usize, usize),
}

/// Exact collapsed-copy emulation of [`hungarian`] on the copy-expanded
/// matrix: `cost` is the `n × L` per-tier matrix and `caps[t]` the number
/// of identical copies tier `t` contributes. Returns the row → tier map —
/// which is all the copy-expanded run determines, since copies of a tier
/// are indistinguishable.
///
/// Why this is the same algorithm, not an approximation. In the expanded
/// matrix, copies of tier `t` whose potentials `v` are **bit-identical**
/// are indistinguishable columns: every relaxation from a tree row `r`
/// computes `(cost[r][t] - u[r]) - v` — the same float for each of them —
/// every per-step `minv -= delta` shift hits them equally, and the
/// strict-`<` `way` freeze fires for all of them together. So at any
/// moment the unused copies of a tier partition into a handful of
/// *v-classes* (matched copies grouped by the exact bits of their `v`,
/// which is static during an augmentation, plus the free copies at
/// `v = 0`), and the dense scan's lexicographic (value, column-index)
/// choice is always some class's lowest unused position. The dense
/// `O(n·L)`-per-step tree growth therefore collapses to one candidate per
/// class — `O(classes)` per step — while the growth sequence, tie-breaks
/// and augmenting-path backtrack are column-for-column those of the
/// expanded run.
///
/// Bit-exactness also pins the *arithmetic stream*: potentials are updated
/// **per step** (`u += delta`, `v -= delta`, `minv -= delta`), never as an
/// accumulated sum — float addition is not associative, and the dense
/// run's occasional `-0.0`-grade deltas from cancellation must reproduce
/// exactly or tie-breaks flip. Every expression here (`q = cost - u`, then
/// `q - v`) mirrors the dense code's evaluation order.
///
/// The collapse is what makes 1 000-partition matchings practical: on the
/// expanded matrix the within-tier displacement cycle costs exactly zero,
/// so every augmentation walks the matched copies of its preferred tiers —
/// `O(n²·m)` overall. The collapsed walk still visits those rows (their
/// relaxations are needed), but each visit costs `O(classes)` rather than
/// a full `O(m)` column scan.
fn hungarian_collapsed(cost: &[Vec<f64>], caps: &[usize]) -> Result<Vec<usize>, OptAssignError> {
    let n = cost.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let l = caps.len();
    debug_assert!(caps.iter().sum::<usize>() >= n);
    // Column index base of each tier's block, for scan-order tie-breaks.
    let base: Vec<usize> = caps
        .iter()
        .scan(0usize, |acc, &c| {
            let b = *acc;
            *acc += c;
            Some(b)
        })
        .collect();
    // Matched occupants per tier in copy order, each with its column's v.
    let mut lists: Vec<Vec<(usize, f64)>> = vec![Vec::new(); l];
    let mut u = vec![0.0f64; n];
    let inf = f64::INFINITY;

    /// One equivalence class of unused columns inside a tier: matched
    /// copies sharing the exact bits of `v`, or the tier's free copies
    /// (`members` empty, `free: true`). `minv`/`way` are the shared dense
    /// per-column state; `ptr` advances through `members` as copies join
    /// the tree.
    struct Class {
        tier: usize,
        free: bool,
        v: f64,
        minv: f64,
        way: Way,
        members: Vec<usize>,
        ptr: usize,
    }

    for i in 0..n {
        // Build the v-classes of this augmentation (v is static until the
        // final per-step updates are applied to popped copies).
        let mut classes: Vec<Class> = Vec::new();
        for (t, list) in lists.iter().enumerate() {
            let tier_start = classes.len();
            for (pos, &(_, v)) in list.iter().enumerate() {
                match classes[tier_start..]
                    .iter_mut()
                    .find(|c| c.v.to_bits() == v.to_bits())
                {
                    Some(c) => c.members.push(pos),
                    None => classes.push(Class {
                        tier: t,
                        free: false,
                        v,
                        minv: inf,
                        way: Way::Virtual,
                        members: vec![pos],
                        ptr: 0,
                    }),
                }
            }
            if list.len() < caps[t] {
                classes.push(Class {
                    tier: t,
                    free: true,
                    v: 0.0,
                    minv: inf,
                    way: Way::Virtual,
                    members: Vec::new(),
                    ptr: 0,
                });
            }
        }
        // Tree bookkeeping: rows whose stored u takes this step's deltas,
        // popped copies whose stored v takes them, and the frozen way of
        // every popped copy for the backtrack.
        let mut tree_rows: Vec<usize> = vec![i];
        let mut popped: Vec<(usize, usize)> = Vec::new();
        let mut pop_ways: Vec<Vec<(usize, Way)>> = vec![Vec::new(); l];

        // Relax every class from a row joining the tree, with the dense
        // evaluation order: q = cost - u, then cur = q - v.
        let relax = |row: usize, u_row: f64, from: Way, classes: &mut [Class]| {
            for c in classes.iter_mut() {
                let q = cost[row][c.tier] - u_row;
                let cur = q - c.v;
                if cur < c.minv {
                    c.minv = cur;
                    c.way = from;
                }
            }
        };
        relax(i, u[i], Way::Virtual, &mut classes);

        // Grow the tree one column per step until a free copy terminates
        // the augmentation, selecting the (value, column-index)
        // lexicographic minimum exactly like the ascending strict-< scan.
        let terminal_tier = loop {
            let mut best_val = inf;
            let mut best_idx = usize::MAX;
            let mut best: Option<usize> = None;
            for (ci, c) in classes.iter().enumerate() {
                let idx = if c.free {
                    base[c.tier] + lists[c.tier].len()
                } else if c.ptr < c.members.len() {
                    base[c.tier] + c.members[c.ptr]
                } else {
                    continue; // every copy of the class is in the tree
                };
                if c.minv < best_val || (c.minv == best_val && idx < best_idx) {
                    best_val = c.minv;
                    best_idx = idx;
                    best = Some(ci);
                }
            }
            let Some(ci) = best else {
                return Err(OptAssignError::InvalidProblem(
                    "matching ran out of tier capacity: total capacity < partitions".into(),
                ));
            };
            // Apply this step's delta exactly as the dense update loop
            // does: one addition/subtraction per entity per step.
            for r in &tree_rows {
                u[*r] += best_val;
            }
            for &(t, pos) in &popped {
                lists[t][pos].1 -= best_val;
            }
            for c in classes.iter_mut() {
                c.minv -= best_val;
            }
            if classes[ci].free {
                break ci;
            }
            // Pop the class's lowest unused position: its row joins the
            // tree and relaxes every class.
            let t = classes[ci].tier;
            let pos = classes[ci].members[classes[ci].ptr];
            classes[ci].ptr += 1;
            pop_ways[t].push((pos, classes[ci].way));
            popped.push((t, pos));
            let row = lists[t][pos].0;
            tree_rows.push(row);
            relax(row, u[row], Way::Matched(t, pos), &mut classes);
        };
        let terminal_way = classes[terminal_tier].way;
        let terminal_tier = classes[terminal_tier].tier;

        // Augmenting path: from the terminal free copy back to the virtual
        // root via the frozen ways, then thread rows forward along it (the
        // dense run's `p[j0] = p[way[j0]]` backtrack).
        let mut path: Vec<(usize, usize)> = Vec::new(); // matched (tier, pos)
        let mut w = terminal_way;
        while let Way::Matched(t, pos) = w {
            path.push((t, pos));
            let Some(&(_, prev)) = pop_ways[t].iter().find(|&&(p, _)| p == pos) else {
                return Err(OptAssignError::InvalidProblem(
                    "augmenting path references a column that was never popped".into(),
                ));
            };
            w = prev;
        }
        let mut carry = i;
        for &(t, pos) in path.iter().rev() {
            std::mem::swap(&mut carry, &mut lists[t][pos].0);
        }
        // The terminal free copy starts with potential 0, like any column
        // that has never been in a finished tree.
        lists[terminal_tier].push((carry, 0.0));
    }

    let mut result = vec![0usize; n];
    for (t, list) in lists.iter().enumerate() {
        for &(row, _) in list {
            result[row] = t;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use crate::problem::{CompressionOption, PartitionSpec};
    use scope_cloudsim::TierCatalog;

    #[test]
    fn hungarian_solves_small_known_instance() {
        // Classic 3x3 assignment problem; optimum = 5 (1+2+2 on the
        // anti-diagonal-ish selection).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let assignment = hungarian(&cost);
        let total: f64 = assignment
            .iter()
            .enumerate()
            .map(|(i, &j)| cost[i][j])
            .sum();
        assert!((total - 5.0).abs() < 1e-9);
        // Columns are distinct.
        let mut cols = assignment.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn hungarian_handles_rectangular_matrices() {
        let cost = vec![vec![10.0, 1.0, 10.0, 10.0], vec![1.0, 10.0, 10.0, 10.0]];
        let assignment = hungarian(&cost);
        assert_eq!(assignment, vec![1, 0]);
    }

    #[test]
    fn matching_matches_greedy_when_unbounded() {
        // Without capacity bounds the matching and the greedy must agree on
        // the objective (both are optimal).
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..6)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, (i * 10) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let matched = solve_equal_size_matching(&problem).unwrap();
        let greedy = solve_greedy(&problem).unwrap();
        assert!((matched.objective - greedy.objective).abs() < 1e-6);
    }

    #[test]
    fn capacity_limits_number_of_partitions_per_tier() {
        let mut catalog = TierCatalog::azure_adls_gen2();
        // Premium holds only 1 copy of a 50 GB partition, Hot only 2.
        catalog.set_capacity("Premium", 60.0).unwrap();
        catalog.set_capacity("Hot", 110.0).unwrap();
        let premium = catalog.tier_id("Premium").unwrap();
        let hot = catalog.tier_id("Hot").unwrap();
        let parts: Vec<_> = (0..5)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, 1000.0))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let a = solve_equal_size_matching(&problem).unwrap();
        let count = |tier| a.choices.iter().filter(|&&(t, _)| t == tier).count();
        assert!(count(premium) <= 1);
        assert!(count(hot) <= 2);
        assert_eq!(a.choices.len(), 5);
    }

    #[test]
    fn matching_is_better_than_naive_fill_under_capacity_pressure() {
        // Two heavily-read partitions but premium only fits one: the matching
        // puts the *more* heavily read one on premium.
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 50.0).unwrap();
        let premium = catalog.tier_id("Premium").unwrap();
        let parts = vec![
            PartitionSpec::new(0, "light", 50.0, 100.0),
            PartitionSpec::new(1, "heavy", 50.0, 100_000.0),
        ];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let a = solve_equal_size_matching(&problem).unwrap();
        assert_eq!(a.choices[1].0, premium);
        assert_ne!(a.choices[0].0, premium);
    }

    #[test]
    fn matching_searches_the_merged_multi_provider_space() {
        use scope_cloudsim::ProviderCatalog;
        // Without capacity bounds the matching must agree with the greedy on
        // the merged, egress-aware instance (both are optimal there).
        let providers = ProviderCatalog::azure_s3_gcs();
        let azure_hot = providers.merged_tier_id("azure", "Hot").unwrap();
        let parts: Vec<_> = (0..5)
            .map(|i| {
                PartitionSpec::new(i, format!("p{i}"), 50.0, (i * 40) as f64)
                    .with_current_tier(azure_hot)
                    .with_latency_threshold(1.0)
            })
            .collect();
        let problem = OptAssignProblem::multi_provider(&providers, parts, 6.0);
        let matched = solve_equal_size_matching(&problem).unwrap();
        let greedy = solve_greedy(&problem).unwrap();
        assert!((matched.objective - greedy.objective).abs() < 1e-6);
        // The latency SLA keeps every choice off the two slow archives.
        for &(tier, _) in &matched.choices {
            let t = problem.catalog.tier(tier).unwrap();
            assert!(t.ttfb_seconds <= 1.0, "{} violates the SLA", t.name);
        }
    }

    #[test]
    fn collapsed_hungarian_equals_expanded_on_adversarial_tie_instances() {
        // The collapsed-copy emulation must reproduce the expanded JV's
        // row → tier map exactly, including under the worst tie conditions:
        // integer-rounded costs (exact cross-tier ties), duplicated rows
        // (identical partitions) and exact-fit / tight capacities (deep
        // eviction chains). Deterministic xorshift instances, checked for
        // full choices equality against the expanded core.
        let mut state = 0x243F6A8885A308D3u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..120 {
            let n = 2 + (case % 9);
            let l = 2 + (case % 4);
            let caps: Vec<usize> = match case % 3 {
                // exact fit, tight, loose
                0 => {
                    let mut caps = vec![n / l; l];
                    let mut rem = n - (n / l) * l;
                    for c in caps.iter_mut() {
                        if rem > 0 {
                            *c += 1;
                            rem -= 1;
                        }
                    }
                    caps
                }
                1 => {
                    let mut caps = vec![n.div_ceil(l); l];
                    caps[0] += 1;
                    caps
                }
                _ => vec![n; l],
            };
            let mut cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..l).map(|_| (rnd() * 15.0).round()).collect())
                .collect();
            for i in (0..n).step_by(3) {
                if i + 1 < n {
                    cost[i + 1] = cost[i].clone();
                }
            }
            // Expanded oracle: copy-expand and run the dense JV.
            let mut copy_tier = Vec::new();
            for (t, &c) in caps.iter().enumerate() {
                copy_tier.extend(std::iter::repeat(t).take(c));
            }
            let expanded: Vec<Vec<f64>> = cost
                .iter()
                .map(|row| copy_tier.iter().map(|&t| row[t]).collect())
                .collect();
            let dense = hungarian(&expanded);
            let dense_tiers: Vec<usize> = dense.iter().map(|&j| copy_tier[j]).collect();
            let collapsed = hungarian_collapsed(&cost, &caps).expect("feasible random case");
            assert_eq!(
                collapsed, dense_tiers,
                "case {case}: n={n} l={l} caps={caps:?} cost={cost:?}"
            );
        }
    }

    #[test]
    fn production_matching_uses_collapsed_core_and_matches_reference() {
        // End-to-end: exact-fit capacities + duplicated partitions through
        // the public solvers (table+collapsed vs model+expanded).
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 50.0).unwrap();
        catalog.set_capacity("Hot", 100.0).unwrap();
        catalog.set_capacity("Cool", 100.0).unwrap();
        catalog.set_capacity("Archive", 100.0).unwrap(); // total = 7 copies of 50
        let parts: Vec<_> = (0..7)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, ((i / 2) * 100) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let table = solve_equal_size_matching(&problem).unwrap();
        let reference = crate::reference::solve_equal_size_matching_reference(&problem).unwrap();
        assert_eq!(table, reference);
    }

    #[test]
    fn non_equal_sizes_or_compression_are_rejected() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![
            PartitionSpec::new(0, "a", 50.0, 1.0),
            PartitionSpec::new(1, "b", 60.0, 1.0),
        ];
        let problem = OptAssignProblem::new(catalog.clone(), parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::NotEqualSizeInstance(_))
        ));
        let parts = vec![PartitionSpec::new(0, "a", 50.0, 1.0)
            .with_compression_option(CompressionOption::new("gzip", 3.0, 1.0))];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::NotEqualSizeInstance(_))
        ));
    }

    #[test]
    fn insufficient_total_capacity_is_detected() {
        let mut catalog = TierCatalog::azure_hot_cool();
        catalog.set_capacity("Hot", 40.0).unwrap();
        catalog.set_capacity("Cool", 40.0).unwrap();
        let parts: Vec<_> = (0..3)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, 1.0))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::InfeasibleCapacity)
        ));
    }

    #[test]
    fn latency_infeasible_partition_is_reported() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![PartitionSpec::new(0, "a", 50.0, 1.0).with_latency_threshold(1e-9)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::InfeasiblePartition { .. })
        ));
    }
}
