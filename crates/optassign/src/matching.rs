//! Minimum-weight bipartite matching for the equal-size / no-compression
//! special case (Theorem 2).
//!
//! When all partitions have the same span and compression is disabled, each
//! tier `l` with capacity `S_l` can be replaced by `Z_l = min(N, ⌊S_l/S⌋)`
//! copies; an edge connects a partition to a tier copy iff the tier's TTFB
//! satisfies the partition's latency threshold, weighted by the storage +
//! expected read cost. A minimum-weight perfect matching on this bipartite
//! graph is an optimal feasible assignment. The matching itself is solved
//! with the Hungarian algorithm (Jonker-Volgenant style potentials),
//! `O(n³)` in the number of partitions.

use crate::error::OptAssignError;
use crate::problem::{Assignment, OptAssignProblem, NO_COMPRESSION};
use scope_cloudsim::TierId;

/// Tolerance used when checking that all partitions have equal spans.
const SIZE_TOLERANCE: f64 = 1e-9;

/// Solve the equal-size / no-compression special case by minimum-weight
/// bipartite matching.
///
/// Requirements checked:
/// * every partition has the same `size_gb`,
/// * every partition offers only the "no compression" option,
///
/// Capacity reservations are honoured exactly (via the tier-copy
/// construction). Returns an error if the instance does not satisfy the
/// requirements, if capacities cannot hold all partitions, or if some
/// partition has no latency-feasible tier.
pub fn solve_equal_size_matching(problem: &OptAssignProblem) -> Result<Assignment, OptAssignError> {
    problem.validate()?;
    let n = problem.partitions.len();
    let size = problem.partitions[0].size_gb;
    for p in &problem.partitions {
        if (p.size_gb - size).abs() > SIZE_TOLERANCE {
            return Err(OptAssignError::NotEqualSizeInstance(format!(
                "partition {} has size {} != {}",
                p.name, p.size_gb, size
            )));
        }
        if p.compression_options.len() != 1 {
            return Err(OptAssignError::NotEqualSizeInstance(format!(
                "partition {} offers compression options",
                p.name
            )));
        }
    }

    // Build tier copies.
    let mut copy_tier: Vec<TierId> = Vec::new();
    for (tier_id, tier) in problem.catalog.iter() {
        let copies = match tier.capacity_gb {
            None => n,
            Some(cap) => {
                if size <= SIZE_TOLERANCE {
                    n
                } else {
                    ((cap / size).floor() as usize).min(n)
                }
            }
        };
        copy_tier.extend(std::iter::repeat(tier_id).take(copies));
    }
    if copy_tier.len() < n {
        return Err(OptAssignError::InfeasibleCapacity);
    }

    // Cost matrix: rows = partitions, columns = tier copies. Infeasible
    // (latency-violating) edges get a large-but-finite penalty so the
    // Hungarian algorithm still finds a matching; we reject afterwards if a
    // penalty edge was selected.
    let m = copy_tier.len();
    let mut finite_max = 0.0f64;
    let mut cost = vec![vec![0.0f64; m]; n];
    for (i, p) in problem.partitions.iter().enumerate() {
        for (j, &tier) in copy_tier.iter().enumerate() {
            if problem.is_feasible(p, tier, NO_COMPRESSION) {
                let c = problem.placement_cost(p, tier, NO_COMPRESSION);
                cost[i][j] = c;
                finite_max = finite_max.max(c);
            } else {
                cost[i][j] = f64::NAN; // placeholder, replaced below
            }
        }
    }
    let penalty = (finite_max + 1.0) * 1e6;
    for row in &mut cost {
        for c in row.iter_mut() {
            if c.is_nan() {
                *c = penalty;
            }
        }
    }

    let col_of_row = hungarian(&cost);
    let mut choices = vec![(TierId(0), NO_COMPRESSION); n];
    for (i, &j) in col_of_row.iter().enumerate() {
        if cost[i][j] >= penalty {
            return Err(OptAssignError::InfeasiblePartition {
                partition: problem.partitions[i].id,
                name: problem.partitions[i].name.clone(),
            });
        }
        choices[i] = (copy_tier[j], NO_COMPRESSION);
    }
    Assignment::from_choices(problem, choices)
}

/// Hungarian algorithm (shortest augmenting path / potentials formulation)
/// for rectangular cost matrices with `rows <= cols`. Returns, for each row,
/// the column it is matched to. `O(rows² · cols)`.
fn hungarian(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(n <= m, "hungarian requires rows <= cols");
    // Potentials and matching arrays are 1-indexed internally (0 = sentinel).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![0usize; n];
    for j in 1..=m {
        if p[j] > 0 {
            result[p[j] - 1] = j - 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use crate::problem::{CompressionOption, PartitionSpec};
    use scope_cloudsim::TierCatalog;

    #[test]
    fn hungarian_solves_small_known_instance() {
        // Classic 3x3 assignment problem; optimum = 5 (1+2+2 on the
        // anti-diagonal-ish selection).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let assignment = hungarian(&cost);
        let total: f64 = assignment
            .iter()
            .enumerate()
            .map(|(i, &j)| cost[i][j])
            .sum();
        assert!((total - 5.0).abs() < 1e-9);
        // Columns are distinct.
        let mut cols = assignment.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn hungarian_handles_rectangular_matrices() {
        let cost = vec![vec![10.0, 1.0, 10.0, 10.0], vec![1.0, 10.0, 10.0, 10.0]];
        let assignment = hungarian(&cost);
        assert_eq!(assignment, vec![1, 0]);
    }

    #[test]
    fn matching_matches_greedy_when_unbounded() {
        // Without capacity bounds the matching and the greedy must agree on
        // the objective (both are optimal).
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = (0..6)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, (i * 10) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let matched = solve_equal_size_matching(&problem).unwrap();
        let greedy = solve_greedy(&problem).unwrap();
        assert!((matched.objective - greedy.objective).abs() < 1e-6);
    }

    #[test]
    fn capacity_limits_number_of_partitions_per_tier() {
        let mut catalog = TierCatalog::azure_adls_gen2();
        // Premium holds only 1 copy of a 50 GB partition, Hot only 2.
        catalog.set_capacity("Premium", 60.0).unwrap();
        catalog.set_capacity("Hot", 110.0).unwrap();
        let premium = catalog.tier_id("Premium").unwrap();
        let hot = catalog.tier_id("Hot").unwrap();
        let parts: Vec<_> = (0..5)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, 1000.0))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let a = solve_equal_size_matching(&problem).unwrap();
        let count = |tier| a.choices.iter().filter(|&&(t, _)| t == tier).count();
        assert!(count(premium) <= 1);
        assert!(count(hot) <= 2);
        assert_eq!(a.choices.len(), 5);
    }

    #[test]
    fn matching_is_better_than_naive_fill_under_capacity_pressure() {
        // Two heavily-read partitions but premium only fits one: the matching
        // puts the *more* heavily read one on premium.
        let mut catalog = TierCatalog::azure_adls_gen2();
        catalog.set_capacity("Premium", 50.0).unwrap();
        let premium = catalog.tier_id("Premium").unwrap();
        let parts = vec![
            PartitionSpec::new(0, "light", 50.0, 100.0),
            PartitionSpec::new(1, "heavy", 50.0, 100_000.0),
        ];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let a = solve_equal_size_matching(&problem).unwrap();
        assert_eq!(a.choices[1].0, premium);
        assert_ne!(a.choices[0].0, premium);
    }

    #[test]
    fn matching_searches_the_merged_multi_provider_space() {
        use scope_cloudsim::ProviderCatalog;
        // Without capacity bounds the matching must agree with the greedy on
        // the merged, egress-aware instance (both are optimal there).
        let providers = ProviderCatalog::azure_s3_gcs();
        let azure_hot = providers.merged_tier_id("azure", "Hot").unwrap();
        let parts: Vec<_> = (0..5)
            .map(|i| {
                PartitionSpec::new(i, format!("p{i}"), 50.0, (i * 40) as f64)
                    .with_current_tier(azure_hot)
                    .with_latency_threshold(1.0)
            })
            .collect();
        let problem = OptAssignProblem::multi_provider(&providers, parts, 6.0);
        let matched = solve_equal_size_matching(&problem).unwrap();
        let greedy = solve_greedy(&problem).unwrap();
        assert!((matched.objective - greedy.objective).abs() < 1e-6);
        // The latency SLA keeps every choice off the two slow archives.
        for &(tier, _) in &matched.choices {
            let t = problem.catalog.tier(tier).unwrap();
            assert!(t.ttfb_seconds <= 1.0, "{} violates the SLA", t.name);
        }
    }

    #[test]
    fn non_equal_sizes_or_compression_are_rejected() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![
            PartitionSpec::new(0, "a", 50.0, 1.0),
            PartitionSpec::new(1, "b", 60.0, 1.0),
        ];
        let problem = OptAssignProblem::new(catalog.clone(), parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::NotEqualSizeInstance(_))
        ));
        let parts = vec![PartitionSpec::new(0, "a", 50.0, 1.0)
            .with_compression_option(CompressionOption::new("gzip", 3.0, 1.0))];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::NotEqualSizeInstance(_))
        ));
    }

    #[test]
    fn insufficient_total_capacity_is_detected() {
        let mut catalog = TierCatalog::azure_hot_cool();
        catalog.set_capacity("Hot", 40.0).unwrap();
        catalog.set_capacity("Cool", 40.0).unwrap();
        let parts: Vec<_> = (0..3)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, 1.0))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::InfeasibleCapacity)
        ));
    }

    #[test]
    fn latency_infeasible_partition_is_reported() {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![PartitionSpec::new(0, "a", 50.0, 1.0).with_latency_threshold(1e-9)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        assert!(matches!(
            solve_equal_size_matching(&problem),
            Err(OptAssignError::InfeasiblePartition { .. })
        ));
    }
}
