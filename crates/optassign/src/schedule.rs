//! Per-billing-period tier schedules: the day-granular extension of the
//! tier predictor's objective.
//!
//! The paper recommends *per-billing-period* tier changes: instead of
//! freezing one tier per object for the whole projection horizon, the
//! placement may move at period boundaries as data cools. This module
//! prices a schedule exactly the way the day-granular billing engine bills
//! it — per-period storage, read/write volume charges, tier-transition
//! costs in the period they occur, and early-deletion penalties pro-rated
//! by the **days** of unmet minimum residency — and finds the cost-optimal
//! schedule by dynamic programming.
//!
//! The DP state is `(tier, period the tier was entered)`: the entry period
//! is what makes residency accounting exact, since the days served on a
//! tier at the moment of a move determine the early-deletion penalty. With
//! `L` tiers and `T` periods the state space is `O(L·T)` and the transition
//! space `O(L²·T²)` — trivial for realistic horizons (`T ≤ 24`).
//!
//! The DP also searches **merged multi-provider tier spaces**: via
//! [`plan_tier_schedule_with_model`] with a provider-aware
//! [`CostModel`] the transition costs include the inter-provider egress
//! charge, so a schedule only crosses clouds when the destination ladder's
//! savings repay the egress (and any unmet-residency penalty of the tier
//! being left).

use crate::error::OptAssignError;
use crate::problem::CompressionOption;
use scope_cloudsim::billing::Placement;
use scope_cloudsim::timeline::{PlacementSchedule, DAYS_PER_MONTH};
use scope_cloudsim::{CostModel, TierCatalog, TierId};
use scope_workload::{AccessSeries, DatasetCatalog};
use serde::{Deserialize, Serialize};

/// Projected access volumes of one object in one billing period.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PeriodAccess {
    /// GB expected to be read during the period.
    pub read_gb: f64,
    /// GB expected to be written during the period.
    pub write_gb: f64,
}

impl PeriodAccess {
    /// Convenience constructor.
    pub fn new(read_gb: f64, write_gb: f64) -> Self {
        PeriodAccess { read_gb, write_gb }
    }
}

/// Options for [`plan_tier_schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOptions {
    /// Tier the object occupies before the horizon starts (`None` = newly
    /// ingested).
    pub current_tier: Option<TierId>,
    /// Days already served on `current_tier` before the horizon starts
    /// (counts against the tier's minimum residency period).
    pub residency_days: u32,
    /// Access-latency SLA: tiers whose TTFB exceeds this are never used.
    pub latency_threshold_seconds: f64,
    /// Re-tiering granularity: transitions are only allowed at period
    /// boundaries that are multiples of this (1 = every billing period,
    /// `u32::MAX`-ish values degenerate to a frozen placement).
    pub retier_every: u32,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            current_tier: None,
            residency_days: 0,
            latency_threshold_seconds: f64::INFINITY,
            retier_every: 1,
        }
    }
}

/// A cost-optimal per-period tier schedule for one object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSchedule {
    /// The tier occupied in each billing period of the horizon.
    pub tiers: Vec<TierId>,
    /// The projected cost (cents) of the schedule: storage + accesses +
    /// transitions + residency penalties, exactly as the day-granular
    /// billing engine would charge them for period-aligned moves.
    pub planned_cost: f64,
}

impl TierSchedule {
    /// Number of mid-horizon transitions (period boundaries where the tier
    /// actually changes).
    pub fn transition_count(&self) -> usize {
        self.tiers.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Lower the schedule onto the billing timeline: an uncompressed
    /// [`PlacementSchedule`] whose transitions sit on period-boundary days.
    pub fn to_placement_schedule(&self) -> PlacementSchedule {
        let mut schedule = PlacementSchedule::constant(Placement::uncompressed(self.tiers[0]));
        for (p, w) in self.tiers.windows(2).enumerate() {
            if w[0] != w[1] {
                schedule = schedule.with_transition(
                    (p as u32 + 1) * DAYS_PER_MONTH,
                    Placement::uncompressed(w[1]),
                );
            }
        }
        schedule
    }
}

/// Cost (cents) of spending one period on `tier` with the given projected
/// access volumes: a full period of storage plus read/write volume charges.
fn period_cost(model: &CostModel, tier: TierId, size_gb: f64, access: &PeriodAccess) -> f64 {
    model.storage_cost(tier, size_gb, 1.0)
        + model.read_cost(tier, access.read_gb, 1.0)
        + model.write_cost(tier, access.write_gb)
}

/// Early-deletion penalty (cents) for leaving `tier` after `days_served`
/// days — delegates to the shared [`CostModel::early_deletion_penalty`]
/// rule so the DP prices exactly what the billing engine charges.
fn departure_penalty(
    model: &CostModel,
    tier: TierId,
    size_gb: f64,
    days_served: u32,
) -> Result<f64, OptAssignError> {
    model
        .early_deletion_penalty(tier, size_gb, days_served)
        .map_err(|e| OptAssignError::InvalidProblem(e.to_string()))
}

/// Find the cost-minimal per-period tier schedule for one object.
///
/// `periods[p]` is the projected access volume of billing period `p`; the
/// returned schedule has one tier per period. Costs are priced exactly as
/// the day-granular billing engine bills period-aligned schedules, so the
/// planned cost of the optimum is what the simulator will report (up to
/// float accumulation order) when the projection is exact.
pub fn plan_tier_schedule(
    catalog: &TierCatalog,
    size_gb: f64,
    periods: &[PeriodAccess],
    options: &ScheduleOptions,
) -> Result<TierSchedule, OptAssignError> {
    plan_tier_schedule_with_model(
        &CostModel::new(catalog.clone()),
        size_gb,
        periods,
        options,
        None,
    )
}

/// [`plan_tier_schedule`] over an explicit [`CostModel`] — the entry point
/// for multi-provider planning: with a provider-aware model (see
/// [`CostModel::with_topology`]) the DP's transition costs include the
/// inter-provider egress charge, so the optimum crosses providers only when
/// the storage/read savings repay the egress.
///
/// `allowed_tiers` optionally restricts the search to a subset of the
/// catalog (e.g. one provider's tiers inside a merged catalog); `None`
/// searches the whole catalog. The latency threshold of `options` filters
/// on top of this.
pub fn plan_tier_schedule_with_model(
    model: &CostModel,
    size_gb: f64,
    periods: &[PeriodAccess],
    options: &ScheduleOptions,
    allowed_tiers: Option<&[TierId]>,
) -> Result<TierSchedule, OptAssignError> {
    let catalog = model.catalog();
    if periods.is_empty() {
        return Err(OptAssignError::InvalidProblem(
            "schedule horizon must cover at least one period".to_string(),
        ));
    }
    if !(size_gb >= 0.0) || !size_gb.is_finite() {
        return Err(OptAssignError::InvalidProblem(format!(
            "invalid object size {size_gb}"
        )));
    }
    let retier_every = options.retier_every.max(1);
    let candidates: Vec<TierId> = match allowed_tiers {
        Some(ids) => ids.to_vec(),
        None => catalog.tier_ids(),
    };
    let mut usable: Vec<TierId> = Vec::with_capacity(candidates.len());
    for id in candidates {
        let tier = catalog
            .tier(id)
            .map_err(|e| OptAssignError::InvalidProblem(e.to_string()))?;
        if tier.ttfb_seconds <= options.latency_threshold_seconds {
            usable.push(id);
        }
    }
    if usable.is_empty() {
        return Err(OptAssignError::InvalidProblem(
            "no tier satisfies the latency threshold".to_string(),
        ));
    }

    let n = periods.len();
    // DP over states (tier, period the tier was entered): cost[idx(t, e)]
    // is the minimal cost of periods 0..=p with the object on tier t since
    // the start of period e. The entry period makes residency accounting
    // exact. parents[p][state] is the state occupied at period p - 1
    // (usize::MAX marks the DP root at p = 0).
    let n_tiers = usable.len();
    let idx = |t: usize, e: usize| t * n + e;
    let inf = f64::INFINITY;

    // Cost tables hoisted out of the transition loops: the per-period stay
    // cost of each usable tier and the usable×usable tier-change matrix are
    // pure functions of (tier, period) / (from, to), so evaluating them
    // once (instead of once per DP transition — O(L²·T²) model calls)
    // changes nothing but the wall clock; the values are the exact f64s the
    // inner loops computed before.
    let mut stay_cost = Vec::with_capacity(n_tiers * n);
    for &tier in &usable {
        for access in periods {
            stay_cost.push(period_cost(model, tier, size_gb, access));
        }
    }
    let mut change_cost = Vec::with_capacity(n_tiers * n_tiers);
    for &from in &usable {
        for &to in &usable {
            change_cost.push(model.tier_change_cost(Some(from), to, size_gb));
        }
    }

    let mut cost = vec![inf; n_tiers * n];
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(n);

    // Seed: at the start of period 0 the object moves from `current_tier`
    // (possibly nowhere) onto its first tier, paying the transition and any
    // unmet-residency penalty of the pre-horizon tier.
    for (ti, &tier) in usable.iter().enumerate() {
        let mut c = model.tier_change_cost(options.current_tier, tier, size_gb);
        if let Some(from) = options.current_tier {
            if from != tier {
                c += departure_penalty(model, from, size_gb, options.residency_days)?;
            }
        }
        c += stay_cost[ti * n];
        cost[idx(ti, 0)] = c;
    }
    parents.push(vec![usize::MAX; n_tiers * n]);

    for p in 1..n {
        let mut next = vec![inf; n_tiers * n];
        let mut parent = vec![usize::MAX; n_tiers * n];
        let may_move = (p as u32) % retier_every == 0;
        for (ti, &tier) in usable.iter().enumerate() {
            for e in 0..p {
                let s = idx(ti, e);
                if cost[s] == inf {
                    continue;
                }
                // Stay on the same tier: the entry period is unchanged.
                let stay = cost[s] + stay_cost[ti * n + p];
                if stay < next[s] {
                    next[s] = stay;
                    parent[s] = s;
                }
                // Move to another tier at this boundary.
                if !may_move {
                    continue;
                }
                // Days served on `tier` at the start of period p; the
                // pre-horizon residency counts if the object entered the
                // horizon on this tier without an initial move.
                let mut days_served = (p - e) as u32 * DAYS_PER_MONTH;
                if e == 0 && options.current_tier == Some(tier) {
                    days_served += options.residency_days;
                }
                let penalty = departure_penalty(model, tier, size_gb, days_served)?;
                for ui in 0..n_tiers {
                    if ui == ti {
                        continue;
                    }
                    let c =
                        cost[s] + change_cost[ti * n_tiers + ui] + penalty + stay_cost[ui * n + p];
                    let d = idx(ui, p);
                    if c < next[d] {
                        next[d] = c;
                        parent[d] = s;
                    }
                }
            }
        }
        cost = next;
        parents.push(parent);
    }

    // Best final state and schedule reconstruction.
    let Some((mut best_state, best_cost)) = cost
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, &c)| (i, c))
    else {
        return Err(OptAssignError::InvalidProblem(
            "empty tier-schedule state space".to_string(),
        ));
    };
    if !best_cost.is_finite() {
        return Err(OptAssignError::InvalidProblem(
            "no feasible tier schedule".to_string(),
        ));
    }
    let mut tiers = vec![usable[0]; n];
    for p in (0..n).rev() {
        tiers[p] = usable[best_state / n];
        best_state = parents[p][best_state];
    }
    debug_assert_eq!(best_state, usize::MAX, "walked past the DP root");
    Ok(TierSchedule {
        tiers,
        planned_cost: best_cost,
    })
}

/// Price an *explicit* per-period tier sequence with the same cost model
/// the DP optimizes (useful for comparing a frozen placement against the
/// optimal schedule).
pub fn schedule_cost(
    catalog: &TierCatalog,
    size_gb: f64,
    periods: &[PeriodAccess],
    tiers: &[TierId],
    options: &ScheduleOptions,
) -> Result<f64, OptAssignError> {
    schedule_cost_with_model(
        &CostModel::new(catalog.clone()),
        size_gb,
        periods,
        tiers,
        options,
    )
}

/// [`schedule_cost`] over an explicit [`CostModel`] — prices egress-aware
/// transitions when the model carries a provider topology.
pub fn schedule_cost_with_model(
    model: &CostModel,
    size_gb: f64,
    periods: &[PeriodAccess],
    tiers: &[TierId],
    options: &ScheduleOptions,
) -> Result<f64, OptAssignError> {
    if tiers.len() != periods.len() || periods.is_empty() {
        return Err(OptAssignError::InvalidProblem(format!(
            "schedule length {} does not match horizon {}",
            tiers.len(),
            periods.len()
        )));
    }
    let mut prev = options.current_tier;
    let mut days_served = options.residency_days;
    let mut total = 0.0;
    for (&tier, access) in tiers.iter().zip(periods) {
        if prev != Some(tier) {
            total += model.tier_change_cost(prev, tier, size_gb);
            if let Some(from) = prev {
                total += departure_penalty(model, from, size_gb, days_served)?;
            }
            days_served = 0;
        }
        total += period_cost(model, tier, size_gb, access);
        days_served += DAYS_PER_MONTH;
        prev = Some(tier);
    }
    Ok(total)
}

/// Projected access volumes and read-event count of one object in one
/// billing period — the input row of the compression-aware planner.
///
/// Unlike [`PeriodAccess`], this also carries the number of read *events*:
/// the billing engine charges decompression compute per access, not per
/// GB, so a scheme-aware plan needs both.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PeriodUsage {
    /// GB expected to be read during the period.
    pub read_gb: f64,
    /// GB expected to be written during the period.
    pub write_gb: f64,
    /// Number of read accesses expected during the period (each pays the
    /// scheme's decompression compute).
    pub read_events: f64,
}

impl PeriodUsage {
    /// Convenience constructor.
    pub fn new(read_gb: f64, write_gb: f64, read_events: f64) -> Self {
        PeriodUsage {
            read_gb,
            write_gb,
            read_events,
        }
    }
}

/// A cost-optimal per-period `(tier, scheme)` schedule for one object: the
/// compression-aware counterpart of [`TierSchedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Per billing period: the tier occupied and the index into the
    /// planner's scheme list of the compression scheme stored under.
    pub placements: Vec<(TierId, usize)>,
    /// The projected cost (cents) of the plan, priced exactly as the
    /// day-granular billing engine bills it — including mid-horizon
    /// recompression rewrites.
    pub planned_cost: f64,
}

impl PlacementPlan {
    /// Number of mid-horizon placement changes (tier or scheme).
    pub fn transition_count(&self) -> usize {
        self.placements.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Number of mid-horizon scheme changes that stay on the same tier —
    /// the in-place recompressions the tier-only DP could not price.
    pub fn recompression_count(&self) -> usize {
        self.placements
            .windows(2)
            .filter(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1)
            .count()
    }

    /// Lower the plan onto the billing timeline, resolving scheme indices
    /// against the same `schemes` list the planner searched over.
    pub fn to_placement_schedule(&self, schemes: &[CompressionOption]) -> PlacementSchedule {
        let placement = |(tier, k): (TierId, usize)| Placement {
            tier,
            compression_ratio: schemes[k].ratio,
            decompression_seconds: schemes[k].decompress_seconds,
        };
        let mut schedule = PlacementSchedule::constant(placement(self.placements[0]));
        for (p, w) in self.placements.windows(2).enumerate() {
            if w[0] != w[1] {
                schedule =
                    schedule.with_transition((p as u32 + 1) * DAYS_PER_MONTH, placement(w[1]));
            }
        }
        schedule
    }
}

fn validate_schemes(schemes: &[CompressionOption]) -> Result<(), OptAssignError> {
    if schemes.is_empty() {
        return Err(OptAssignError::InvalidProblem(
            "scheme list must contain at least one compression option".to_string(),
        ));
    }
    for s in schemes {
        if !s.ratio.is_finite() || s.ratio <= 0.0 {
            return Err(OptAssignError::InvalidProblem(format!(
                "scheme {} has invalid ratio {}",
                s.name, s.ratio
            )));
        }
        if !s.decompress_seconds.is_finite() || s.decompress_seconds < 0.0 {
            return Err(OptAssignError::InvalidProblem(format!(
                "scheme {} has invalid decompression time {}",
                s.name, s.decompress_seconds
            )));
        }
    }
    Ok(())
}

/// Cost (cents) of spending one period on `tier` compressed with `scheme`:
/// a full period of storage at the compressed size, read/write volume
/// charges on the compressed bytes (the billing engine divides every
/// event's volume by the segment ratio) and decompression compute per read
/// access.
fn period_usage_cost(
    model: &CostModel,
    tier: TierId,
    stored_gb: f64,
    scheme: &CompressionOption,
    usage: &PeriodUsage,
) -> f64 {
    model.storage_cost(tier, stored_gb, 1.0)
        + model.read_cost(tier, usage.read_gb / scheme.ratio, 1.0)
        + model.write_cost(tier, usage.write_gb / scheme.ratio)
        + model.decompression_cost(scheme.decompress_seconds, usage.read_events)
}

/// Find the cost-minimal per-period `(tier, scheme)` placement plan for
/// one object — [`plan_tier_schedule`] extended with compression in the DP
/// state, closing the standing caveat that the tier-only DP could not
/// price the recompression rewrites the billing engine charges.
pub fn plan_placement_schedule(
    catalog: &TierCatalog,
    size_gb: f64,
    schemes: &[CompressionOption],
    periods: &[PeriodUsage],
    options: &ScheduleOptions,
) -> Result<PlacementPlan, OptAssignError> {
    plan_placement_schedule_with_model(
        &CostModel::new(catalog.clone()),
        size_gb,
        schemes,
        periods,
        options,
        None,
    )
}

/// [`plan_placement_schedule`] over an explicit [`CostModel`] and optional
/// tier restriction — the multi-provider entry point, mirroring
/// [`plan_tier_schedule_with_model`].
///
/// The DP state is `(tier, scheme, period the tier was entered)`: a scheme
/// change that stays on the tier keeps the entry period (billing accrues
/// residency across consecutive same-tier segments), a tier change resets
/// it. Transition costs mirror the billing ledger branch for branch: a
/// mid-horizon tier change pays a read of the bytes resident under the old
/// scheme plus a write of the new stored size (plus egress and any unmet
/// residency on the source-resident bytes); an in-place recompression pays
/// the same read+write rewrite with no egress and no penalty; the day-0
/// segment on the object's current tier charges nothing (the pre-horizon
/// compression state is unknown).
pub fn plan_placement_schedule_with_model(
    model: &CostModel,
    size_gb: f64,
    schemes: &[CompressionOption],
    periods: &[PeriodUsage],
    options: &ScheduleOptions,
    allowed_tiers: Option<&[TierId]>,
) -> Result<PlacementPlan, OptAssignError> {
    let catalog = model.catalog();
    if periods.is_empty() {
        return Err(OptAssignError::InvalidProblem(
            "schedule horizon must cover at least one period".to_string(),
        ));
    }
    if !(size_gb >= 0.0) || !size_gb.is_finite() {
        return Err(OptAssignError::InvalidProblem(format!(
            "invalid object size {size_gb}"
        )));
    }
    validate_schemes(schemes)?;
    for u in periods {
        for (name, v) in [
            ("read_gb", u.read_gb),
            ("write_gb", u.write_gb),
            ("read_events", u.read_events),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(OptAssignError::InvalidProblem(format!(
                    "invalid period usage {name} {v}"
                )));
            }
        }
    }
    let retier_every = options.retier_every.max(1);
    let candidates: Vec<TierId> = match allowed_tiers {
        Some(ids) => ids.to_vec(),
        None => catalog.tier_ids(),
    };
    let mut usable: Vec<TierId> = Vec::with_capacity(candidates.len());
    for id in candidates {
        let tier = catalog
            .tier(id)
            .map_err(|e| OptAssignError::InvalidProblem(e.to_string()))?;
        if tier.ttfb_seconds <= options.latency_threshold_seconds {
            usable.push(id);
        }
    }
    if usable.is_empty() {
        return Err(OptAssignError::InvalidProblem(
            "no tier satisfies the latency threshold".to_string(),
        ));
    }

    // The DP's choice space is the cross product tier × scheme; the entry
    // period in the state tracks the *tier* only, since that is what
    // residency accounting keys on.
    let opts_list: Vec<(TierId, usize)> = usable
        .iter()
        .flat_map(|&t| (0..schemes.len()).map(move |k| (t, k)))
        .collect();
    let n = periods.len();
    let n_opts = opts_list.len();
    let stored: Vec<f64> = opts_list
        .iter()
        .map(|&(_, k)| size_gb / schemes[k].ratio)
        .collect();
    let idx = |o: usize, e: usize| o * n + e;
    let inf = f64::INFINITY;

    // Hoisted per-(option, period) stay costs and the option×option
    // placement-change matrix (the penalty term stays in the loop — it
    // depends on days served, which is state).
    let mut stay_cost = Vec::with_capacity(n_opts * n);
    for (o, &(tier, k)) in opts_list.iter().enumerate() {
        for usage in periods {
            stay_cost.push(period_usage_cost(
                model,
                tier,
                stored[o],
                &schemes[k],
                usage,
            ));
        }
    }
    let mut change_cost = Vec::with_capacity(n_opts * n_opts);
    for (oi, &(ti, _)) in opts_list.iter().enumerate() {
        for (oj, &(tj, _)) in opts_list.iter().enumerate() {
            change_cost.push(if ti != tj {
                // Mid-horizon move: read + egress cover the bytes resident
                // under the old scheme, the write lands the new stored
                // size — exactly the billing ledger's move branch.
                model.read_cost(ti, stored[oi], 1.0)
                    + model.write_cost(tj, stored[oj])
                    + model.egress_cost(Some(ti), tj, stored[oi])
            } else if stored[oi] != stored[oj] {
                // In-place recompression: a physical rewrite, no egress.
                model.read_cost(ti, stored[oi], 1.0) + model.write_cost(tj, stored[oj])
            } else {
                0.0
            });
        }
    }

    let mut cost = vec![inf; n_opts * n];
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(n);

    // Seed: the day-0 placement. Staying on the current tier charges
    // nothing whatever the scheme (the pre-horizon compression state is
    // unknown — billing's legacy convention); moving pays read+write on
    // the destination's stored size, egress and residency penalty on the
    // uncompressed source bytes.
    for (o, &(tier, _)) in opts_list.iter().enumerate() {
        let mut c = model.read_write_cost(options.current_tier, tier, stored[o])
            + model.egress_cost(options.current_tier, tier, size_gb);
        if let Some(from) = options.current_tier {
            if from != tier {
                c += departure_penalty(model, from, size_gb, options.residency_days)?;
            }
        }
        c += stay_cost[o * n];
        cost[idx(o, 0)] = c;
    }
    parents.push(vec![usize::MAX; n_opts * n]);

    for p in 1..n {
        let mut next = vec![inf; n_opts * n];
        let mut parent = vec![usize::MAX; n_opts * n];
        let may_move = (p as u32) % retier_every == 0;
        for (oi, &(ti, _)) in opts_list.iter().enumerate() {
            for e in 0..p {
                let s = idx(oi, e);
                if cost[s] == inf {
                    continue;
                }
                // Keep the placement: entry period unchanged.
                let stay = cost[s] + stay_cost[oi * n + p];
                if stay < next[s] {
                    next[s] = stay;
                    parent[s] = s;
                }
                if !may_move {
                    continue;
                }
                let mut days_served = (p - e) as u32 * DAYS_PER_MONTH;
                if e == 0 && options.current_tier == Some(ti) {
                    days_served += options.residency_days;
                }
                let penalty = departure_penalty(model, ti, stored[oi], days_served)?;
                for (oj, &(tj, _)) in opts_list.iter().enumerate() {
                    if oj == oi {
                        continue;
                    }
                    let tier_change = tj != ti;
                    let mut c = cost[s] + change_cost[oi * n_opts + oj] + stay_cost[oj * n + p];
                    if tier_change {
                        c += penalty;
                    }
                    // A recompression that stays put keeps the tier's
                    // entry period: residency keeps accruing.
                    let d = idx(oj, if tier_change { p } else { e });
                    if c < next[d] {
                        next[d] = c;
                        parent[d] = s;
                    }
                }
            }
        }
        cost = next;
        parents.push(parent);
    }

    let Some((mut best_state, best_cost)) = cost
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, &c)| (i, c))
    else {
        return Err(OptAssignError::InvalidProblem(
            "empty placement-plan state space".to_string(),
        ));
    };
    if !best_cost.is_finite() {
        return Err(OptAssignError::InvalidProblem(
            "no feasible placement plan".to_string(),
        ));
    }
    let mut placements = vec![opts_list[0]; n];
    for p in (0..n).rev() {
        placements[p] = opts_list[best_state / n];
        best_state = parents[p][best_state];
    }
    debug_assert_eq!(best_state, usize::MAX, "walked past the DP root");
    Ok(PlacementPlan {
        placements,
        planned_cost: best_cost,
    })
}

/// Price an *explicit* per-period `(tier, scheme)` placement sequence with
/// the same branch-for-branch billing arithmetic the compression-aware DP
/// optimizes.
pub fn placement_schedule_cost(
    catalog: &TierCatalog,
    size_gb: f64,
    schemes: &[CompressionOption],
    periods: &[PeriodUsage],
    placements: &[(TierId, usize)],
    options: &ScheduleOptions,
) -> Result<f64, OptAssignError> {
    placement_schedule_cost_with_model(
        &CostModel::new(catalog.clone()),
        size_gb,
        schemes,
        periods,
        placements,
        options,
    )
}

/// [`placement_schedule_cost`] over an explicit [`CostModel`].
pub fn placement_schedule_cost_with_model(
    model: &CostModel,
    size_gb: f64,
    schemes: &[CompressionOption],
    periods: &[PeriodUsage],
    placements: &[(TierId, usize)],
    options: &ScheduleOptions,
) -> Result<f64, OptAssignError> {
    if placements.len() != periods.len() || periods.is_empty() {
        return Err(OptAssignError::InvalidProblem(format!(
            "placement sequence length {} does not match horizon {}",
            placements.len(),
            periods.len()
        )));
    }
    validate_schemes(schemes)?;
    let mut prev_tier = options.current_tier;
    let mut days_served = options.residency_days;
    let mut prev_stored = size_gb;
    let mut total = 0.0;
    for (p, (&(tier, k), usage)) in placements.iter().zip(periods).enumerate() {
        let scheme = schemes.get(k).ok_or_else(|| {
            OptAssignError::InvalidProblem(format!(
                "placement for period {p} names scheme {k}, only {} known",
                schemes.len()
            ))
        })?;
        let stored = size_gb / scheme.ratio;
        if prev_tier != Some(tier) {
            if let (true, Some(from)) = (p > 0, prev_tier) {
                total += model.read_cost(from, prev_stored, 1.0) + model.write_cost(tier, stored);
            } else {
                total += model.read_write_cost(prev_tier, tier, stored);
            }
            total += model.egress_cost(prev_tier, tier, prev_stored);
            if let Some(from) = prev_tier {
                total += departure_penalty(model, from, prev_stored, days_served)?;
            }
            days_served = 0;
        } else if p > 0 && stored != prev_stored {
            total += model.read_cost(tier, prev_stored, 1.0) + model.write_cost(tier, stored);
        }
        total += period_usage_cost(model, tier, stored, scheme, usage);
        days_served += DAYS_PER_MONTH;
        prev_tier = Some(tier);
        prev_stored = stored;
    }
    Ok(total)
}

/// Plan cost-optimal per-period tier schedules for every dataset in a
/// catalog, projecting access volumes from the (known or predicted) monthly
/// series — the per-billing-period counterpart of
/// [`ideal_tier_labels`](crate::predictor::ideal_tier_labels).
///
/// `write_volume_fraction` is the fraction of a dataset's size written per
/// write access (writes are appends/updates, not full rewrites);
/// `retier_every` is the re-tiering granularity in periods (1 = every
/// billing period).
#[allow(clippy::too_many_arguments)]
pub fn ideal_tier_schedules(
    catalog: &TierCatalog,
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    from_month: u32,
    horizon_months: u32,
    current_tier: TierId,
    write_volume_fraction: f64,
    retier_every: u32,
) -> Result<Vec<TierSchedule>, OptAssignError> {
    ideal_tier_schedules_with_model(
        &CostModel::new(catalog.clone()),
        None,
        datasets,
        series,
        from_month,
        horizon_months,
        current_tier,
        write_volume_fraction,
        retier_every,
    )
}

/// [`ideal_tier_schedules`] over an explicit [`CostModel`] and an optional
/// tier restriction — the multi-provider entry point: pass a
/// provider-aware model over a merged catalog to plan cross-provider
/// schedules with egress-aware transition costs, and restrict
/// `allowed_tiers` to one provider's merged tier ids to plan a
/// single-provider baseline inside the same cost model.
///
/// Each dataset's DP is independent, so the plans are computed with the
/// deterministic parallel fan-out ([`scope_cloudsim::parallel`]): chunked
/// by dataset index, merged in index order — the result (including which
/// error is reported first) is bit-for-bit the sequential loop's.
#[allow(clippy::too_many_arguments)]
pub fn ideal_tier_schedules_with_model(
    model: &CostModel,
    allowed_tiers: Option<&[TierId]>,
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    from_month: u32,
    horizon_months: u32,
    current_tier: TierId,
    write_volume_fraction: f64,
    retier_every: u32,
) -> Result<Vec<TierSchedule>, OptAssignError> {
    let datasets: Vec<_> = datasets.iter().collect();
    let plans = scope_cloudsim::parallel::parallel_map(&datasets, |_, d| {
        let periods: Vec<PeriodAccess> = (from_month..from_month + horizon_months)
            .map(|m| {
                let acc = series.get(d.id, m);
                PeriodAccess {
                    read_gb: acc.reads * acc.read_fraction * d.size_gb,
                    write_gb: acc.writes * write_volume_fraction * d.size_gb,
                }
            })
            .collect();
        let options = ScheduleOptions {
            current_tier: Some(current_tier),
            latency_threshold_seconds: d.latency_threshold_seconds,
            retier_every,
            ..Default::default()
        };
        plan_tier_schedule_with_model(model, d.size_gb, &periods, &options, allowed_tiers)
    });
    // Index-order collection: the first error surfaced is the one the
    // sequential loop would have hit first.
    plans.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> TierCatalog {
        TierCatalog::azure_hot_cool_archive()
    }

    fn hot() -> TierId {
        catalog().tier_id("Hot").unwrap()
    }
    fn cool() -> TierId {
        catalog().tier_id("Cool").unwrap()
    }
    fn archive() -> TierId {
        catalog().tier_id("Archive").unwrap()
    }

    fn on_hot() -> ScheduleOptions {
        ScheduleOptions {
            current_tier: Some(hot()),
            ..Default::default()
        }
    }

    #[test]
    fn cold_object_moves_off_hot_immediately() {
        let periods = vec![PeriodAccess::default(); 6];
        let s = plan_tier_schedule(&catalog(), 1000.0, &periods, &on_hot()).unwrap();
        assert_eq!(s.tiers.len(), 6);
        assert!(s.tiers.iter().all(|&t| t == archive()));
        assert!(s.planned_cost > 0.0);
    }

    #[test]
    fn hot_object_stays_hot() {
        let periods = vec![PeriodAccess::new(50_000.0, 0.0); 4];
        let s = plan_tier_schedule(&catalog(), 100.0, &periods, &on_hot()).unwrap();
        assert!(s.tiers.iter().all(|&t| t == hot()));
        assert_eq!(s.transition_count(), 0);
    }

    #[test]
    fn cooling_object_is_retiered_mid_horizon() {
        // Heavy reads in the first periods, silence afterwards: the optimal
        // schedule starts Hot and moves to a colder tier once the reads
        // stop — the lifecycle the frozen placement cannot express.
        let mut periods = vec![PeriodAccess::new(20_000.0, 0.0); 2];
        periods.extend(vec![PeriodAccess::default(); 8]);
        let s = plan_tier_schedule(&catalog(), 100.0, &periods, &on_hot()).unwrap();
        assert_eq!(s.tiers[0], hot());
        assert!(s.transition_count() >= 1, "schedule: {:?}", s.tiers);
        assert_ne!(*s.tiers.last().unwrap(), hot());
        // And the schedule strictly beats every frozen placement.
        for tier in catalog().tier_ids() {
            let frozen = schedule_cost(
                &catalog(),
                100.0,
                &periods,
                &vec![tier; periods.len()],
                &on_hot(),
            )
            .unwrap();
            assert!(
                s.planned_cost < frozen - 1e-6,
                "schedule {} vs frozen {:?} {}",
                s.planned_cost,
                tier,
                frozen
            );
        }
    }

    #[test]
    fn residency_penalty_blocks_premature_archive_exit() {
        // One quiet period on Cool: moving to Archive would pay Cool's
        // unmet 30-day residency plus the change cost for no storage gain
        // worth it at this horizon, so the DP stays put.
        let periods = vec![PeriodAccess::default()];
        let opts = ScheduleOptions {
            current_tier: Some(cool()),
            residency_days: 0,
            ..Default::default()
        };
        let s = plan_tier_schedule(&catalog(), 100.0, &periods, &opts).unwrap();
        assert_eq!(s.tiers, vec![cool()]);
        // With the residency window already met pre-horizon, the same
        // object is free to leave and the archive wins.
        let opts_met = ScheduleOptions {
            current_tier: Some(cool()),
            residency_days: 30,
            ..Default::default()
        };
        let s2 = plan_tier_schedule(&catalog(), 100.0, &periods, &opts_met).unwrap();
        assert_eq!(s2.tiers, vec![archive()]);
        assert!(s2.planned_cost < s.planned_cost);
    }

    #[test]
    fn dp_matches_schedule_cost_pricing() {
        // The DP's planned cost must equal re-pricing its own schedule.
        let periods = vec![
            PeriodAccess::new(5000.0, 10.0),
            PeriodAccess::new(100.0, 0.0),
            PeriodAccess::default(),
            PeriodAccess::default(),
        ];
        let s = plan_tier_schedule(&catalog(), 250.0, &periods, &on_hot()).unwrap();
        let repriced = schedule_cost(&catalog(), 250.0, &periods, &s.tiers, &on_hot()).unwrap();
        assert!(
            (s.planned_cost - repriced).abs() < 1e-9 * (1.0 + repriced),
            "dp {} vs repriced {}",
            s.planned_cost,
            repriced
        );
    }

    #[test]
    fn dp_beats_or_matches_every_frozen_placement() {
        for seed_reads in [0.0, 50.0, 5_000.0] {
            let periods: Vec<PeriodAccess> = (0..6)
                .map(|p| PeriodAccess::new(seed_reads / (1 + p) as f64, 0.0))
                .collect();
            let s = plan_tier_schedule(&catalog(), 42.0, &periods, &on_hot()).unwrap();
            for tier in catalog().tier_ids() {
                let frozen =
                    schedule_cost(&catalog(), 42.0, &periods, &[tier; 6], &on_hot()).unwrap();
                assert!(
                    s.planned_cost <= frozen + 1e-9,
                    "reads {seed_reads}: dp {} vs frozen {:?} {}",
                    s.planned_cost,
                    tier,
                    frozen
                );
            }
        }
    }

    #[test]
    fn latency_threshold_excludes_slow_tiers() {
        let periods = vec![PeriodAccess::default(); 3];
        let opts = ScheduleOptions {
            current_tier: Some(hot()),
            latency_threshold_seconds: 1.0, // excludes Archive's 3600 s TTFB
            ..Default::default()
        };
        let s = plan_tier_schedule(&catalog(), 1000.0, &periods, &opts).unwrap();
        assert!(s.tiers.iter().all(|&t| t != archive()));
        assert!(s.tiers.iter().all(|&t| t == cool()), "{:?}", s.tiers);
    }

    #[test]
    fn retier_every_limits_transition_boundaries() {
        // Strong cooling every period, but transitions only allowed every
        // 3 periods: tier changes must sit on multiples of 3.
        let mut periods = vec![PeriodAccess::new(30_000.0, 0.0); 1];
        periods.extend(vec![PeriodAccess::default(); 8]);
        let opts = ScheduleOptions {
            retier_every: 3,
            ..on_hot()
        };
        let s = plan_tier_schedule(&catalog(), 100.0, &periods, &opts).unwrap();
        for (p, w) in s.tiers.windows(2).enumerate() {
            if w[0] != w[1] {
                assert_eq!(
                    (p as u32 + 1) % 3,
                    0,
                    "transition at boundary {} violates granularity",
                    p + 1
                );
            }
        }
        // The unconstrained schedule is at least as cheap.
        let free = plan_tier_schedule(&catalog(), 100.0, &periods, &on_hot()).unwrap();
        assert!(free.planned_cost <= s.planned_cost + 1e-9);
    }

    #[test]
    fn placement_schedule_lowering_sits_on_period_boundaries() {
        let mut periods = vec![PeriodAccess::new(20_000.0, 0.0); 2];
        periods.extend(vec![PeriodAccess::default(); 4]);
        let s = plan_tier_schedule(&catalog(), 100.0, &periods, &on_hot()).unwrap();
        let placement = s.to_placement_schedule();
        assert_eq!(placement.initial().tier, s.tiers[0]);
        for &(day, p) in placement.transitions() {
            assert_eq!(day % DAYS_PER_MONTH, 0);
            assert_eq!(p.tier, s.tiers[(day / DAYS_PER_MONTH) as usize]);
        }
        assert_eq!(placement.transitions().len(), s.transition_count());
    }

    #[test]
    fn multi_provider_dp_crosses_clouds_only_when_egress_pays_for_itself() {
        use scope_cloudsim::ProviderCatalog;
        let providers = ProviderCatalog::azure_s3_gcs();
        let model = CostModel::with_topology(providers.merged_catalog(), providers.topology());
        let azure_hot = providers.merged_tier_id("azure", "Hot").unwrap();
        let azure = providers.provider_id("azure").unwrap();
        let azure_tiers = providers.provider_tier_ids(azure).unwrap();
        // One busy period, then quiet; a 60 s latency SLA rules out the
        // azure and s3 archives, so azure's best cold tier is Cool
        // (1.52 c/GB/mo) while s3/gcs offer 0.4 c/GB/mo.
        let mut periods = vec![PeriodAccess::new(5_000.0, 0.0)];
        periods.extend(vec![PeriodAccess::default(); 5]);
        let opts = ScheduleOptions {
            current_tier: Some(azure_hot),
            latency_threshold_seconds: 60.0,
            ..Default::default()
        };
        let cross = plan_tier_schedule_with_model(&model, 100.0, &periods, &opts, None).unwrap();
        let home_only =
            plan_tier_schedule_with_model(&model, 100.0, &periods, &opts, Some(&azure_tiers))
                .unwrap();
        // At ~2 c/GB interconnect egress the 1.12 c/GB/mo saving over the
        // remaining periods repays the move: the plan leaves azure…
        let topo = providers.topology();
        assert!(
            cross
                .tiers
                .iter()
                .any(|&t| topo.provider_of(t) != Some(azure)),
            "cross plan stayed home: {:?}",
            cross.tiers
        );
        assert!(cross.planned_cost < home_only.planned_cost - 1e-6);
        // …and the restricted plan never does.
        assert!(home_only
            .tiers
            .iter()
            .all(|&t| topo.provider_of(t) == Some(azure)));

        // At public-internet egress (×10) crossing no longer pays: the
        // unrestricted optimum coincides with the azure-only plan.
        let expensive = providers.clone().with_egress_scale(10.0).unwrap();
        let model_x = CostModel::with_topology(expensive.merged_catalog(), expensive.topology());
        let stay = plan_tier_schedule_with_model(&model_x, 100.0, &periods, &opts, None).unwrap();
        assert!(stay
            .tiers
            .iter()
            .all(|&t| topo.provider_of(t) == Some(azure)));
        assert!((stay.planned_cost - home_only.planned_cost).abs() < 1e-9);
    }

    #[test]
    fn allowed_tiers_restriction_validates_ids() {
        let periods = vec![PeriodAccess::default(); 2];
        let model = CostModel::new(catalog());
        let bad = [TierId(99)];
        assert!(
            plan_tier_schedule_with_model(&model, 1.0, &periods, &on_hot(), Some(&bad)).is_err()
        );
        // Restricting to a single tier forces a frozen schedule on it.
        let only_cool = [cool()];
        let s = plan_tier_schedule_with_model(&model, 1.0, &periods, &on_hot(), Some(&only_cool))
            .unwrap();
        assert!(s.tiers.iter().all(|&t| t == cool()));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(plan_tier_schedule(&catalog(), 1.0, &[], &on_hot()).is_err());
        assert!(
            plan_tier_schedule(&catalog(), f64::NAN, &[PeriodAccess::default()], &on_hot())
                .is_err()
        );
        let impossible = ScheduleOptions {
            latency_threshold_seconds: 1e-9,
            ..on_hot()
        };
        assert!(
            plan_tier_schedule(&catalog(), 1.0, &[PeriodAccess::default()], &impossible).is_err()
        );
        assert!(
            schedule_cost(&catalog(), 1.0, &[PeriodAccess::default()], &[], &on_hot()).is_err()
        );
    }

    fn none_and_gzip() -> Vec<CompressionOption> {
        vec![
            CompressionOption::none(),
            CompressionOption::new("gzip", 4.0, 2.0),
        ]
    }

    /// Catalog whose compute rate makes decompression CPU a first-class
    /// cost: heavy-read periods then favor "none", quiet periods favor
    /// compressed storage, so optimal plans recompress mid-horizon.
    fn compute_heavy_catalog() -> TierCatalog {
        let mut c = catalog();
        c.compute_cost_cents_per_second = 50.0;
        c
    }

    #[test]
    fn compression_dp_with_none_only_matches_the_tier_dp() {
        let periods = vec![
            PeriodAccess::new(5000.0, 10.0),
            PeriodAccess::new(100.0, 0.0),
            PeriodAccess::default(),
            PeriodAccess::default(),
        ];
        let usage: Vec<PeriodUsage> = periods
            .iter()
            .map(|a| PeriodUsage::new(a.read_gb, a.write_gb, 0.0))
            .collect();
        let tiers_only = plan_tier_schedule(&catalog(), 250.0, &periods, &on_hot()).unwrap();
        let plan = plan_placement_schedule(
            &catalog(),
            250.0,
            &[CompressionOption::none()],
            &usage,
            &on_hot(),
        )
        .unwrap();
        assert_eq!(
            plan.placements.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            tiers_only.tiers
        );
        assert!(plan.placements.iter().all(|&(_, k)| k == 0));
        assert!(
            (plan.planned_cost - tiers_only.planned_cost).abs()
                < 1e-9 * (1.0 + tiers_only.planned_cost),
            "scheme dp {} vs tier dp {}",
            plan.planned_cost,
            tiers_only.planned_cost
        );
    }

    #[test]
    fn compression_dp_matches_placement_pricer() {
        let usage = vec![
            PeriodUsage::new(300.0, 30.0, 3.0),
            PeriodUsage::new(300.0, 30.0, 3.0),
            PeriodUsage::default(),
            PeriodUsage::default(),
            PeriodUsage::default(),
            PeriodUsage::default(),
        ];
        let catalog = compute_heavy_catalog();
        let schemes = none_and_gzip();
        let plan = plan_placement_schedule(&catalog, 100.0, &schemes, &usage, &on_hot()).unwrap();
        let repriced = placement_schedule_cost(
            &catalog,
            100.0,
            &schemes,
            &usage,
            &plan.placements,
            &on_hot(),
        )
        .unwrap();
        assert!(
            (plan.planned_cost - repriced).abs() < 1e-9 * (1.0 + repriced),
            "dp {} vs repriced {}",
            plan.planned_cost,
            repriced
        );
    }

    /// The recompression-caveat regression test: an optimal plan that
    /// recompresses *in place* mid-horizon is billed exactly what the DP
    /// planned — the tier-only DP could not even express this schedule.
    #[test]
    fn in_place_recompression_plan_matches_billed_cost() {
        use scope_cloudsim::timeline::BillingEvent;
        use scope_cloudsim::{BillingSimulator, ObjectSpec};

        let catalog = compute_heavy_catalog();
        let schemes = none_and_gzip();
        // Two heavy-read periods (decompression CPU makes gzip a loss),
        // then four quiet ones (compressed storage wins, and the rewrite
        // cost is trivially repaid).
        let busy = PeriodUsage::new(300.0, 30.0, 3.0);
        let usage = vec![
            busy,
            busy,
            PeriodUsage::default(),
            PeriodUsage::default(),
            PeriodUsage::default(),
            PeriodUsage::default(),
        ];
        let only_hot = [hot()];
        let model = CostModel::new(catalog.clone());
        let plan = plan_placement_schedule_with_model(
            &model,
            100.0,
            &schemes,
            &usage,
            &on_hot(),
            Some(&only_hot),
        )
        .unwrap();
        assert!(
            plan.recompression_count() >= 1,
            "plan never recompresses: {:?}",
            plan.placements
        );
        assert_eq!(
            plan.placements[0],
            (hot(), 0),
            "busy start should stay uncompressed"
        );
        assert_eq!(plan.placements[5].1, 1, "quiet tail should be compressed");

        // Replay the plan through the billing engine with a trace matching
        // the projected usage: per busy period, three reads of a third of
        // the volume each plus one write.
        let mut sim = BillingSimulator::new(catalog);
        sim.place_scheduled(
            ObjectSpec::new("obj", 100.0).on_tier(hot()),
            plan.to_placement_schedule(&schemes),
        )
        .unwrap();
        let mut events = Vec::new();
        for (p, u) in usage.iter().enumerate() {
            let day = p as u32 * DAYS_PER_MONTH;
            for i in 0..u.read_events as u32 {
                events.push(BillingEvent::read(
                    "obj",
                    day + i,
                    u.read_gb / u.read_events,
                ));
            }
            if u.write_gb > 0.0 {
                events.push(BillingEvent::write("obj", day + 5, u.write_gb));
            }
        }
        let report = sim
            .run_days(usage.len() as u32 * DAYS_PER_MONTH, &events)
            .unwrap();
        let billed = report.total();
        assert!(
            (plan.planned_cost - billed).abs() < 1e-9 * (1.0 + billed),
            "planned {} vs billed {}",
            plan.planned_cost,
            billed
        );
    }

    /// A mid-horizon move that recompresses in flight: the billing ledger
    /// reads/egresses the bytes resident under the old scheme but writes
    /// the new stored size, and the DP prices exactly that.
    #[test]
    fn move_with_recompression_matches_billed_cost() {
        use scope_cloudsim::timeline::BillingEvent;
        use scope_cloudsim::{BillingSimulator, ObjectSpec};

        let catalog = compute_heavy_catalog();
        let schemes = none_and_gzip();
        let busy = PeriodUsage::new(10_000.0, 0.0, 3.0);
        let mut usage = vec![busy];
        usage.extend(vec![PeriodUsage::default(); 5]);
        let opts = ScheduleOptions {
            current_tier: Some(hot()),
            latency_threshold_seconds: 60.0, // rules out Archive
            ..Default::default()
        };
        let plan = plan_placement_schedule(&catalog, 100.0, &schemes, &usage, &opts).unwrap();
        assert_eq!(plan.placements[0], (hot(), 0));
        assert!(
            plan.placements
                .windows(2)
                .any(|w| w[0].0 != w[1].0 && w[0].1 != w[1].1),
            "no simultaneous move + recompression: {:?}",
            plan.placements
        );
        assert_eq!(*plan.placements.last().unwrap(), (cool(), 1));

        let mut sim = BillingSimulator::new(catalog);
        sim.place_scheduled(
            ObjectSpec::new("obj", 100.0).on_tier(hot()),
            plan.to_placement_schedule(&schemes),
        )
        .unwrap();
        let mut events = Vec::new();
        for (p, u) in usage.iter().enumerate() {
            let day = p as u32 * DAYS_PER_MONTH;
            for i in 0..u.read_events as u32 {
                events.push(BillingEvent::read(
                    "obj",
                    day + i,
                    u.read_gb / u.read_events,
                ));
            }
        }
        let report = sim
            .run_days(usage.len() as u32 * DAYS_PER_MONTH, &events)
            .unwrap();
        let billed = report.total();
        assert!(
            (plan.planned_cost - billed).abs() < 1e-9 * (1.0 + billed),
            "planned {} vs billed {}",
            plan.planned_cost,
            billed
        );
    }

    #[test]
    fn placement_planner_and_pricer_validate_inputs() {
        let usage = vec![PeriodUsage::default(); 2];
        let schemes = none_and_gzip();
        // Empty scheme list.
        assert!(plan_placement_schedule(&catalog(), 1.0, &[], &usage, &on_hot()).is_err());
        // Non-finite usage.
        let bad_usage = vec![PeriodUsage::new(f64::NAN, 0.0, 0.0)];
        assert!(plan_placement_schedule(&catalog(), 1.0, &schemes, &bad_usage, &on_hot()).is_err());
        // Invalid scheme ratio.
        let bad_scheme = vec![CompressionOption::new("broken", 0.0, 0.0)];
        assert!(plan_placement_schedule(&catalog(), 1.0, &bad_scheme, &usage, &on_hot()).is_err());
        // Pricer: length mismatch and out-of-range scheme index.
        assert!(
            placement_schedule_cost(&catalog(), 1.0, &schemes, &usage, &[], &on_hot()).is_err()
        );
        assert!(placement_schedule_cost(
            &catalog(),
            1.0,
            &schemes,
            &usage,
            &[(hot(), 99), (hot(), 99)],
            &on_hot(),
        )
        .is_err());
    }

    #[test]
    fn ideal_tier_schedules_cover_every_dataset() {
        use scope_workload::{EnterpriseOptions, EnterpriseWorkload};
        let w = EnterpriseWorkload::generate(EnterpriseOptions {
            n_datasets: 60,
            history_months: 6,
            future_months: 4,
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        let catalog = catalog();
        let hot = catalog.tier_id("Hot").unwrap();
        let schedules =
            ideal_tier_schedules(&catalog, &w.catalog, &w.series, 6, 4, hot, 0.05, 1).unwrap();
        assert_eq!(schedules.len(), 60);
        assert!(schedules.iter().all(|s| s.tiers.len() == 4));
        // The lake cools over time: at least one dataset is re-tiered
        // mid-horizon rather than frozen.
        assert!(schedules.iter().any(|s| s.transition_count() > 0));
    }
}
