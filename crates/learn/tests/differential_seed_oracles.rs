//! Differential pins for the seed-shaped training oracles in
//! `scope_learn::reference` that previously were only exercised by
//! `train_bench`: the fast paths must agree with
//! `fit_tree_regressor_seed`, `fit_forest_regressor_seed` and
//! `fit_forest_classifier_seed`, and the oracles themselves must be
//! deterministic.
//!
//! The fast and seed split scorers differ by float reassociation only, so
//! two candidate splits scoring within rounding of each other may break
//! ties differently. The synthetic datasets below have well-separated
//! split points, where both builders must pick identical structure and the
//! predictions agree to tight tolerance.

use scope_learn::forest::ForestParams;
use scope_learn::reference::{
    fit_forest_classifier_seed, fit_forest_regressor_seed, fit_tree_regressor_seed,
};
use scope_learn::tree::TreeParams;
use scope_learn::{
    Classifier, DecisionTreeRegressor, RandomForestClassifier, RandomForestRegressor, Regressor,
};

/// Deterministic pseudo-random stream (splitmix64) so the datasets are
/// reproducible without pulling the rand shim into the comparison.
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A regression dataset with clean, well-separated split structure:
/// piecewise-constant target in feature 0 plus a small slope in feature 1.
fn regression_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = Mix(seed);
    let mut features = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let a = rng.next_f64() * 10.0;
        let b = rng.next_f64() * 4.0;
        let c = rng.next_f64();
        let step = if a < 3.0 {
            -5.0
        } else if a < 7.0 {
            2.0
        } else {
            9.0
        };
        targets.push(step + 0.5 * b);
        features.push(vec![a, b, c]);
    }
    (features, targets)
}

/// A cleanly separable 3-class dataset keyed off feature 0.
fn classification_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = Mix(seed);
    let mut features = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a = rng.next_f64() * 9.0;
        let b = rng.next_f64();
        labels.push((a / 3.0) as usize);
        features.push(vec![a, b]);
    }
    (features, labels)
}

#[test]
fn tree_regressor_fast_path_matches_seed_oracle() {
    let (features, targets) = regression_data(240, 11);
    let params = TreeParams {
        max_depth: 8,
        ..TreeParams::default()
    };
    let oracle = fit_tree_regressor_seed(&features, &targets, params, 7).unwrap();
    let fast = DecisionTreeRegressor::fit_seeded(&features, &targets, params, 7).unwrap();
    for (o, f) in oracle
        .predict(&features)
        .iter()
        .zip(fast.predict(&features))
    {
        assert!((o - f).abs() < 1e-9, "oracle {o} vs fast {f}");
    }
}

#[test]
fn tree_regressor_seed_oracle_is_deterministic() {
    let (features, targets) = regression_data(160, 23);
    let params = TreeParams::default();
    let a = fit_tree_regressor_seed(&features, &targets, params, 99).unwrap();
    let b = fit_tree_regressor_seed(&features, &targets, params, 99).unwrap();
    assert_eq!(a, b);
}

#[test]
fn forest_regressor_fast_path_matches_seed_oracle() {
    let (features, targets) = regression_data(200, 5);
    let params = ForestParams {
        n_trees: 8,
        seed: 31,
        ..ForestParams::default()
    };
    let oracle = fit_forest_regressor_seed(&features, &targets, params).unwrap();
    let fast = RandomForestRegressor::fit(&features, &targets, params).unwrap();
    for (o, f) in oracle
        .predict(&features)
        .iter()
        .zip(fast.predict(&features))
    {
        assert!((o - f).abs() < 1e-9, "oracle {o} vs fast {f}");
    }
}

#[test]
fn forest_classifier_fast_path_matches_seed_oracle() {
    let (features, labels) = classification_data(220, 17);
    let params = ForestParams {
        n_trees: 9,
        seed: 13,
        ..ForestParams::default()
    };
    let oracle = fit_forest_classifier_seed(&features, &labels, params).unwrap();
    let fast = RandomForestClassifier::fit(&features, &labels, params).unwrap();
    assert_eq!(oracle.predict(&features), fast.predict(&features));
    // Clean separation: the ensemble must actually have learned the bands.
    let errors = oracle
        .predict(&features)
        .iter()
        .zip(&labels)
        .filter(|(p, l)| p != l)
        .count();
    assert!(
        errors * 20 < labels.len(),
        "{errors} errors on the train set"
    );
}

#[test]
fn forest_seed_oracles_are_deterministic() {
    let (features, targets) = regression_data(120, 41);
    let params = ForestParams {
        n_trees: 5,
        seed: 77,
        ..ForestParams::default()
    };
    let a = fit_forest_regressor_seed(&features, &targets, params).unwrap();
    let b = fit_forest_regressor_seed(&features, &targets, params).unwrap();
    assert_eq!(a, b);

    let (cf, cl) = classification_data(130, 43);
    let c = fit_forest_classifier_seed(&cf, &cl, params).unwrap();
    let d = fit_forest_classifier_seed(&cf, &cl, params).unwrap();
    assert_eq!(c.predict(&cf), d.predict(&cf));
}
