//! Gradient-boosted regression trees (the "XGBoost" rows of Tables VI–VIII).
//!
//! Standard least-squares gradient boosting: each stage fits a shallow CART
//! regression tree to the residuals of the current ensemble and is added
//! with a learning-rate shrinkage factor.
//!
//! The stages themselves are inherently sequential (each fits the previous
//! ensemble's residuals), but the fast path amortizes everything around
//! them: the feature columns are presorted **once** and reused by every
//! stage's tree build (only the targets change between stages, never the
//! feature order), and the per-stage ensemble update fans its row
//! predictions out over [`scope_cloudsim::parallel_map`] — merged in index
//! order, so the fitted model is bit-for-bit identical for any thread count
//! and to the sequential [`crate::reference`] oracle.

use crate::data::ColumnMatrix;
use crate::error::LearnError;
use crate::tree::{presort_columns, DecisionTreeRegressor, TreeParams};
use crate::Regressor;
use scope_cloudsim::parallel::{default_threads, parallel_map_with_threads};

/// Hyper-parameters for gradient boosting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostingParams {
    /// Number of boosting stages.
    pub n_estimators: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Per-stage tree parameters (typically shallow, depth 3–4).
    pub tree: TreeParams,
}

impl Default for BoostingParams {
    fn default() -> Self {
        BoostingParams {
            n_estimators: 100,
            learning_rate: 0.1,
            tree: TreeParams {
                max_depth: 3,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
            },
        }
    }
}

/// Gradient-boosted regression tree ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoostingRegressor {
    base_prediction: f64,
    learning_rate: f64,
    stages: Vec<DecisionTreeRegressor>,
}

impl GradientBoostingRegressor {
    /// Fit the ensemble.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        params: BoostingParams,
    ) -> Result<Self, LearnError> {
        Self::fit_with_threads(features, targets, params, default_threads())
    }

    /// [`GradientBoostingRegressor::fit`] with an explicit worker-thread
    /// count for the per-stage prediction fan-out (1 = sequential); the
    /// fitted model is thread-count independent.
    pub fn fit_with_threads(
        features: &[Vec<f64>],
        targets: &[f64],
        params: BoostingParams,
        threads: usize,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let cols = ColumnMatrix::from_rows(features)?;
        Self::fit_columns_with_threads(&cols, targets, params, threads)
    }

    /// Fit on a shared column-major matrix.
    pub fn fit_columns(
        cols: &ColumnMatrix,
        targets: &[f64],
        params: BoostingParams,
    ) -> Result<Self, LearnError> {
        Self::fit_columns_with_threads(cols, targets, params, default_threads())
    }

    /// [`GradientBoostingRegressor::fit_columns`] with an explicit thread
    /// count.
    pub fn fit_columns_with_threads(
        cols: &ColumnMatrix,
        targets: &[f64],
        params: BoostingParams,
        threads: usize,
    ) -> Result<Self, LearnError> {
        if params.n_estimators == 0 {
            return Err(LearnError::InvalidHyperParameter(
                "n_estimators must be > 0",
            ));
        }
        if !(params.learning_rate > 0.0 && params.learning_rate <= 1.0) {
            return Err(LearnError::InvalidHyperParameter(
                "learning_rate must be in (0, 1]",
            ));
        }
        if cols.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if cols.n_rows() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: cols.n_rows(),
                targets: targets.len(),
            });
        }
        let base_prediction = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut current: Vec<f64> = vec![base_prediction; targets.len()];
        let mut stages = Vec::with_capacity(params.n_estimators);
        // One presort shared by every stage: the feature order never
        // changes between stages, only the residual targets do.
        let presorted = presort_columns(cols);
        let rows: Vec<u32> = (0..cols.n_rows() as u32).collect();
        for stage_idx in 0..params.n_estimators {
            let residuals: Vec<f64> = targets.iter().zip(&current).map(|(t, c)| t - c).collect();
            // Stop early if the fit is already (numerically) perfect.
            if residuals.iter().all(|r| r.abs() < 1e-12) {
                break;
            }
            let tree = DecisionTreeRegressor::fit_columns_presorted(
                cols,
                &residuals,
                params.tree,
                stage_idx as u64 + 1,
                &presorted,
            );
            // Batched ensemble update: each row's contribution is computed
            // exactly as the sequential loop would, merged in row order.
            let deltas = parallel_map_with_threads(&rows, threads, |_, &r| {
                params.learning_rate * tree.root().predict_by(&|f| cols.value(r as usize, f))
            });
            for (c, d) in current.iter_mut().zip(deltas) {
                *c += d;
            }
            stages.push(tree);
        }
        Ok(GradientBoostingRegressor {
            base_prediction,
            learning_rate: params.learning_rate,
            stages,
        })
    }

    /// Fit with default parameters.
    pub fn fit_default(features: &[Vec<f64>], targets: &[f64]) -> Result<Self, LearnError> {
        Self::fit(features, targets, BoostingParams::default())
    }

    /// Assemble an ensemble from pre-built stages (reference builders).
    pub(crate) fn from_parts(
        base_prediction: f64,
        learning_rate: f64,
        stages: Vec<DecisionTreeRegressor>,
    ) -> Self {
        GradientBoostingRegressor {
            base_prediction,
            learning_rate,
            stages,
        }
    }

    /// Number of boosting stages actually fit (may be fewer than requested
    /// if the residuals vanished early).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

impl Regressor for GradientBoostingRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        let mut pred = self.base_prediction;
        for tree in &self.stages {
            pred += self.learning_rate * tree.predict_one(features);
        }
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mae, r2_score};

    fn nonlinear(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..n {
            let x: Vec<f64> = (0..3).map(|_| next() * 10.0).collect();
            let y = x[0].sin() * 5.0 + x[1] * 0.5 + (x[2] * 0.3).cos();
            features.push(x);
            targets.push(y);
        }
        (features, targets)
    }

    #[test]
    fn boosting_fits_nonlinear_function() {
        let (f, t) = nonlinear(400, 21);
        let (ft, tt) = nonlinear(150, 99);
        let gbt = GradientBoostingRegressor::fit_default(&f, &t).unwrap();
        let preds: Vec<f64> = ft.iter().map(|x| gbt.predict_one(x)).collect();
        assert!(
            r2_score(&tt, &preds) > 0.7,
            "r2 = {}",
            r2_score(&tt, &preds)
        );
    }

    #[test]
    fn more_stages_reduce_training_error() {
        let (f, t) = nonlinear(200, 5);
        let short = GradientBoostingRegressor::fit(
            &f,
            &t,
            BoostingParams {
                n_estimators: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let long = GradientBoostingRegressor::fit(
            &f,
            &t,
            BoostingParams {
                n_estimators: 150,
                ..Default::default()
            },
        )
        .unwrap();
        let p_short: Vec<f64> = f.iter().map(|x| short.predict_one(x)).collect();
        let p_long: Vec<f64> = f.iter().map(|x| long.predict_one(x)).collect();
        assert!(mae(&t, &p_long) < mae(&t, &p_short));
    }

    #[test]
    fn boosting_is_thread_count_independent() {
        let (f, t) = nonlinear(150, 9);
        let params = BoostingParams {
            n_estimators: 25,
            ..Default::default()
        };
        let sequential = GradientBoostingRegressor::fit_with_threads(&f, &t, params, 1).unwrap();
        for threads in [2, 5, 8] {
            let parallel =
                GradientBoostingRegressor::fit_with_threads(&f, &t, params, threads).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn constant_target_stops_early() {
        let f: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let t = vec![3.5; 30];
        let gbt = GradientBoostingRegressor::fit_default(&f, &t).unwrap();
        assert_eq!(gbt.n_stages(), 0);
        assert_eq!(gbt.predict_one(&[100.0]), 3.5);
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let f = vec![vec![1.0]];
        let t = vec![1.0];
        assert!(GradientBoostingRegressor::fit(
            &f,
            &t,
            BoostingParams {
                n_estimators: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GradientBoostingRegressor::fit(
            &f,
            &t,
            BoostingParams {
                learning_rate: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GradientBoostingRegressor::fit(
            &f,
            &t,
            BoostingParams {
                learning_rate: 1.5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(GradientBoostingRegressor::fit_default(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(GradientBoostingRegressor::fit_default(&[], &[]).is_err());
    }
}
