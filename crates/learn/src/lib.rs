//! # scope-learn
//!
//! From-scratch machine-learning substrate for the SCOPe reproduction.
//!
//! The paper trains scikit-learn / XGBoost style models — Random Forests,
//! gradient-boosted trees, SVR, a small MLP and an "averaging" baseline — to
//! (a) predict compression ratio and decompression speed per partition
//! (COMPREDICT, §V) and (b) predict the cost-optimal storage tier for the
//! next billing period (§IV-C, Table III). No third-party ML crates are in
//! the allowed dependency set, so this crate implements the model families
//! from scratch:
//!
//! * [`tree`] — CART decision trees (regression and classification),
//! * [`forest`] — random forests built on bagged CART trees,
//! * [`boosting`] — gradient-boosted regression trees (the "XGBoost" row),
//! * [`linear`] — ridge regression (linear baseline / SVR stand-in),
//! * [`knn`] — k-nearest-neighbour regression (kernel-method stand-in),
//! * [`mlp`] — a single-hidden-layer perceptron trained with SGD,
//! * [`metrics`] — MAE / MAPE / R², accuracy, precision, recall, F1 and
//!   confusion matrices (the exact metrics reported in Tables III and V–VIII).
//!
//! All models implement the [`Regressor`] or [`Classifier`] trait so that the
//! experiment drivers can sweep model families uniformly.
//!
//! # The learning fast path (PR 5)
//!
//! Training runs on a **column-major dataset view**:
//! [`data::ColumnMatrix`] stores features feature-major (one contiguous
//! `f64` column per feature), built once and shared by every model trained
//! on the same rows. On top of it:
//!
//! * **Presort CART** — [`tree`] sorts each feature once per tree and
//!   stably partitions the per-feature position arrays down the recursion;
//!   split scores come from running prefix statistics (`O(1)` per
//!   candidate for variance, `O(classes)` for Gini) instead of per-node
//!   re-sorts and per-split re-scans.
//! * **Bagging by index** — forests draw bootstrap *row indices* and gather
//!   flat column buffers; no per-row `Vec` clones.
//! * **Deterministic parallel fan-out** — forest trees (and boosting's
//!   per-stage ensemble updates) run through
//!   `scope_cloudsim::parallel_map`: chunked by index, merged in index
//!   order, bit-for-bit identical for any thread count.
//! * **Bounded k-NN selection** — queries keep a max-heap of the k best
//!   neighbours instead of fully sorting all training distances.
//!
//! # The reference-oracle pattern
//!
//! The seed-shaped implementations (per-node sorts, clone-based bootstraps,
//! sequential loops, full k-NN sorts) are preserved in [`reference`]. Both
//! families score splits through the *same* code in [`tree`], so the fast
//! path is bit-for-bit equal to the reference by construction — tree
//! structures, forest votes, boosting predictions and k-NN regressions are
//! pinned against the oracles on randomized instances in
//! `tests/differential_learn.rs`, and the `train_bench` bin measures the
//! speedup against exactly the reference cost (equality asserted in-bin).

#![warn(missing_docs)]

pub mod boosting;
pub mod data;
pub mod error;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod reference;
pub mod tree;

pub use boosting::GradientBoostingRegressor;
pub use data::{train_test_split, ColumnMatrix, Dataset, Standardizer};
pub use error::LearnError;
pub use forest::{RandomForestClassifier, RandomForestRegressor};
pub use knn::KnnRegressor;
pub use linear::RidgeRegression;
pub use metrics::{
    confusion_matrix, f1_score, mae, mape, precision, r2_score, recall, ConfusionMatrix,
};
pub use mlp::MlpRegressor;
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor};

/// A trained regression model mapping a feature vector to a real value.
pub trait Regressor {
    /// Predict the target for a single feature vector.
    fn predict_one(&self, features: &[f64]) -> f64;

    /// Predict targets for a batch of feature vectors.
    fn predict(&self, features: &[Vec<f64>]) -> Vec<f64> {
        features.iter().map(|f| self.predict_one(f)).collect()
    }

    /// Predict targets for a batch stored column-major. Always equal to
    /// mapping [`Regressor::predict_one`] over the rows; models override it
    /// with allocation-free (and, for forests, parallel) walks.
    fn predict_columns(&self, features: &ColumnMatrix) -> Vec<f64> {
        let mut buf = Vec::with_capacity(features.n_cols());
        (0..features.n_rows())
            .map(|r| {
                features.row_to(r, &mut buf);
                self.predict_one(&buf)
            })
            .collect()
    }
}

/// A trained classifier mapping a feature vector to a class label.
pub trait Classifier {
    /// Predict the class label for a single feature vector.
    fn predict_one(&self, features: &[f64]) -> usize;

    /// Predict labels for a batch of feature vectors.
    fn predict(&self, features: &[Vec<f64>]) -> Vec<usize> {
        features.iter().map(|f| self.predict_one(f)).collect()
    }

    /// Predict labels for a batch stored column-major. Always equal to
    /// mapping [`Classifier::predict_one`] over the rows; models override
    /// it with allocation-free (and, for forests, parallel) walks.
    fn predict_columns(&self, features: &ColumnMatrix) -> Vec<usize> {
        let mut buf = Vec::with_capacity(features.n_cols());
        (0..features.n_rows())
            .map(|r| {
                features.row_to(r, &mut buf);
                self.predict_one(&buf)
            })
            .collect()
    }
}

/// The trivial "Averaging" baseline of Tables VI–VIII: always predicts the
/// mean of the training targets.
#[derive(Debug, Clone)]
pub struct MeanRegressor {
    mean: f64,
}

impl MeanRegressor {
    /// Fit by computing the mean of `targets`.
    pub fn fit(targets: &[f64]) -> Result<Self, LearnError> {
        if targets.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        Ok(MeanRegressor { mean })
    }

    /// The constant value this model predicts.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Regressor for MeanRegressor {
    fn predict_one(&self, _features: &[f64]) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_regressor_predicts_training_mean() {
        let m = MeanRegressor::fit(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.predict_one(&[100.0, -5.0]), 2.5);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.predict(&[vec![0.0], vec![1.0]]), vec![2.5, 2.5]);
    }

    #[test]
    fn mean_regressor_rejects_empty_targets() {
        assert!(MeanRegressor::fit(&[]).is_err());
    }
}
