//! Random forests: bagged ensembles of CART trees.
//!
//! The paper finds the Random Forest to be the best-performing model both
//! for the compression predictor (Tables VI–VIII) and the tier predictor
//! (Table III, F1 > 0.96). The implementation here uses bootstrap sampling
//! and per-split feature subsampling, with deterministic seeding so that
//! experiment outputs are reproducible.

use crate::error::LearnError;
use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};
use crate::{Classifier, Regressor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Hyper-parameters for random forests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree parameters. If `max_features` is `None` it is defaulted to
    /// `sqrt(width)` for classification and `width / 3` for regression, the
    /// conventional random-forest defaults.
    pub tree: TreeParams,
    /// Seed controlling bootstrap sampling and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 50,
            tree: TreeParams::default(),
            seed: 42,
        }
    }
}

fn default_max_features(width: usize, classification: bool) -> usize {
    if classification {
        ((width as f64).sqrt().round() as usize).max(1)
    } else {
        (width / 3).max(1)
    }
}

/// Random forest regressor (average of tree predictions).
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Fit a forest with the given parameters.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        params: ForestParams,
    ) -> Result<Self, LearnError> {
        if params.n_trees == 0 {
            return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
        }
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let width = features[0].len();
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some(default_max_features(width, false));
        }
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            trees.push(DecisionTreeRegressor::fit_bootstrap(
                features,
                targets,
                tree_params,
                &mut rng,
            )?);
        }
        Ok(RandomForestRegressor { trees })
    }

    /// Fit with default parameters and the given seed.
    pub fn fit_default(
        features: &[Vec<f64>],
        targets: &[f64],
        seed: u64,
    ) -> Result<Self, LearnError> {
        Self::fit(
            features,
            targets,
            ForestParams {
                seed,
                ..Default::default()
            },
        )
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForestRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_one(features)).sum();
        sum / self.trees.len() as f64
    }
}

/// Random forest classifier (majority vote).
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Fit a forest classifier with the given parameters.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        params: ForestParams,
    ) -> Result<Self, LearnError> {
        if params.n_trees == 0 {
            return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
        }
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if features.len() != labels.len() {
            return Err(LearnError::LengthMismatch {
                features: features.len(),
                targets: labels.len(),
            });
        }
        let width = features[0].len();
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some(default_max_features(width, true));
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            trees.push(DecisionTreeClassifier::fit_bootstrap(
                features,
                labels,
                tree_params,
                &mut rng,
            )?);
        }
        Ok(RandomForestClassifier { trees, n_classes })
    }

    /// Fit with default parameters and the given seed.
    pub fn fit_default(
        features: &[Vec<f64>],
        labels: &[usize],
        seed: u64,
    ) -> Result<Self, LearnError> {
        Self::fit(
            features,
            labels,
            ForestParams {
                seed,
                ..Default::default()
            },
        )
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class vote fractions for one feature vector (a calibrated-ish
    /// probability estimate used when a score is needed instead of a label).
    pub fn predict_proba_one(&self, features: &[f64]) -> Vec<f64> {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            let c = Classifier::predict_one(t, features).min(self.n_classes - 1);
            votes[c] += 1;
        }
        votes
            .into_iter()
            .map(|v| v as f64 / self.trees.len() as f64)
            .collect()
    }
}

impl Classifier for RandomForestClassifier {
    fn predict_one(&self, features: &[f64]) -> usize {
        let proba = self.predict_proba_one(features);
        proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{confusion_matrix, f1_score, mae, r2_score};

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Smooth nonlinear target; deterministic pseudo-random features.
        let mut state = seed | 1;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut features = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..4).map(|_| next()).collect();
            let y = 10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5).powi(2)
                + 10.0 * x[3];
            features.push(x);
            targets.push(y);
        }
        (features, targets)
    }

    #[test]
    fn forest_regressor_beats_mean_baseline() {
        let (f, t) = friedman_like(300, 3);
        let (ft, tt) = friedman_like(100, 77);
        let forest = RandomForestRegressor::fit_default(&f, &t, 1).unwrap();
        let preds: Vec<f64> = ft.iter().map(|x| forest.predict_one(x)).collect();
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let mean_preds = vec![mean; tt.len()];
        assert!(mae(&tt, &preds) < mae(&tt, &mean_preds));
        assert!(
            r2_score(&tt, &preds) > 0.5,
            "r2 = {}",
            r2_score(&tt, &preds)
        );
    }

    #[test]
    fn forest_is_deterministic_for_a_seed() {
        let (f, t) = friedman_like(100, 5);
        let a = RandomForestRegressor::fit_default(&f, &t, 9).unwrap();
        let b = RandomForestRegressor::fit_default(&f, &t, 9).unwrap();
        let xs = vec![0.3, 0.4, 0.5, 0.6];
        assert_eq!(a.predict_one(&xs), b.predict_one(&xs));
    }

    #[test]
    fn forest_classifier_learns_threshold_rule() {
        // Label is 1 when x0 + x1 > 1.0 — mimics the "hot if enough accesses"
        // structure of the tier predictor.
        let (f, _) = friedman_like(400, 11);
        let labels: Vec<usize> = f.iter().map(|x| usize::from(x[0] + x[1] > 1.0)).collect();
        let clf = RandomForestClassifier::fit_default(&f, &labels, 2).unwrap();
        let (ftest, _) = friedman_like(200, 99);
        let truth: Vec<usize> = ftest
            .iter()
            .map(|x| usize::from(x[0] + x[1] > 1.0))
            .collect();
        let preds = Classifier::predict(&clf, &ftest);
        let cm = confusion_matrix(&truth, &preds, 2);
        assert!(cm.accuracy() > 0.85, "accuracy = {}", cm.accuracy());
        assert!(f1_score(&cm, 1) > 0.8);
    }

    #[test]
    fn predict_proba_sums_to_one() {
        let (f, _) = friedman_like(100, 13);
        let labels: Vec<usize> = f.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        let clf = RandomForestClassifier::fit_default(&f, &labels, 3).unwrap();
        let p = clf.predict_proba_one(&[0.9, 0.1, 0.1, 0.1]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_trees_rejected() {
        let params = ForestParams {
            n_trees: 0,
            ..Default::default()
        };
        assert!(RandomForestRegressor::fit(&[vec![1.0]], &[1.0], params).is_err());
        assert!(RandomForestClassifier::fit(&[vec![1.0]], &[0], params).is_err());
    }

    #[test]
    fn mismatched_labels_rejected() {
        assert!(RandomForestClassifier::fit_default(&[vec![1.0]], &[0, 1], 1).is_err());
        assert!(RandomForestRegressor::fit_default(&[], &[], 1).is_err());
    }
}
