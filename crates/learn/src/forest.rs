//! Random forests: bagged ensembles of CART trees.
//!
//! The paper finds the Random Forest to be the best-performing model both
//! for the compression predictor (Tables VI–VIII) and the tier predictor
//! (Table III, F1 > 0.96). The implementation here uses bootstrap sampling
//! and per-split feature subsampling, with deterministic seeding so that
//! experiment outputs are reproducible.
//!
//! Training is the fast path: bootstraps are drawn **by index** from a
//! shared [`ColumnMatrix`] (no row clones), all bootstrap plans are drawn
//! up-front from the single seeded RNG stream (so the sample of tree `i` is
//! identical to the sequential seed implementation's), and the expensive
//! tree builds fan out over
//! [`scope_cloudsim::parallel_map`] — results merge in index order, so the
//! fitted forest is bit-for-bit identical for any thread count and to the
//! sequential [`crate::reference`] oracle.

use crate::data::ColumnMatrix;
use crate::error::LearnError;
use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};
use crate::{Classifier, Regressor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_cloudsim::parallel::{default_threads, parallel_map, parallel_map_with_threads};

/// Hyper-parameters for random forests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree parameters. If `max_features` is `None` it is defaulted to
    /// `sqrt(width)` for classification and `width / 3` for regression, the
    /// conventional random-forest defaults.
    pub tree: TreeParams,
    /// Seed controlling bootstrap sampling and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 50,
            tree: TreeParams::default(),
            seed: 42,
        }
    }
}

pub(crate) fn default_max_features(width: usize, classification: bool) -> usize {
    if classification {
        ((width as f64).sqrt().round() as usize).max(1)
    } else {
        (width / 3).max(1)
    }
}

/// Draw every tree's bootstrap rows and subsampling seed from the single
/// sequential RNG stream (exactly the draws the seed implementation made),
/// so the expensive builds can then fan out in any order.
fn bootstrap_plans(n_trees: usize, n: usize, seed: u64) -> Vec<(Vec<u32>, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_trees)
        .map(|_| {
            let rows: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n) as u32).collect();
            let tree_seed: u64 = rng.gen();
            (rows, tree_seed)
        })
        .collect()
}

/// Random forest regressor (average of tree predictions).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Fit a forest with the given parameters.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        params: ForestParams,
    ) -> Result<Self, LearnError> {
        Self::fit_with_threads(features, targets, params, default_threads())
    }

    /// [`RandomForestRegressor::fit`] with an explicit worker-thread count
    /// (1 = plain sequential loop). The thread count never changes the
    /// fitted model, only wall-clock time.
    pub fn fit_with_threads(
        features: &[Vec<f64>],
        targets: &[f64],
        params: ForestParams,
        threads: usize,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let cols = ColumnMatrix::from_rows(features)?;
        Self::fit_columns_with_threads(&cols, targets, params, threads)
    }

    /// Fit on a shared column-major matrix.
    pub fn fit_columns(
        cols: &ColumnMatrix,
        targets: &[f64],
        params: ForestParams,
    ) -> Result<Self, LearnError> {
        Self::fit_columns_with_threads(cols, targets, params, default_threads())
    }

    /// [`RandomForestRegressor::fit_columns`] with an explicit thread count.
    pub fn fit_columns_with_threads(
        cols: &ColumnMatrix,
        targets: &[f64],
        params: ForestParams,
        threads: usize,
    ) -> Result<Self, LearnError> {
        if params.n_trees == 0 {
            return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
        }
        if cols.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if cols.n_rows() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: cols.n_rows(),
                targets: targets.len(),
            });
        }
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some(default_max_features(cols.n_cols(), false));
        }
        let plans = bootstrap_plans(params.n_trees, cols.n_rows(), params.seed);
        let trees = parallel_map_with_threads(&plans, threads, |_, (rows, tree_seed)| {
            DecisionTreeRegressor::fit_bootstrap_indices(
                cols,
                targets,
                rows,
                tree_params,
                *tree_seed,
            )
        });
        Ok(RandomForestRegressor { trees })
    }

    /// Fit with default parameters and the given seed.
    pub fn fit_default(
        features: &[Vec<f64>],
        targets: &[f64],
        seed: u64,
    ) -> Result<Self, LearnError> {
        Self::fit(
            features,
            targets,
            ForestParams {
                seed,
                ..Default::default()
            },
        )
    }

    /// Assemble a forest from pre-built trees (reference builders).
    pub(crate) fn from_trees(trees: Vec<DecisionTreeRegressor>) -> Self {
        RandomForestRegressor { trees }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForestRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_one(features)).sum();
        sum / self.trees.len() as f64
    }

    fn predict_columns(&self, features: &ColumnMatrix) -> Vec<f64> {
        if default_threads() == 1 {
            // No parallelism available: a reused row buffer beats per-node
            // strided column reads.
            let mut buf = Vec::with_capacity(features.n_cols());
            return (0..features.n_rows())
                .map(|r| {
                    features.row_to(r, &mut buf);
                    self.predict_one(&buf)
                })
                .collect();
        }
        let rows: Vec<u32> = (0..features.n_rows() as u32).collect();
        parallel_map(&rows, |_, &r| {
            let get = |f: usize| features.value(r as usize, f);
            let sum: f64 = self.trees.iter().map(|t| t.root().predict_by(&get)).sum();
            sum / self.trees.len() as f64
        })
    }
}

/// Random forest classifier (majority vote).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestClassifier {
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Fit a forest classifier with the given parameters.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        params: ForestParams,
    ) -> Result<Self, LearnError> {
        Self::fit_with_threads(features, labels, params, default_threads())
    }

    /// [`RandomForestClassifier::fit`] with an explicit worker-thread count
    /// (1 = plain sequential loop); the model is thread-count independent.
    pub fn fit_with_threads(
        features: &[Vec<f64>],
        labels: &[usize],
        params: ForestParams,
        threads: usize,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let cols = ColumnMatrix::from_rows(features)?;
        Self::fit_columns_with_threads(&cols, labels, params, threads)
    }

    /// Fit on a shared column-major matrix.
    pub fn fit_columns(
        cols: &ColumnMatrix,
        labels: &[usize],
        params: ForestParams,
    ) -> Result<Self, LearnError> {
        Self::fit_columns_with_threads(cols, labels, params, default_threads())
    }

    /// [`RandomForestClassifier::fit_columns`] with an explicit thread count.
    pub fn fit_columns_with_threads(
        cols: &ColumnMatrix,
        labels: &[usize],
        params: ForestParams,
        threads: usize,
    ) -> Result<Self, LearnError> {
        if params.n_trees == 0 {
            return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
        }
        if cols.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if cols.n_rows() != labels.len() {
            return Err(LearnError::LengthMismatch {
                features: cols.n_rows(),
                targets: labels.len(),
            });
        }
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some(default_max_features(cols.n_cols(), true));
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let targets: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        let plans = bootstrap_plans(params.n_trees, cols.n_rows(), params.seed);
        let trees = parallel_map_with_threads(&plans, threads, |_, (rows, tree_seed)| {
            DecisionTreeClassifier::fit_bootstrap_indices(
                cols,
                &targets,
                rows,
                tree_params,
                *tree_seed,
            )
        });
        Ok(RandomForestClassifier { trees, n_classes })
    }

    /// Fit with default parameters and the given seed.
    pub fn fit_default(
        features: &[Vec<f64>],
        labels: &[usize],
        seed: u64,
    ) -> Result<Self, LearnError> {
        Self::fit(
            features,
            labels,
            ForestParams {
                seed,
                ..Default::default()
            },
        )
    }

    /// Assemble a forest from pre-built trees (reference builders).
    pub(crate) fn from_parts(trees: Vec<DecisionTreeClassifier>, n_classes: usize) -> Self {
        RandomForestClassifier { trees, n_classes }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class vote fractions via a feature getter.
    fn proba_by(&self, get: &impl Fn(usize) -> f64) -> Vec<f64> {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            let c = (t.root().predict_by(get).round().max(0.0) as usize).min(self.n_classes - 1);
            votes[c] += 1;
        }
        votes
            .into_iter()
            .map(|v| v as f64 / self.trees.len() as f64)
            .collect()
    }

    /// Per-class vote fractions for one feature vector (a calibrated-ish
    /// probability estimate used when a score is needed instead of a label).
    pub fn predict_proba_one(&self, features: &[f64]) -> Vec<f64> {
        self.proba_by(&|f| features.get(f).copied().unwrap_or(0.0))
    }
}

/// Majority vote from vote fractions: the class with the highest fraction,
/// ties resolved towards the last maximal index (the historical
/// `max_by(partial_cmp)` behaviour, kept so batched prediction matches
/// [`Classifier::predict_one`] bit-for-bit).
fn vote_argmax(proba: &[f64]) -> usize {
    proba
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl Classifier for RandomForestClassifier {
    fn predict_one(&self, features: &[f64]) -> usize {
        vote_argmax(&self.predict_proba_one(features))
    }

    fn predict_columns(&self, features: &ColumnMatrix) -> Vec<usize> {
        if default_threads() == 1 {
            let mut buf = Vec::with_capacity(features.n_cols());
            return (0..features.n_rows())
                .map(|r| {
                    features.row_to(r, &mut buf);
                    self.predict_one(&buf)
                })
                .collect();
        }
        let rows: Vec<u32> = (0..features.n_rows() as u32).collect();
        parallel_map(&rows, |_, &r| {
            vote_argmax(&self.proba_by(&|f| features.value(r as usize, f)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{confusion_matrix, f1_score, mae, r2_score};

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Smooth nonlinear target; deterministic pseudo-random features.
        let mut state = seed | 1;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut features = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..4).map(|_| next()).collect();
            let y = 10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5).powi(2)
                + 10.0 * x[3];
            features.push(x);
            targets.push(y);
        }
        (features, targets)
    }

    #[test]
    fn forest_regressor_beats_mean_baseline() {
        let (f, t) = friedman_like(300, 3);
        let (ft, tt) = friedman_like(100, 77);
        let forest = RandomForestRegressor::fit_default(&f, &t, 1).unwrap();
        let preds: Vec<f64> = ft.iter().map(|x| forest.predict_one(x)).collect();
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let mean_preds = vec![mean; tt.len()];
        assert!(mae(&tt, &preds) < mae(&tt, &mean_preds));
        assert!(
            r2_score(&tt, &preds) > 0.5,
            "r2 = {}",
            r2_score(&tt, &preds)
        );
    }

    #[test]
    fn forest_is_deterministic_for_a_seed() {
        let (f, t) = friedman_like(100, 5);
        let a = RandomForestRegressor::fit_default(&f, &t, 9).unwrap();
        let b = RandomForestRegressor::fit_default(&f, &t, 9).unwrap();
        let xs = vec![0.3, 0.4, 0.5, 0.6];
        assert_eq!(a.predict_one(&xs), b.predict_one(&xs));
        assert_eq!(a, b);
    }

    #[test]
    fn forest_is_thread_count_independent() {
        // The fan-out must never change the fitted model: 1 worker (the
        // sequential loop) and many workers produce identical trees.
        let (f, t) = friedman_like(120, 8);
        let sequential =
            RandomForestRegressor::fit_with_threads(&f, &t, ForestParams::default(), 1).unwrap();
        for threads in [2, 3, 5, 8] {
            let parallel =
                RandomForestRegressor::fit_with_threads(&f, &t, ForestParams::default(), threads)
                    .unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
        let labels: Vec<usize> = t.iter().map(|&y| usize::from(y > 14.0)).collect();
        let c_seq =
            RandomForestClassifier::fit_with_threads(&f, &labels, ForestParams::default(), 1)
                .unwrap();
        let c_par =
            RandomForestClassifier::fit_with_threads(&f, &labels, ForestParams::default(), 7)
                .unwrap();
        assert_eq!(c_seq, c_par);
    }

    #[test]
    fn batched_prediction_equals_scalar_prediction() {
        let (f, t) = friedman_like(150, 21);
        let forest = RandomForestRegressor::fit_default(&f, &t, 4).unwrap();
        let cols = crate::data::ColumnMatrix::from_rows(&f).unwrap();
        let batched = forest.predict_columns(&cols);
        for (row, &b) in f.iter().zip(&batched) {
            assert_eq!(forest.predict_one(row).to_bits(), b.to_bits());
        }
        let labels: Vec<usize> = t.iter().map(|&y| usize::from(y > 14.0)).collect();
        let clf = RandomForestClassifier::fit_default(&f, &labels, 4).unwrap();
        let batched = clf.predict_columns(&cols);
        for (row, &b) in f.iter().zip(&batched) {
            assert_eq!(Classifier::predict_one(&clf, row), b);
        }
    }

    #[test]
    fn forest_classifier_learns_threshold_rule() {
        // Label is 1 when x0 + x1 > 1.0 — mimics the "hot if enough accesses"
        // structure of the tier predictor.
        let (f, _) = friedman_like(400, 11);
        let labels: Vec<usize> = f.iter().map(|x| usize::from(x[0] + x[1] > 1.0)).collect();
        let clf = RandomForestClassifier::fit_default(&f, &labels, 2).unwrap();
        let (ftest, _) = friedman_like(200, 99);
        let truth: Vec<usize> = ftest
            .iter()
            .map(|x| usize::from(x[0] + x[1] > 1.0))
            .collect();
        let preds = Classifier::predict(&clf, &ftest);
        let cm = confusion_matrix(&truth, &preds, 2);
        assert!(cm.accuracy() > 0.85, "accuracy = {}", cm.accuracy());
        assert!(f1_score(&cm, 1) > 0.8);
    }

    #[test]
    fn predict_proba_sums_to_one() {
        let (f, _) = friedman_like(100, 13);
        let labels: Vec<usize> = f.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        let clf = RandomForestClassifier::fit_default(&f, &labels, 3).unwrap();
        let p = clf.predict_proba_one(&[0.9, 0.1, 0.1, 0.1]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_trees_rejected() {
        let params = ForestParams {
            n_trees: 0,
            ..Default::default()
        };
        assert!(RandomForestRegressor::fit(&[vec![1.0]], &[1.0], params).is_err());
        assert!(RandomForestClassifier::fit(&[vec![1.0]], &[0], params).is_err());
    }

    #[test]
    fn mismatched_labels_rejected() {
        assert!(RandomForestClassifier::fit_default(&[vec![1.0]], &[0, 1], 1).is_err());
        assert!(RandomForestRegressor::fit_default(&[], &[], 1).is_err());
    }
}
