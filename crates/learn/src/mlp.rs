//! A single-hidden-layer perceptron regressor trained with mini-batch SGD.
//!
//! This is the "Neural Network (MLP)" model family of Tables VI–VIII. The
//! network is deliberately small (one hidden layer, tanh activation) — the
//! paper's feature space has only a handful of dimensions and the point of
//! the comparison is the model family, not depth.

use crate::error::LearnError;
use crate::Regressor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for the MLP regressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpParams {
    /// Number of hidden units.
    pub hidden_units: usize,
    /// Number of full passes over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden_units: 32,
            epochs: 300,
            learning_rate: 0.01,
            batch_size: 16,
            weight_decay: 1e-5,
            seed: 7,
        }
    }
}

/// Single-hidden-layer MLP regressor. Inputs and the target are
/// internally standardized so callers can pass raw features.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    // Input standardization.
    feat_means: Vec<f64>,
    feat_stds: Vec<f64>,
    target_mean: f64,
    target_std: f64,
    // weights_in[h][d], bias_in[h], weights_out[h], bias_out
    weights_in: Vec<Vec<f64>>,
    bias_in: Vec<f64>,
    weights_out: Vec<f64>,
    bias_out: f64,
}

impl MlpRegressor {
    /// Fit the network.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        params: MlpParams,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if features.len() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: features.len(),
                targets: targets.len(),
            });
        }
        if params.hidden_units == 0 || params.epochs == 0 || params.batch_size == 0 {
            return Err(LearnError::InvalidHyperParameter(
                "hidden_units, epochs and batch_size must be > 0",
            ));
        }
        let width = features[0].len();
        for row in features {
            if row.len() != width {
                return Err(LearnError::RaggedFeatures {
                    expected: width,
                    found: row.len(),
                });
            }
        }
        let n = features.len();

        // Standardize inputs and target.
        let (feat_means, feat_stds) = column_stats(features);
        let target_mean = targets.iter().sum::<f64>() / n as f64;
        let target_var = targets
            .iter()
            .map(|t| (t - target_mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let target_std = if target_var.sqrt() < 1e-12 {
            1.0
        } else {
            target_var.sqrt()
        };
        let x: Vec<Vec<f64>> = features
            .iter()
            .map(|row| standardize(row, &feat_means, &feat_stds))
            .collect();
        let y: Vec<f64> = targets
            .iter()
            .map(|t| (t - target_mean) / target_std)
            .collect();

        let mut rng = SmallRng::seed_from_u64(params.seed);
        let h = params.hidden_units;
        let scale_in = (2.0 / (width as f64 + h as f64)).sqrt();
        let scale_out = (2.0 / (h as f64 + 1.0)).sqrt();
        let mut weights_in: Vec<Vec<f64>> = (0..h)
            .map(|_| {
                (0..width)
                    .map(|_| rng.gen_range(-scale_in..scale_in))
                    .collect()
            })
            .collect();
        let mut bias_in = vec![0.0; h];
        let mut weights_out: Vec<f64> = (0..h)
            .map(|_| rng.gen_range(-scale_out..scale_out))
            .collect();
        let mut bias_out = 0.0;

        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..params.epochs {
            // Shuffle example order each epoch.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(params.batch_size) {
                // Accumulate gradients over the batch.
                let mut grad_w_in = vec![vec![0.0; width]; h];
                let mut grad_b_in = vec![0.0; h];
                let mut grad_w_out = vec![0.0; h];
                let mut grad_b_out = 0.0;
                for &i in batch {
                    let xi = &x[i];
                    // Forward pass.
                    let mut hidden = vec![0.0; h];
                    for (j, hj) in hidden.iter_mut().enumerate() {
                        let z: f64 = weights_in[j]
                            .iter()
                            .zip(xi)
                            .map(|(w, v)| w * v)
                            .sum::<f64>()
                            + bias_in[j];
                        *hj = z.tanh();
                    }
                    let pred: f64 = weights_out
                        .iter()
                        .zip(&hidden)
                        .map(|(w, a)| w * a)
                        .sum::<f64>()
                        + bias_out;
                    let err = pred - y[i];
                    // Backward pass.
                    grad_b_out += err;
                    for j in 0..h {
                        grad_w_out[j] += err * hidden[j];
                        let dh = err * weights_out[j] * (1.0 - hidden[j] * hidden[j]);
                        grad_b_in[j] += dh;
                        for (g, v) in grad_w_in[j].iter_mut().zip(xi) {
                            *g += dh * v;
                        }
                    }
                }
                let lr = params.learning_rate / batch.len() as f64;
                for j in 0..h {
                    for (w, g) in weights_in[j].iter_mut().zip(&grad_w_in[j]) {
                        *w -= lr * (g + params.weight_decay * *w);
                    }
                    bias_in[j] -= lr * grad_b_in[j];
                    weights_out[j] -= lr * (grad_w_out[j] + params.weight_decay * weights_out[j]);
                }
                bias_out -= lr * grad_b_out;
            }
        }

        Ok(MlpRegressor {
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            weights_in,
            bias_in,
            weights_out,
            bias_out,
        })
    }

    /// Fit with default parameters.
    pub fn fit_default(features: &[Vec<f64>], targets: &[f64]) -> Result<Self, LearnError> {
        Self::fit(features, targets, MlpParams::default())
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.weights_out.len()
    }
}

fn column_stats(features: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    let width = features[0].len();
    let n = features.len() as f64;
    let mut means = vec![0.0; width];
    for row in features {
        for (m, v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut stds = vec![0.0; width];
    for row in features {
        for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt();
        if *s < 1e-12 {
            *s = 1.0;
        }
    }
    (means, stds)
}

fn standardize(row: &[f64], means: &[f64], stds: &[f64]) -> Vec<f64> {
    row.iter()
        .zip(means.iter().zip(stds))
        .map(|(v, (m, s))| (v - m) / s)
        .collect()
}

impl Regressor for MlpRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        let x = standardize(features, &self.feat_means, &self.feat_stds);
        let mut out = self.bias_out;
        for (j, w_out) in self.weights_out.iter().enumerate() {
            let z: f64 = self.weights_in[j]
                .iter()
                .zip(&x)
                .map(|(w, v)| w * v)
                .sum::<f64>()
                + self.bias_in[j];
            out += w_out * z.tanh();
        }
        out * self.target_std + self.target_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn learns_linear_function() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<f64> = features.iter().map(|f| 2.0 * f[0] + 1.0).collect();
        let mlp = MlpRegressor::fit_default(&features, &targets).unwrap();
        let preds: Vec<f64> = features.iter().map(|f| mlp.predict_one(f)).collect();
        assert!(
            r2_score(&targets, &preds) > 0.95,
            "r2 = {}",
            r2_score(&targets, &preds)
        );
    }

    #[test]
    fn learns_mildly_nonlinear_function() {
        let features: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| (f[0]).sin() * 2.0 + 0.5 * f[0])
            .collect();
        let mlp = MlpRegressor::fit(
            &features,
            &targets,
            MlpParams {
                epochs: 600,
                ..Default::default()
            },
        )
        .unwrap();
        let preds: Vec<f64> = features.iter().map(|f| mlp.predict_one(f)).collect();
        assert!(
            r2_score(&targets, &preds) > 0.85,
            "r2 = {}",
            r2_score(&targets, &preds)
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = features.iter().map(|f| f[0] * 0.3).collect();
        let a = MlpRegressor::fit_default(&features, &targets).unwrap();
        let b = MlpRegressor::fit_default(&features, &targets).unwrap();
        assert_eq!(a.predict_one(&[25.0]), b.predict_one(&[25.0]));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(MlpRegressor::fit_default(&[], &[]).is_err());
        assert!(MlpRegressor::fit_default(&[vec![1.0]], &[1.0, 2.0]).is_err());
        let bad = MlpParams {
            hidden_units: 0,
            ..Default::default()
        };
        assert!(MlpRegressor::fit(&[vec![1.0]], &[1.0], bad).is_err());
    }

    #[test]
    fn constant_target_predicts_constant() {
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let targets = vec![42.0; 30];
        let mlp = MlpRegressor::fit(
            &features,
            &targets,
            MlpParams {
                epochs: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((mlp.predict_one(&[15.0]) - 42.0).abs() < 1.0);
    }
}
