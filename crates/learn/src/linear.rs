//! Ridge (L2-regularised linear) regression.
//!
//! Serves as the linear baseline and as the stand-in for the paper's SVR
//! rows when a fast, deterministic, closed-form model is wanted. The normal
//! equations are solved with Gaussian elimination and partial pivoting over
//! the (small) feature dimension.

use crate::error::LearnError;
use crate::Regressor;

/// Ridge regression model: `y = w . x + b`.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl RidgeRegression {
    /// Fit with L2 penalty `lambda >= 0` (0 = ordinary least squares).
    pub fn fit(features: &[Vec<f64>], targets: &[f64], lambda: f64) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if features.len() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: features.len(),
                targets: targets.len(),
            });
        }
        if !(lambda >= 0.0) {
            return Err(LearnError::InvalidHyperParameter("lambda must be >= 0"));
        }
        let width = features[0].len();
        for row in features {
            if row.len() != width {
                return Err(LearnError::RaggedFeatures {
                    expected: width,
                    found: row.len(),
                });
            }
        }
        // Augment with a bias column; do not regularise the bias.
        let d = width + 1;
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        for (row, &y) in features.iter().zip(targets) {
            let aug: Vec<f64> = row.iter().copied().chain(std::iter::once(1.0)).collect();
            for i in 0..d {
                xty[i] += aug[i] * y;
                for j in 0..d {
                    xtx[i][j] += aug[i] * aug[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate().take(width) {
            row[i] += lambda;
        }
        let solution = solve_linear_system(xtx, xty)?;
        let (weights, intercept) = solution.split_at(width);
        Ok(RidgeRegression {
            weights: weights.to_vec(),
            intercept: intercept[0],
        })
    }

    /// Fitted weights (one per feature).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for RidgeRegression {
    fn predict_one(&self, features: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(features)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, LearnError> {
    let n = a.len();
    for col in 0..n {
        // Pivot selection.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(LearnError::Numerical("singular normal-equation matrix"));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, below) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (k, cell) in below[0].iter_mut().enumerate().take(n).skip(col) {
                *cell -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3 x0 - 2 x1 + 5
        let features: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| 3.0 * f[0] - 2.0 * f[1] + 5.0)
            .collect();
        let model = RidgeRegression::fit(&features, &targets, 0.0).unwrap();
        assert!((model.weights()[0] - 3.0).abs() < 1e-6);
        assert!((model.weights()[1] + 2.0).abs() < 1e-6);
        assert!((model.intercept() - 5.0).abs() < 1e-6);
        assert!((model.predict_one(&[10.0, 4.0]) - (30.0 - 8.0 + 5.0)).abs() < 1e-6);
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = features.iter().map(|f| 4.0 * f[0]).collect();
        let ols = RidgeRegression::fit(&features, &targets, 0.0).unwrap();
        let ridge = RidgeRegression::fit(&features, &targets, 1e4).unwrap();
        assert!(ridge.weights()[0].abs() < ols.weights()[0].abs());
    }

    #[test]
    fn singular_matrix_handled_by_regularisation() {
        // Duplicate (perfectly collinear) features make OLS singular, but a
        // small ridge penalty fixes it.
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        assert!(RidgeRegression::fit(&features, &targets, 1e-3).is_ok());
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(RidgeRegression::fit(&[], &[], 1.0).is_err());
        assert!(RidgeRegression::fit(&[vec![1.0]], &[1.0, 2.0], 1.0).is_err());
        assert!(RidgeRegression::fit(&[vec![1.0]], &[1.0], -1.0).is_err());
        assert!(RidgeRegression::fit(&[vec![1.0]], &[1.0], f64::NAN).is_err());
        assert!(RidgeRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn constant_feature_column_does_not_break_fit() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 1.0]).collect();
        let targets: Vec<f64> = (0..20).map(|i| i as f64 * 0.5 + 2.0).collect();
        let model = RidgeRegression::fit(&features, &targets, 1e-6).unwrap();
        assert!((model.predict_one(&[10.0, 1.0]) - 7.0).abs() < 1e-3);
    }
}
