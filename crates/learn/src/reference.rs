//! The historical **seed-shaped** training paths, preserved as differential
//! oracles and benchmark baselines.
//!
//! These are *not* the production entry points — [`crate::tree`],
//! [`crate::forest`] and [`crate::boosting`] train through the presort fast
//! path (per-tree feature presort, index-based bagging, deterministic
//! parallel fan-out). The reference paths keep the seed implementation's
//! *structure*:
//!
//! * the CART builder re-sorts the candidate feature's index set **per
//!   node** with a stable `sort_by`,
//! * bootstrap samples **clone whole feature rows** into fresh row-major
//!   matrices,
//! * forests and boosting stages train **sequentially**, drawing from one
//!   RNG stream,
//! * k-NN queries **fully sort** all training distances.
//!
//! Split scoring is shared with the fast path
//! ([`crate::tree::SplitScan`] / [`crate::tree::best_split_scan`]): every
//! floating-point operation that decides a split, a leaf value or a vote is
//! defined exactly once, so the two families are bit-for-bit identical by
//! construction. `tests/differential_learn.rs` pins that equality (tree
//! structures, forest votes, boosting predictions, k-NN regressions) on
//! randomized instances, and the `train_bench` bin measures the fast path's
//! speedup against exactly this pre-PR-5 cost, not a strawman.

use crate::boosting::BoostingParams;
use crate::error::LearnError;
use crate::forest::{default_max_features, ForestParams};
use crate::knn::KnnWeighting;
use crate::tree::{
    best_split_scan, validate, Criterion, Node, SplitScan, SubsampleRng, TreeParams,
};
use crate::{
    DecisionTreeClassifier, DecisionTreeRegressor, GradientBoostingRegressor, KnnRegressor,
    RandomForestClassifier, RandomForestRegressor, Regressor,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The seed-shaped CART builder: per-node index copies and stable re-sorts,
/// scoring through the shared [`SplitScan`].
struct RefBuilder<'a> {
    features: &'a [Vec<f64>],
    targets: &'a [f64],
    params: TreeParams,
    scan: SplitScan,
    rng: SubsampleRng,
    cand: Vec<usize>,
}

impl RefBuilder<'_> {
    fn build(&mut self, idx: &[usize], depth: usize) -> Node {
        self.scan.reset_node();
        for &i in idx {
            self.scan.add_node_sample(self.targets[i]);
        }
        if depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || idx.len() < 2 * self.params.min_samples_leaf
        {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        let parent_impurity = self.scan.node_impurity();
        if parent_impurity <= 1e-12 {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        let width = self.features[0].len();
        self.rng
            .candidate_features(width, self.params.max_features, &mut self.cand);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted_idx = idx.to_vec();
        for ci in 0..self.cand.len() {
            let feat = self.cand[ci];
            let features = self.features;
            // The per-node stable sort the fast path replaces with a single
            // per-tree presort. Each feature sorts from the node's idx
            // order, so equal values tie in ascending sample order — the
            // seed reused the previous feature's buffer, leaking that
            // feature's order into the ties (i.e. tie order depended on the
            // candidate iteration order); both paths now canonicalize it.
            sorted_idx.copy_from_slice(idx);
            sorted_idx.sort_by(|&a, &b| {
                features[a][feat]
                    .partial_cmp(&features[b][feat])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let targets = self.targets;
            if let Some((threshold, score)) = best_split_scan(
                &mut self.scan,
                idx.len(),
                self.params.min_samples_leaf,
                sorted_idx.iter().map(|&i| (features[i][feat], targets[i])),
            ) {
                if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                    best = Some((feat, threshold, score));
                }
            }
        }

        let Some((feature, threshold, score)) = best else {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        };
        if score >= parent_impurity - 1e-12 {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.features[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(&left_idx, depth + 1)),
            right: Box::new(self.build(&right_idx, depth + 1)),
        }
    }
}

/// [`DecisionTreeRegressor::fit_seeded`] through the seed-shaped builder.
pub fn fit_tree_regressor_reference(
    features: &[Vec<f64>],
    targets: &[f64],
    params: TreeParams,
    seed: u64,
) -> Result<DecisionTreeRegressor, LearnError> {
    validate(features, targets)?;
    let mut builder = RefBuilder {
        features,
        targets,
        params,
        scan: SplitScan::new(Criterion::Variance, 0),
        rng: SubsampleRng::new(seed),
        cand: Vec::new(),
    };
    let idx: Vec<usize> = (0..features.len()).collect();
    let root = builder.build(&idx, 0);
    Ok(DecisionTreeRegressor::from_parts(root, params))
}

/// [`DecisionTreeClassifier::fit_seeded`] through the seed-shaped builder.
pub fn fit_tree_classifier_reference(
    features: &[Vec<f64>],
    labels: &[usize],
    params: TreeParams,
    seed: u64,
) -> Result<DecisionTreeClassifier, LearnError> {
    let targets: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
    validate(features, &targets)?;
    let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut builder = RefBuilder {
        features,
        targets: &targets,
        params,
        scan: SplitScan::new(Criterion::Gini, n_classes),
        rng: SubsampleRng::new(seed),
        cand: Vec::new(),
    };
    let idx: Vec<usize> = (0..features.len()).collect();
    let root = builder.build(&idx, 0);
    Ok(DecisionTreeClassifier::from_parts(root, n_classes))
}

/// [`RandomForestRegressor::fit`] the seed way: sequential trees, each on a
/// bootstrap that clones whole feature rows.
pub fn fit_forest_regressor_reference(
    features: &[Vec<f64>],
    targets: &[f64],
    params: ForestParams,
) -> Result<RandomForestRegressor, LearnError> {
    if params.n_trees == 0 {
        return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
    }
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    let width = features[0].len();
    let mut tree_params = params.tree;
    if tree_params.max_features.is_none() {
        tree_params.max_features = Some(default_max_features(width, false));
    }
    let n = features.len();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut trees = Vec::with_capacity(params.n_trees);
    for _ in 0..params.n_trees {
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        // The per-row clones the fast path's index-based bagging avoids.
        let boot_features: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
        let boot_targets: Vec<f64> = idx.iter().map(|&i| targets[i]).collect();
        trees.push(fit_tree_regressor_reference(
            &boot_features,
            &boot_targets,
            tree_params,
            rng.gen(),
        )?);
    }
    Ok(RandomForestRegressor::from_trees(trees))
}

/// [`RandomForestClassifier::fit`] the seed way (sequential, clone-based
/// bootstraps).
pub fn fit_forest_classifier_reference(
    features: &[Vec<f64>],
    labels: &[usize],
    params: ForestParams,
) -> Result<RandomForestClassifier, LearnError> {
    if params.n_trees == 0 {
        return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
    }
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    if features.len() != labels.len() {
        return Err(LearnError::LengthMismatch {
            features: features.len(),
            targets: labels.len(),
        });
    }
    let width = features[0].len();
    let mut tree_params = params.tree;
    if tree_params.max_features.is_none() {
        tree_params.max_features = Some(default_max_features(width, true));
    }
    let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let n = features.len();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut trees = Vec::with_capacity(params.n_trees);
    for _ in 0..params.n_trees {
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let boot_features: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
        let boot_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        trees.push(fit_tree_classifier_reference(
            &boot_features,
            &boot_labels,
            tree_params,
            rng.gen(),
        )?);
    }
    Ok(RandomForestClassifier::from_parts(trees, n_classes))
}

/// [`GradientBoostingRegressor::fit`] the seed way: every stage re-sorts
/// from scratch inside the tree builder and the ensemble update walks rows
/// sequentially.
pub fn fit_boosting_reference(
    features: &[Vec<f64>],
    targets: &[f64],
    params: BoostingParams,
) -> Result<GradientBoostingRegressor, LearnError> {
    if params.n_estimators == 0 {
        return Err(LearnError::InvalidHyperParameter(
            "n_estimators must be > 0",
        ));
    }
    if !(params.learning_rate > 0.0 && params.learning_rate <= 1.0) {
        return Err(LearnError::InvalidHyperParameter(
            "learning_rate must be in (0, 1]",
        ));
    }
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    if features.len() != targets.len() {
        return Err(LearnError::LengthMismatch {
            features: features.len(),
            targets: targets.len(),
        });
    }
    let base_prediction = targets.iter().sum::<f64>() / targets.len() as f64;
    let mut current: Vec<f64> = vec![base_prediction; targets.len()];
    let mut stages = Vec::with_capacity(params.n_estimators);
    for stage_idx in 0..params.n_estimators {
        let residuals: Vec<f64> = targets.iter().zip(&current).map(|(t, c)| t - c).collect();
        if residuals.iter().all(|r| r.abs() < 1e-12) {
            break;
        }
        let tree =
            fit_tree_regressor_reference(features, &residuals, params.tree, stage_idx as u64 + 1)?;
        for (c, row) in current.iter_mut().zip(features) {
            *c += params.learning_rate * tree.predict_one(row);
        }
        stages.push(tree);
    }
    Ok(GradientBoostingRegressor::from_parts(
        base_prediction,
        params.learning_rate,
        stages,
    ))
}

// ---------------------------------------------------------------------------
// The *seed* scorer: the original hot loop, preserved for honest
// benchmarking.
// ---------------------------------------------------------------------------

/// Split impurity exactly as the seed computed it: a fresh two-pass scan of
/// the candidate slice **per split position** (`O(n)` per candidate,
/// `O(n · candidates)` per feature per node — the loop the scan-based
/// scoring replaced). The one seed behaviour not kept: Gini counts use an
/// ordered map instead of `HashMap`, because the seed's `Σ p²` summation
/// order followed the hash map's nondeterministic iteration order — with
/// three or more classes that made split scores (and so whole trees) vary
/// run to run. Everything else is verbatim.
fn seed_impurity(targets: &[f64], idx: &[usize], criterion: Criterion) -> f64 {
    match criterion {
        Criterion::Variance => {
            let n = idx.len() as f64;
            let mean = idx.iter().map(|&i| targets[i]).sum::<f64>() / n;
            idx.iter()
                .map(|&i| (targets[i] - mean).powi(2))
                .sum::<f64>()
        }
        Criterion::Gini => {
            let n = idx.len() as f64;
            let mut counts: std::collections::BTreeMap<i64, usize> =
                std::collections::BTreeMap::new();
            for &i in idx {
                *counts.entry(targets[i] as i64).or_insert(0) += 1;
            }
            let gini = 1.0
                - counts
                    .values()
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p
                    })
                    .sum::<f64>();
            gini * n
        }
    }
}

/// Leaf value exactly as the seed computed it (majority vote ties towards
/// the smaller label, as fixed in PR 1).
fn seed_leaf_value(targets: &[f64], idx: &[usize], criterion: Criterion) -> f64 {
    match criterion {
        Criterion::Variance => idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64,
        Criterion::Gini => {
            let mut counts: std::collections::BTreeMap<i64, usize> =
                std::collections::BTreeMap::new();
            for &i in idx {
                *counts.entry(targets[i] as i64).or_insert(0) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(label, c)| (c, std::cmp::Reverse(label)))
                .map(|(label, _)| label as f64)
                .unwrap_or(0.0)
        }
    }
}

/// The seed CART builder, verbatim: per-node sorts of a shared index
/// buffer, two-pass impurity per candidate split.
struct SeedBuilder<'a> {
    features: &'a [Vec<f64>],
    targets: &'a [f64],
    params: TreeParams,
    criterion: Criterion,
    rng: SubsampleRng,
    cand: Vec<usize>,
}

impl SeedBuilder<'_> {
    fn build(&mut self, idx: &[usize], depth: usize) -> Node {
        let targets = self.targets;
        let criterion = self.criterion;
        let make_leaf = || Node::Leaf {
            value: seed_leaf_value(targets, idx, criterion),
        };
        if depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || idx.len() < 2 * self.params.min_samples_leaf
        {
            return make_leaf();
        }
        let parent_impurity = seed_impurity(self.targets, idx, self.criterion);
        if parent_impurity <= 1e-12 {
            return make_leaf();
        }
        let width = self.features[0].len();
        self.rng
            .candidate_features(width, self.params.max_features, &mut self.cand);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted_idx = idx.to_vec();
        for ci in 0..self.cand.len() {
            let feat = self.cand[ci];
            let features = self.features;
            sorted_idx.sort_by(|&a, &b| {
                features[a][feat]
                    .partial_cmp(&features[b][feat])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Scan split positions between distinct values.
            for pos in
                self.params.min_samples_leaf..=(sorted_idx.len() - self.params.min_samples_leaf)
            {
                if pos == 0 || pos == sorted_idx.len() {
                    continue;
                }
                let lo = self.features[sorted_idx[pos - 1]][feat];
                let hi = self.features[sorted_idx[pos]][feat];
                if (hi - lo).abs() <= f64::EPSILON {
                    continue;
                }
                let threshold = 0.5 * (lo + hi);
                let (left, right) = sorted_idx.split_at(pos);
                let score = seed_impurity(self.targets, left, self.criterion)
                    + seed_impurity(self.targets, right, self.criterion);
                if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                    best = Some((feat, threshold, score));
                }
            }
        }

        let Some((feature, threshold, score)) = best else {
            return make_leaf();
        };
        if score >= parent_impurity - 1e-12 {
            return make_leaf();
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.features[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf();
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(&left_idx, depth + 1)),
            right: Box::new(self.build(&right_idx, depth + 1)),
        }
    }
}

/// The seed's `DecisionTreeRegressor::fit_seeded`, two-pass scoring and
/// all. Timing baseline for `train_bench`; trees agree with the fast path
/// except where two candidate splits score within rounding of each other
/// (the formulas differ by float reassociation only).
pub fn fit_tree_regressor_seed(
    features: &[Vec<f64>],
    targets: &[f64],
    params: TreeParams,
    seed: u64,
) -> Result<DecisionTreeRegressor, LearnError> {
    validate(features, targets)?;
    let mut builder = SeedBuilder {
        features,
        targets,
        params,
        criterion: Criterion::Variance,
        rng: SubsampleRng::new(seed),
        cand: Vec::new(),
    };
    let idx: Vec<usize> = (0..features.len()).collect();
    let root = builder.build(&idx, 0);
    Ok(DecisionTreeRegressor::from_parts(root, params))
}

/// The seed's `RandomForestRegressor::fit`: sequential clone-bootstrap
/// trees scored the two-pass way. Timing baseline for `train_bench`.
pub fn fit_forest_regressor_seed(
    features: &[Vec<f64>],
    targets: &[f64],
    params: ForestParams,
) -> Result<RandomForestRegressor, LearnError> {
    if params.n_trees == 0 {
        return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
    }
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    let width = features[0].len();
    let mut tree_params = params.tree;
    if tree_params.max_features.is_none() {
        tree_params.max_features = Some(default_max_features(width, false));
    }
    let n = features.len();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut trees = Vec::with_capacity(params.n_trees);
    for _ in 0..params.n_trees {
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let boot_features: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
        let boot_targets: Vec<f64> = idx.iter().map(|&i| targets[i]).collect();
        trees.push(fit_tree_regressor_seed(
            &boot_features,
            &boot_targets,
            tree_params,
            rng.gen(),
        )?);
    }
    Ok(RandomForestRegressor::from_trees(trees))
}

/// The seed's `RandomForestClassifier::fit` (two-pass Gini scoring,
/// clone-bootstraps, sequential). Timing baseline for `train_bench`.
pub fn fit_forest_classifier_seed(
    features: &[Vec<f64>],
    labels: &[usize],
    params: ForestParams,
) -> Result<RandomForestClassifier, LearnError> {
    if params.n_trees == 0 {
        return Err(LearnError::InvalidHyperParameter("n_trees must be > 0"));
    }
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    if features.len() != labels.len() {
        return Err(LearnError::LengthMismatch {
            features: features.len(),
            targets: labels.len(),
        });
    }
    let width = features[0].len();
    let mut tree_params = params.tree;
    if tree_params.max_features.is_none() {
        tree_params.max_features = Some(default_max_features(width, true));
    }
    let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let n = features.len();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut trees = Vec::with_capacity(params.n_trees);
    for _ in 0..params.n_trees {
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let boot_features: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
        let boot_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        let targets: Vec<f64> = boot_labels.iter().map(|&l| l as f64).collect();
        let tree_n_classes = boot_labels.iter().copied().max().unwrap_or(0) + 1;
        let mut builder = SeedBuilder {
            features: &boot_features,
            targets: &targets,
            params: tree_params,
            criterion: Criterion::Gini,
            rng: SubsampleRng::new(rng.gen::<u64>()),
            cand: Vec::new(),
        };
        let idx2: Vec<usize> = (0..boot_features.len()).collect();
        let root = builder.build(&idx2, 0);
        trees.push(DecisionTreeClassifier::from_parts(root, tree_n_classes));
    }
    Ok(RandomForestClassifier::from_parts(trees, n_classes))
}

/// [`KnnRegressor`]'s seed prediction: collect **all** training distances,
/// fully sort them, truncate to k — the baseline for the bounded-selection
/// fast path.
pub fn knn_predict_reference(model: &KnnRegressor, features: &[f64]) -> f64 {
    let mut dist: Vec<(f64, f64)> = model
        .training_features()
        .iter()
        .zip(model.training_targets())
        .map(|(row, &t)| (crate::knn::squared_distance(row, features), t))
        .collect();
    dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    dist.truncate(model.k());
    match model.weighting() {
        KnnWeighting::Uniform => dist.iter().map(|(_, t)| t).sum::<f64>() / dist.len() as f64,
        KnnWeighting::InverseDistance => {
            let mut num = 0.0;
            let mut den = 0.0;
            for (d2, t) in dist {
                let w = 1.0 / (d2.sqrt() + 1e-9);
                num += w * t;
                den += w;
            }
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_data(n: usize, width: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Half the features quantized to tiny grids (heavy ties), half
        // continuous — stresses stable ordering and tie-broken splits.
        let mut state = seed | 1;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut features = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..width)
                .map(|f| {
                    if f % 2 == 0 {
                        (next() * 5.0).floor()
                    } else {
                        next() * 10.0
                    }
                })
                .collect();
            let y = x.iter().sum::<f64>() + (next() - 0.5);
            features.push(x);
            targets.push(y);
        }
        (features, targets)
    }

    #[test]
    fn fast_tree_is_bit_identical_to_reference() {
        for (n, width, seed) in [(60, 1, 1), (120, 3, 2), (200, 5, 3)] {
            let (f, t) = mixed_data(n, width, seed);
            let params = TreeParams {
                min_samples_leaf: 2,
                ..Default::default()
            };
            let fast = DecisionTreeRegressor::fit_seeded(&f, &t, params, seed).unwrap();
            let slow = fit_tree_regressor_reference(&f, &t, params, seed).unwrap();
            assert_eq!(fast, slow, "n={n} width={width}");
            let labels: Vec<usize> = t.iter().map(|&y| (y as usize) % 3).collect();
            let fast = DecisionTreeClassifier::fit_seeded(&f, &labels, params, seed).unwrap();
            let slow = fit_tree_classifier_reference(&f, &labels, params, seed).unwrap();
            assert_eq!(fast, slow, "classifier n={n} width={width}");
        }
    }

    #[test]
    fn fast_forest_and_boosting_are_bit_identical_to_reference() {
        let (f, t) = mixed_data(150, 4, 9);
        let fp = ForestParams {
            n_trees: 12,
            ..Default::default()
        };
        assert_eq!(
            RandomForestRegressor::fit(&f, &t, fp).unwrap(),
            fit_forest_regressor_reference(&f, &t, fp).unwrap()
        );
        let labels: Vec<usize> = t.iter().map(|&y| usize::from(y > 12.0)).collect();
        assert_eq!(
            RandomForestClassifier::fit(&f, &labels, fp).unwrap(),
            fit_forest_classifier_reference(&f, &labels, fp).unwrap()
        );
        let bp = BoostingParams {
            n_estimators: 20,
            ..Default::default()
        };
        assert_eq!(
            GradientBoostingRegressor::fit(&f, &t, bp).unwrap(),
            fit_boosting_reference(&f, &t, bp).unwrap()
        );
    }
}
