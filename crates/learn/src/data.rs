//! Dataset containers, train/test splitting and feature standardization.
//!
//! The paper emphasises *out-of-time* validation for the tier predictor and
//! ordinary random splits for the compression predictor; both are supported
//! here ([`train_test_split`] and [`Dataset::split_at`]).

use crate::error::LearnError;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dense feature matrix plus targets.
///
/// Regression targets live in `targets`; classification labels can be stored
/// in `labels`. Either may be empty depending on the task.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature rows; all rows must have the same width.
    pub features: Vec<Vec<f64>>,
    /// Regression targets (parallel to `features`), possibly empty.
    pub targets: Vec<f64>,
    /// Classification labels (parallel to `features`), possibly empty.
    pub labels: Vec<usize>,
    /// Optional feature names used in reports.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Build a regression dataset, validating shapes.
    pub fn regression(features: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, LearnError> {
        validate_features(&features)?;
        if features.len() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: features.len(),
                targets: targets.len(),
            });
        }
        Ok(Dataset {
            features,
            targets,
            labels: Vec::new(),
            feature_names: Vec::new(),
        })
    }

    /// Build a classification dataset, validating shapes.
    pub fn classification(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Result<Self, LearnError> {
        validate_features(&features)?;
        if features.len() != labels.len() {
            return Err(LearnError::LengthMismatch {
                features: features.len(),
                targets: labels.len(),
            });
        }
        Ok(Dataset {
            features,
            targets: Vec::new(),
            labels,
            feature_names: Vec::new(),
        })
    }

    /// Attach human-readable feature names.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Self {
        self.feature_names = names;
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns (0 for an empty dataset).
    pub fn width(&self) -> usize {
        self.features.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Deterministic split at a row index: `[0, idx)` is the first part and
    /// `[idx, len)` the second. Used for out-of-time validation where the
    /// rows are already in chronological order.
    pub fn split_at(&self, idx: usize) -> (Dataset, Dataset) {
        let idx = idx.min(self.len());
        let take = |range: std::ops::Range<usize>| Dataset {
            features: self.features[range.clone()].to_vec(),
            targets: if self.targets.is_empty() {
                Vec::new()
            } else {
                self.targets[range.clone()].to_vec()
            },
            labels: if self.labels.is_empty() {
                Vec::new()
            } else {
                self.labels[range.clone()].to_vec()
            },
            feature_names: self.feature_names.clone(),
        };
        (take(0..idx), take(idx..self.len()))
    }
}

/// A column-major (feature-major) view of a feature matrix: one contiguous
/// `f64` column per feature.
///
/// This is the layout the fast training paths operate on. The presort CART
/// builder sorts and scans whole feature columns, so storing features
/// feature-major keeps those passes sequential in memory, and a single
/// `ColumnMatrix` can be shared by every model trained on the same rows
/// (forest, boosting, the predictors upstream) without re-cloning row
/// vectors. Rows are recovered on demand with [`ColumnMatrix::row_to`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Column-major values: feature `c` occupies `values[c*n_rows .. (c+1)*n_rows]`.
    values: Vec<f64>,
}

impl ColumnMatrix {
    /// Build from row-major feature vectors, validating that all rows have
    /// the same width.
    pub fn from_rows<S: AsRef<[f64]>>(rows: &[S]) -> Result<Self, LearnError> {
        if rows.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let n_rows = rows.len();
        let n_cols = rows[0].as_ref().len();
        for row in rows {
            if row.as_ref().len() != n_cols {
                return Err(LearnError::RaggedFeatures {
                    expected: n_cols,
                    found: row.as_ref().len(),
                });
            }
        }
        let mut values = vec![0.0; n_rows * n_cols];
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.as_ref().iter().enumerate() {
                values[c * n_rows + r] = v;
            }
        }
        Ok(ColumnMatrix {
            n_rows,
            n_cols,
            values,
        })
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (features).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The contiguous values of feature column `c`.
    pub fn col(&self, c: usize) -> &[f64] {
        &self.values[c * self.n_rows..(c + 1) * self.n_rows]
    }

    /// Value of feature `c` for row `r`, with the same out-of-width
    /// semantics as indexing a row slice via `get` (missing feature = 0.0).
    pub fn value(&self, r: usize, c: usize) -> f64 {
        if c < self.n_cols {
            self.values[c * self.n_rows + r]
        } else {
            0.0
        }
    }

    /// Materialize row `r` into `buf` (cleared first).
    pub fn row_to(&self, r: usize, buf: &mut Vec<f64>) {
        buf.clear();
        for c in 0..self.n_cols {
            buf.push(self.values[c * self.n_rows + r]);
        }
    }
}

fn validate_features(features: &[Vec<f64>]) -> Result<(), LearnError> {
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    let width = features[0].len();
    for row in features {
        if row.len() != width {
            return Err(LearnError::RaggedFeatures {
                expected: width,
                found: row.len(),
            });
        }
    }
    Ok(())
}

/// Randomly split a dataset into train and test parts.
///
/// `test_fraction` is clamped to `[0, 1]`; the split is deterministic for a
/// given `seed`.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let test_len = ((data.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    let (test_idx, train_idx) = indices.split_at(test_len.min(data.len()));

    let pick = |idx: &[usize]| Dataset {
        features: idx.iter().map(|&i| data.features[i].clone()).collect(),
        targets: if data.targets.is_empty() {
            Vec::new()
        } else {
            idx.iter().map(|&i| data.targets[i]).collect()
        },
        labels: if data.labels.is_empty() {
            Vec::new()
        } else {
            idx.iter().map(|&i| data.labels[i]).collect()
        },
        feature_names: data.feature_names.clone(),
    };
    (pick(train_idx), pick(test_idx))
}

/// Per-feature standardization (zero mean, unit variance), fit on the
/// training set and applied to both train and test features. Needed by the
/// MLP and ridge models; tree models are scale-invariant.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit means and standard deviations on the given feature rows.
    pub fn fit(features: &[Vec<f64>]) -> Result<Self, LearnError> {
        validate_features(features)?;
        let width = features[0].len();
        let n = features.len() as f64;
        let mut means = vec![0.0; width];
        for row in features {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; width];
        for row in features {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Ok(Standardizer { means, stds })
    }

    /// Transform one feature row.
    pub fn transform_one(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    /// Transform a batch of rows.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_one(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let targets: Vec<f64> = (0..100).map(|i| i as f64).collect();
        Dataset::regression(features, targets).unwrap()
    }

    #[test]
    fn shapes_are_validated() {
        assert!(Dataset::regression(vec![], vec![]).is_err());
        assert!(Dataset::regression(vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(Dataset::regression(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 2.0]).is_err());
        assert!(Dataset::classification(vec![vec![1.0]], vec![0]).is_ok());
    }

    #[test]
    fn split_preserves_rows_and_is_deterministic() {
        let d = toy();
        let (train, test) = train_test_split(&d, 0.2, 7);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 20);
        let (train2, test2) = train_test_split(&d, 0.2, 7);
        assert_eq!(train.features, train2.features);
        assert_eq!(test.targets, test2.targets);
        // Different seeds give different splits.
        let (_, test3) = train_test_split(&d, 0.2, 8);
        assert_ne!(test.features, test3.features);
    }

    #[test]
    fn split_at_is_chronological() {
        let d = toy();
        let (a, b) = d.split_at(70);
        assert_eq!(a.len(), 70);
        assert_eq!(b.len(), 30);
        assert_eq!(a.features[0][0], 0.0);
        assert_eq!(b.features[0][0], 70.0);
        // Splitting beyond the end is clamped.
        let (c, e) = d.split_at(1000);
        assert_eq!(c.len(), 100);
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let d = toy();
        let st = Standardizer::fit(&d.features).unwrap();
        let t = st.transform(&d.features);
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / t.len() as f64;
        let var0: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / t.len() as f64;
        assert!(mean0.abs() < 1e-9);
        assert!((var0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standardizer_handles_constant_columns() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let st = Standardizer::fit(&rows).unwrap();
        let t = st.transform_one(&[5.0, 2.0]);
        assert_eq!(t[0], 0.0); // constant column maps to zero, no NaN
        assert!(t[1].abs() < 1e-9);
    }

    #[test]
    fn column_matrix_round_trips_rows() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = ColumnMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.col(1), &[2.0, 5.0]);
        assert_eq!(m.value(1, 0), 4.0);
        assert_eq!(m.value(0, 99), 0.0); // out-of-width reads as 0.0
        let mut buf = Vec::new();
        m.row_to(1, &mut buf);
        assert_eq!(buf, rows[1]);
        // Validation mirrors the row-major fit entry points.
        assert!(ColumnMatrix::from_rows::<Vec<f64>>(&[]).is_err());
        assert!(ColumnMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn width_and_len_helpers() {
        let d = toy();
        assert_eq!(d.len(), 100);
        assert_eq!(d.width(), 2);
        assert!(!d.is_empty());
    }
}
