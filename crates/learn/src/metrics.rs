//! Evaluation metrics: MAE, MAPE, R², accuracy, precision/recall/F1 and
//! confusion matrices — the metrics reported in Tables III and V–VIII of the
//! paper.

/// Mean absolute error.
///
/// Returns 0.0 for empty inputs.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "mae: length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute percentage error, in percent (as reported in the paper's
/// tables). Rows whose true value is zero are skipped to avoid division by
/// zero.
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "mape: length mismatch");
    let mut total = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() > f64::EPSILON {
            total += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * total / n as f64
    }
}

/// Coefficient of determination R².
///
/// Returns 0.0 when the true values have zero variance.
pub fn r2_score(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "r2: length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot <= f64::EPSILON {
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "rmse: length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mse: f64 = truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64;
    mse.sqrt()
}

/// A confusion matrix over `n_classes` labels.
///
/// `counts[t][p]` is the number of rows whose true class is `t` and whose
/// predicted class is `p` — the layout of Table III in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// `counts[true_class][predicted_class]`.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total number of rows.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|i| self.counts[i][i]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// True positives for a class.
    pub fn true_positives(&self, class: usize) -> usize {
        self.counts[class][class]
    }

    /// False positives for a class (predicted `class` but true label differs).
    pub fn false_positives(&self, class: usize) -> usize {
        (0..self.n_classes())
            .filter(|&t| t != class)
            .map(|t| self.counts[t][class])
            .sum()
    }

    /// False negatives for a class (true `class` but predicted differently).
    pub fn false_negatives(&self, class: usize) -> usize {
        (0..self.n_classes())
            .filter(|&p| p != class)
            .map(|p| self.counts[class][p])
            .sum()
    }
}

/// Build a confusion matrix from true and predicted labels.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> ConfusionMatrix {
    assert_eq!(truth.len(), pred.len(), "confusion_matrix: length mismatch");
    let mut counts = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        if t < n_classes && p < n_classes {
            counts[t][p] += 1;
        }
    }
    ConfusionMatrix { counts }
}

/// Precision for `class`: TP / (TP + FP). Returns 1.0 when nothing was
/// predicted as `class` (vacuous precision).
pub fn precision(cm: &ConfusionMatrix, class: usize) -> f64 {
    let tp = cm.true_positives(class) as f64;
    let fp = cm.false_positives(class) as f64;
    if tp + fp == 0.0 {
        1.0
    } else {
        tp / (tp + fp)
    }
}

/// Recall for `class`: TP / (TP + FN). Returns 1.0 when the class never
/// occurs in the truth.
pub fn recall(cm: &ConfusionMatrix, class: usize) -> f64 {
    let tp = cm.true_positives(class) as f64;
    let fneg = cm.false_negatives(class) as f64;
    if tp + fneg == 0.0 {
        1.0
    } else {
        tp / (tp + fneg)
    }
}

/// F1 score for `class`: harmonic mean of precision and recall.
pub fn f1_score(cm: &ConfusionMatrix, class: usize) -> f64 {
    let p = precision(cm, class);
    let r = recall(cm, class);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Macro-averaged F1 over all classes.
pub fn macro_f1(cm: &ConfusionMatrix) -> f64 {
    let n = cm.n_classes();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|c| f1_score(cm, c)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_rmse_basic() {
        let t = vec![1.0, 2.0, 3.0];
        let p = vec![1.0, 3.0, 5.0];
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - ((0.0 + 1.0 + 4.0) / 3.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn mape_is_percentage_and_skips_zero_truth() {
        let t = vec![2.0, 4.0, 0.0];
        let p = vec![1.0, 5.0, 10.0];
        // |1/2| + |1/4| over 2 valid rows = 0.375 -> 37.5%
        assert!((mape(&t, &p) - 37.5).abs() < 1e-12);
        assert_eq!(mape(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn r2_perfect_and_mean_predictions() {
        let t = vec![1.0, 2.0, 3.0, 4.0];
        assert!((r2_score(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = vec![2.5; 4];
        assert!(r2_score(&t, &mean_pred).abs() < 1e-12);
        // Constant truth -> defined as 0.
        assert_eq!(r2_score(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn confusion_matrix_matches_paper_layout() {
        // Table III: Hot/Hot = 291, Hot/Cool = 12, Cool/Hot = 12, Cool/Cool = 445.
        // Encode Hot = 0, Cool = 1. (rows = ideal/true, cols = predicted)
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for _ in 0..291 {
            truth.push(0);
            pred.push(0);
        }
        for _ in 0..12 {
            truth.push(0);
            pred.push(1);
        }
        for _ in 0..12 {
            truth.push(1);
            pred.push(0);
        }
        for _ in 0..445 {
            truth.push(1);
            pred.push(1);
        }
        let cm = confusion_matrix(&truth, &pred, 2);
        assert_eq!(cm.counts[0][0], 291);
        assert_eq!(cm.counts[0][1], 12);
        assert_eq!(cm.counts[1][0], 12);
        assert_eq!(cm.counts[1][1], 445);
        assert_eq!(cm.total(), 760);
        // The paper reports F1 > 0.96 for this matrix.
        assert!(f1_score(&cm, 0) > 0.96);
        assert!(f1_score(&cm, 1) > 0.96);
        assert!(cm.accuracy() > 0.96);
    }

    #[test]
    fn precision_recall_edge_cases() {
        // Class 1 never predicted and never true.
        let cm = confusion_matrix(&[0, 0], &[0, 0], 2);
        assert_eq!(precision(&cm, 1), 1.0);
        assert_eq!(recall(&cm, 1), 1.0);
        assert_eq!(f1_score(&cm, 1), 1.0);
        assert_eq!(macro_f1(&cm), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}
