//! CART decision trees for regression and classification.
//!
//! These are the building blocks of the [`crate::forest`] and
//! [`crate::boosting`] ensembles. Splits are chosen greedily: variance
//! reduction for regression, Gini impurity reduction for classification.
//! Candidate thresholds are the midpoints between consecutive distinct
//! sorted feature values, which is exact for the small-to-medium feature
//! spaces used by COMPREDICT and the tier predictor.
//!
//! # Fast path vs reference
//!
//! The production builder here is the **presort** fast path: every feature
//! column is sorted once per tree, and the per-feature sorted position
//! arrays are stably partitioned down the recursion, so a node costs
//! `O(features · samples)` instead of the per-node re-sorts the seed
//! implementation paid. Split scores are evaluated by a single left-to-right
//! scan with running prefix statistics ([`SplitScan`]): `O(1)` per candidate
//! threshold for regression, `O(classes)` for Gini.
//!
//! The seed-shaped builder (per-node `sort_by`, clone-based bootstrap,
//! sequential everything) is preserved in [`crate::reference`] as a
//! differential oracle. Both builders call the *same* scoring code in this
//! module — [`SplitScan`] and [`best_split_scan`] — so every floating-point
//! operation that decides a split is defined exactly once and the two paths
//! are bit-for-bit identical by construction (and pinned by
//! `tests/differential_learn.rs`).

use crate::data::ColumnMatrix;
use crate::error::LearnError;
use crate::{Classifier, Regressor};

/// Hyper-parameters shared by regression and classification trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth of the tree (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features considered at each split. `None` means all
    /// features; forests set this to sqrt / one-third of the feature count.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    /// Walk the tree reading feature `f` through `get` (out-of-width
    /// features read as 0.0, matching slice-`get` semantics).
    pub(crate) fn predict_by(&self, get: &impl Fn(usize) -> f64) -> f64 {
        let mut node = self;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if get(*feature) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn predict(&self, features: &[f64]) -> f64 {
        self.predict_by(&|f| features.get(f).copied().unwrap_or(0.0))
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.leaves() + right.leaves(),
        }
    }
}

/// Criterion used to score candidate splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Criterion {
    /// Sum of squared deviations from the mean (regression).
    Variance,
    /// Gini impurity (classification); targets are class labels cast to f64.
    Gini,
}

/// Shared split-scoring state: node totals plus running left-side prefix
/// statistics.
///
/// Every floating-point operation that decides a split lives here (and in
/// [`best_split_scan`]), used by both the fast presort builder and the
/// [`crate::reference`] oracle, which is what makes the two bit-for-bit
/// identical. Node totals are accumulated in ascending sample order (the
/// node's `idx` order); left statistics are accumulated in feature-sorted
/// order during the scan.
pub(crate) struct SplitScan {
    criterion: Criterion,
    // Node totals.
    n: usize,
    sum: f64,
    sumsq: f64,
    counts: Vec<usize>,
    // Running left-side statistics.
    ln: usize,
    lsum: f64,
    lsumsq: f64,
    lcounts: Vec<usize>,
}

impl SplitScan {
    pub(crate) fn new(criterion: Criterion, n_classes: usize) -> Self {
        SplitScan {
            criterion,
            n: 0,
            sum: 0.0,
            sumsq: 0.0,
            counts: vec![0; n_classes],
            ln: 0,
            lsum: 0.0,
            lsumsq: 0.0,
            lcounts: vec![0; n_classes],
        }
    }

    /// Clear the node totals (starting a new node).
    pub(crate) fn reset_node(&mut self) {
        self.n = 0;
        self.sum = 0.0;
        self.sumsq = 0.0;
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Accumulate one node sample (call in ascending sample order).
    pub(crate) fn add_node_sample(&mut self, target: f64) {
        self.n += 1;
        match self.criterion {
            Criterion::Variance => {
                self.sum += target;
                self.sumsq += target * target;
            }
            Criterion::Gini => self.counts[target as usize] += 1,
        }
    }

    /// Impurity of the whole node: `Σt² − (Σt)²/n` for variance (equal to
    /// the sum of squared deviations up to rounding), `gini · n` for Gini.
    pub(crate) fn node_impurity(&self) -> f64 {
        match self.criterion {
            Criterion::Variance => self.sumsq - self.sum * self.sum / self.n as f64,
            Criterion::Gini => gini_times_n(&self.counts, self.n),
        }
    }

    /// Value this node predicts as a leaf: the target mean for variance,
    /// the majority label (ties to the smaller label) for Gini.
    pub(crate) fn leaf_value(&self) -> f64 {
        match self.criterion {
            Criterion::Variance => self.sum / self.n as f64,
            Criterion::Gini => {
                let mut best: Option<(usize, usize)> = None; // (count, label)
                for (label, &count) in self.counts.iter().enumerate() {
                    if count > 0 && best.map(|(c, _)| count > c).unwrap_or(true) {
                        best = Some((count, label));
                    }
                }
                best.map(|(_, label)| label as f64).unwrap_or(0.0)
            }
        }
    }

    /// Clear the running left statistics (starting a new feature scan).
    pub(crate) fn reset_left(&mut self) {
        self.ln = 0;
        self.lsum = 0.0;
        self.lsumsq = 0.0;
        self.lcounts.iter_mut().for_each(|c| *c = 0);
    }

    /// Move one sample (in feature-sorted order) to the left side.
    pub(crate) fn push_left(&mut self, target: f64) {
        self.ln += 1;
        match self.criterion {
            Criterion::Variance => {
                self.lsum += target;
                self.lsumsq += target * target;
            }
            Criterion::Gini => self.lcounts[target as usize] += 1,
        }
    }

    /// Score of splitting at the current scan position:
    /// `impurity(left) + impurity(right)`.
    pub(crate) fn split_score(&self) -> f64 {
        let rn = self.n - self.ln;
        match self.criterion {
            Criterion::Variance => {
                let left = self.lsumsq - self.lsum * self.lsum / self.ln as f64;
                let rsum = self.sum - self.lsum;
                let rsumsq = self.sumsq - self.lsumsq;
                let right = rsumsq - rsum * rsum / rn as f64;
                left + right
            }
            Criterion::Gini => {
                let left = gini_times_n(&self.lcounts, self.ln);
                let rnf = rn as f64;
                let mut acc = 0.0;
                for (&c, &lc) in self.counts.iter().zip(&self.lcounts) {
                    let rc = c - lc;
                    if rc > 0 {
                        let p = rc as f64 / rnf;
                        acc += p * p;
                    }
                }
                left + (1.0 - acc) * rnf
            }
        }
    }
}

/// `(1 − Σ p²) · n`, summed over labels in ascending order, zero-count
/// labels skipped (so the term sequence matches a count map that only
/// contains present labels).
fn gini_times_n(counts: &[usize], n: usize) -> f64 {
    let nf = n as f64;
    let mut acc = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / nf;
            acc += p * p;
        }
    }
    (1.0 - acc) * nf
}

/// Scan one feature's samples in sorted order and return the best
/// `(threshold, score)`, or `None` when no valid candidate exists.
///
/// `ordered` yields `(feature value, target)` pairs in ascending feature
/// order (ties in ascending sample order). Candidates are the positions
/// `pos ∈ [max(min_samples_leaf, 1), len − min_samples_leaf]` whose adjacent
/// values differ by more than `f64::EPSILON`; ties on the score keep the
/// earliest position. This is the one scan both tree builders share.
pub(crate) fn best_split_scan<I>(
    scan: &mut SplitScan,
    len: usize,
    min_samples_leaf: usize,
    ordered: I,
) -> Option<(f64, f64)>
where
    I: Iterator<Item = (f64, f64)>,
{
    scan.reset_left();
    let lo_bound = min_samples_leaf.max(1);
    let hi_bound = len.saturating_sub(min_samples_leaf);
    let mut best: Option<(f64, f64)> = None;
    let mut prev = 0.0f64;
    for (pos, (value, target)) in ordered.enumerate() {
        if pos >= lo_bound && pos <= hi_bound && (value - prev).abs() > f64::EPSILON {
            let threshold = 0.5 * (prev + value);
            let score = scan.split_score();
            if best.map(|(_, s)| score < s).unwrap_or(true) {
                best = Some((threshold, score));
            }
        }
        scan.push_left(target);
        prev = value;
    }
    best
}

/// The xorshift64* stream used for per-split feature subsampling —
/// deterministic, dependency-free, shared by the fast and reference
/// builders so they consume identical draws in identical order.
pub(crate) struct SubsampleRng {
    state: u64,
}

impl SubsampleRng {
    pub(crate) fn new(seed: u64) -> Self {
        SubsampleRng { state: seed | 1 }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Fill `out` with the candidate feature ids for one node. Draws from
    /// the stream only when a strict subset is sampled (Fisher–Yates over
    /// indices), exactly as the seed implementation did.
    pub(crate) fn candidate_features(
        &mut self,
        width: usize,
        max_features: Option<usize>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.extend(0..width);
        if let Some(k) = max_features {
            if k < width {
                for i in 0..k {
                    let j = i + (self.next_rand() as usize) % (width - i);
                    out.swap(i, j);
                }
                out.truncate(k);
            }
        }
    }
}

pub(crate) fn validate(features: &[Vec<f64>], targets: &[f64]) -> Result<(), LearnError> {
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    if features.len() != targets.len() {
        return Err(LearnError::LengthMismatch {
            features: features.len(),
            targets: targets.len(),
        });
    }
    let width = features[0].len();
    for row in features {
        if row.len() != width {
            return Err(LearnError::RaggedFeatures {
                expected: width,
                found: row.len(),
            });
        }
    }
    Ok(())
}

/// Per-position feature columns for one tree fit: either the shared
/// [`ColumnMatrix`] (positions are dataset rows) or a bootstrap gather
/// (one flat column-major buffer — no per-row clones).
enum FeatCols<'a> {
    Shared(&'a ColumnMatrix),
    Gathered { n: usize, flat: Vec<f64> },
}

impl FeatCols<'_> {
    fn width(&self) -> usize {
        match self {
            FeatCols::Shared(c) => c.n_cols(),
            FeatCols::Gathered { n, flat } => {
                if *n == 0 {
                    0
                } else {
                    flat.len() / n
                }
            }
        }
    }

    fn col(&self, c: usize) -> &[f64] {
        match self {
            FeatCols::Shared(m) => m.col(c),
            FeatCols::Gathered { n, flat } => &flat[c * n..(c + 1) * n],
        }
    }
}

/// Sort positions `0..n` by each feature column: the per-tree presort the
/// fast builder partitions down the recursion. Ties order by position,
/// which is exactly what a stable per-node sort by value produces.
fn presort(cols: &FeatCols<'_>, n: usize) -> Vec<Vec<u32>> {
    (0..cols.width())
        .map(|f| {
            let col = cols.col(f);
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                col[a as usize]
                    .partial_cmp(&col[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order
        })
        .collect()
}

/// Presorted position arrays for a shared column matrix, reusable across
/// many tree fits on the same features (gradient-boosting stages).
pub(crate) fn presort_columns(cols: &ColumnMatrix) -> Vec<Vec<u32>> {
    presort(&FeatCols::Shared(cols), cols.n_rows())
}

/// The fast presort CART builder.
struct FastBuilder<'a> {
    cols: &'a FeatCols<'a>,
    targets: &'a [f64],
    params: TreeParams,
    scan: SplitScan,
    rng: SubsampleRng,
    /// Per-feature position arrays; the segment `[lo, hi)` of every array
    /// holds the current node's positions in feature-sorted order.
    sorted: Vec<Vec<u32>>,
    /// The current node's positions in ascending order (the reference's
    /// `idx` order), partitioned alongside `sorted`.
    order: Vec<u32>,
    goes_left: Vec<bool>,
    scratch: Vec<u32>,
    cand: Vec<usize>,
}

impl FastBuilder<'_> {
    fn build(&mut self, lo: usize, hi: usize, depth: usize) -> Node {
        let len = hi - lo;
        self.scan.reset_node();
        for i in lo..hi {
            let p = self.order[i] as usize;
            self.scan.add_node_sample(self.targets[p]);
        }
        if depth >= self.params.max_depth
            || len < self.params.min_samples_split
            || len < 2 * self.params.min_samples_leaf
        {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        let parent_impurity = self.scan.node_impurity();
        if parent_impurity <= 1e-12 {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        let width = self.cols.width();
        self.rng
            .candidate_features(width, self.params.max_features, &mut self.cand);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for ci in 0..self.cand.len() {
            let feat = self.cand[ci];
            let col = self.cols.col(feat);
            let targets = self.targets;
            let seg = &self.sorted[feat][lo..hi];
            if let Some((threshold, score)) = best_split_scan(
                &mut self.scan,
                len,
                self.params.min_samples_leaf,
                seg.iter().map(|&p| (col[p as usize], targets[p as usize])),
            ) {
                if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                    best = Some((feat, threshold, score));
                }
            }
        }

        let Some((feature, threshold, score)) = best else {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        };
        if score >= parent_impurity - 1e-12 {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        // Mark left membership and count it; bail to a leaf if the split
        // degenerates (midpoint rounding can park every sample on one side).
        let col = self.cols.col(feature);
        let mut nl = 0usize;
        for i in lo..hi {
            let p = self.order[i] as usize;
            let left = col[p] <= threshold;
            self.goes_left[p] = left;
            nl += usize::from(left);
        }
        if nl == 0 || nl == len {
            return Node::Leaf {
                value: self.scan.leaf_value(),
            };
        }
        // Stable-partition every per-feature array (and the idx-order
        // array) so each child's segment stays feature-sorted.
        for f in 0..width {
            partition_segment(
                &mut self.sorted[f],
                lo,
                hi,
                &self.goes_left,
                &mut self.scratch,
            );
        }
        partition_segment(&mut self.order, lo, hi, &self.goes_left, &mut self.scratch);
        let left = self.build(lo, lo + nl, depth + 1);
        let right = self.build(lo + nl, hi, depth + 1);
        Node::Split {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

/// Stably partition `arr[lo..hi]` so positions with `goes_left` come first,
/// both halves preserving their relative order.
fn partition_segment(
    arr: &mut [u32],
    lo: usize,
    hi: usize,
    goes_left: &[bool],
    scratch: &mut Vec<u32>,
) {
    scratch.clear();
    let mut w = lo;
    for i in lo..hi {
        let p = arr[i];
        if goes_left[p as usize] {
            arr[w] = p;
            w += 1;
        } else {
            scratch.push(p);
        }
    }
    arr[w..hi].copy_from_slice(scratch);
}

/// Fit one tree with the fast presort builder. `targets` are per-position
/// values (labels cast to f64 for Gini); `presorted` lets callers reuse a
/// master presort across fits on the same columns.
fn fit_fast(
    cols: &FeatCols<'_>,
    targets: &[f64],
    params: TreeParams,
    criterion: Criterion,
    n_classes: usize,
    seed: u64,
    presorted: Option<&[Vec<u32>]>,
) -> Node {
    let n = targets.len();
    let sorted = match presorted {
        Some(master) => master.to_vec(),
        None => presort(cols, n),
    };
    let mut builder = FastBuilder {
        cols,
        targets,
        params,
        scan: SplitScan::new(criterion, n_classes),
        rng: SubsampleRng::new(seed),
        sorted,
        order: (0..n as u32).collect(),
        goes_left: vec![false; n],
        scratch: Vec::with_capacity(n),
        cand: Vec::new(),
    };
    builder.build(0, n, 0)
}

/// Gather the bootstrap view of `cols`/`targets` selected by `rows`:
/// per-position targets plus one flat column-major value buffer (no
/// per-row `Vec` clones).
fn gather_bootstrap(
    cols: &ColumnMatrix,
    targets: &[f64],
    rows: &[u32],
) -> (FeatCols<'static>, Vec<f64>) {
    let n = rows.len();
    let width = cols.n_cols();
    let mut flat = vec![0.0; width * n];
    for f in 0..width {
        let src = cols.col(f);
        let dst = &mut flat[f * n..(f + 1) * n];
        for (d, &r) in dst.iter_mut().zip(rows) {
            *d = src[r as usize];
        }
    }
    let boot_targets: Vec<f64> = rows.iter().map(|&r| targets[r as usize]).collect();
    (FeatCols::Gathered { n, flat }, boot_targets)
}

/// A CART regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeRegressor {
    root: Node,
    params: TreeParams,
}

impl DecisionTreeRegressor {
    /// Fit a regression tree with the given parameters.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        params: TreeParams,
    ) -> Result<Self, LearnError> {
        Self::fit_seeded(features, targets, params, 0x5EED)
    }

    /// Fit with an explicit seed for deterministic feature subsampling.
    pub fn fit_seeded(
        features: &[Vec<f64>],
        targets: &[f64],
        params: TreeParams,
        seed: u64,
    ) -> Result<Self, LearnError> {
        validate(features, targets)?;
        let cols = ColumnMatrix::from_rows(features)?;
        Self::fit_columns_seeded(&cols, targets, params, seed)
    }

    /// Fit on a shared column-major matrix.
    pub fn fit_columns(
        cols: &ColumnMatrix,
        targets: &[f64],
        params: TreeParams,
    ) -> Result<Self, LearnError> {
        Self::fit_columns_seeded(cols, targets, params, 0x5EED)
    }

    /// [`DecisionTreeRegressor::fit_columns`] with an explicit seed.
    pub fn fit_columns_seeded(
        cols: &ColumnMatrix,
        targets: &[f64],
        params: TreeParams,
        seed: u64,
    ) -> Result<Self, LearnError> {
        if cols.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if cols.n_rows() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: cols.n_rows(),
                targets: targets.len(),
            });
        }
        let root = fit_fast(
            &FeatCols::Shared(cols),
            targets,
            params,
            Criterion::Variance,
            0,
            seed,
            None,
        );
        Ok(DecisionTreeRegressor { root, params })
    }

    /// Fit reusing a master presort of `cols` (gradient-boosting stages fit
    /// many trees on the same feature columns).
    pub(crate) fn fit_columns_presorted(
        cols: &ColumnMatrix,
        targets: &[f64],
        params: TreeParams,
        seed: u64,
        presorted: &[Vec<u32>],
    ) -> Self {
        let root = fit_fast(
            &FeatCols::Shared(cols),
            targets,
            params,
            Criterion::Variance,
            0,
            seed,
            Some(presorted),
        );
        DecisionTreeRegressor { root, params }
    }

    /// Fit on the bootstrap sample `rows` of a shared column matrix
    /// (bagging by index — no row clones). Inputs are pre-validated by the
    /// forest.
    pub(crate) fn fit_bootstrap_indices(
        cols: &ColumnMatrix,
        targets: &[f64],
        rows: &[u32],
        params: TreeParams,
        seed: u64,
    ) -> Self {
        let (boot_cols, boot_targets) = gather_bootstrap(cols, targets, rows);
        let root = fit_fast(
            &boot_cols,
            &boot_targets,
            params,
            Criterion::Variance,
            0,
            seed,
            None,
        );
        DecisionTreeRegressor { root, params }
    }

    /// Assemble a tree from a pre-built root (reference builders).
    pub(crate) fn from_parts(root: Node, params: TreeParams) -> Self {
        DecisionTreeRegressor { root, params }
    }

    /// The fitted tree's root (prediction walks for the ensembles).
    pub(crate) fn root(&self) -> &Node {
        &self.root
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaves in the fitted tree.
    pub fn leaf_count(&self) -> usize {
        self.root.leaves()
    }

    /// The parameters the tree was fit with.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }
}

impl Regressor for DecisionTreeRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        self.root.predict(features)
    }
}

/// A CART classification tree (Gini impurity).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeClassifier {
    root: Node,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Fit a classification tree on integer labels.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        params: TreeParams,
    ) -> Result<Self, LearnError> {
        Self::fit_seeded(features, labels, params, 0x5EED)
    }

    /// Fit with an explicit seed for deterministic feature subsampling.
    pub fn fit_seeded(
        features: &[Vec<f64>],
        labels: &[usize],
        params: TreeParams,
        seed: u64,
    ) -> Result<Self, LearnError> {
        let targets: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        validate(features, &targets)?;
        let cols = ColumnMatrix::from_rows(features)?;
        Self::fit_classifier_columns(&cols, &targets, labels, params, seed)
    }

    /// Fit on a shared column-major matrix.
    pub fn fit_columns(
        cols: &ColumnMatrix,
        labels: &[usize],
        params: TreeParams,
    ) -> Result<Self, LearnError> {
        Self::fit_columns_seeded(cols, labels, params, 0x5EED)
    }

    /// [`DecisionTreeClassifier::fit_columns`] with an explicit seed.
    pub fn fit_columns_seeded(
        cols: &ColumnMatrix,
        labels: &[usize],
        params: TreeParams,
        seed: u64,
    ) -> Result<Self, LearnError> {
        if cols.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if cols.n_rows() != labels.len() {
            return Err(LearnError::LengthMismatch {
                features: cols.n_rows(),
                targets: labels.len(),
            });
        }
        let targets: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        Self::fit_classifier_columns(cols, &targets, labels, params, seed)
    }

    fn fit_classifier_columns(
        cols: &ColumnMatrix,
        targets: &[f64],
        labels: &[usize],
        params: TreeParams,
        seed: u64,
    ) -> Result<Self, LearnError> {
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let root = fit_fast(
            &FeatCols::Shared(cols),
            targets,
            params,
            Criterion::Gini,
            n_classes,
            seed,
            None,
        );
        Ok(DecisionTreeClassifier { root, n_classes })
    }

    /// Fit on the bootstrap sample `rows` of a shared column matrix
    /// (bagging by index). `targets` are the full labels cast to f64.
    pub(crate) fn fit_bootstrap_indices(
        cols: &ColumnMatrix,
        targets: &[f64],
        rows: &[u32],
        params: TreeParams,
        seed: u64,
    ) -> Self {
        let (boot_cols, boot_targets) = gather_bootstrap(cols, targets, rows);
        // The per-tree class count mirrors the reference, which derives it
        // from the bootstrap sample's own labels.
        let n_classes = boot_targets.iter().map(|&t| t as usize).max().unwrap_or(0) + 1;
        let root = fit_fast(
            &boot_cols,
            &boot_targets,
            params,
            Criterion::Gini,
            n_classes,
            seed,
            None,
        );
        DecisionTreeClassifier { root, n_classes }
    }

    /// Assemble a tree from pre-built parts (reference builders).
    pub(crate) fn from_parts(root: Node, n_classes: usize) -> Self {
        DecisionTreeClassifier { root, n_classes }
    }

    /// The fitted tree's root (prediction walks for the ensembles).
    pub(crate) fn root(&self) -> &Node {
        &self.root
    }

    /// Number of classes seen during training.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl Classifier for DecisionTreeClassifier {
    fn predict_one(&self, features: &[f64]) -> usize {
        self.root.predict(features).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 if x < 5 else 20, with a second irrelevant feature.
        let features: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64 / 5.0, (i % 3) as f64])
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| if f[0] < 5.0 { 10.0 } else { 20.0 })
            .collect();
        (features, targets)
    }

    #[test]
    fn regression_tree_learns_step_function() {
        let (f, t) = step_data();
        let tree = DecisionTreeRegressor::fit(&f, &t, TreeParams::default()).unwrap();
        assert_eq!(tree.predict_one(&[1.0, 0.0]), 10.0);
        assert_eq!(tree.predict_one(&[9.0, 0.0]), 20.0);
        assert!(tree.depth() >= 1);
        assert!(tree.leaf_count() >= 2);
    }

    #[test]
    fn regression_tree_respects_max_depth_zero() {
        let (f, t) = step_data();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let tree = DecisionTreeRegressor::fit(&f, &t, params).unwrap();
        assert_eq!(tree.depth(), 0);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        assert!((tree.predict_one(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_fits_piecewise_linear_reasonably() {
        let features: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<f64> = features.iter().map(|f| f[0] * 2.0 + 1.0).collect();
        let tree = DecisionTreeRegressor::fit(&features, &targets, TreeParams::default()).unwrap();
        let preds: Vec<f64> = features.iter().map(|f| tree.predict_one(f)).collect();
        let err = crate::metrics::mae(&targets, &preds);
        assert!(err < 0.5, "mae = {err}");
    }

    #[test]
    fn classification_tree_separates_two_blobs() {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            features.push(vec![i as f64 * 0.1, 0.0]);
            labels.push(0);
            features.push(vec![10.0 + i as f64 * 0.1, 0.0]);
            labels.push(1);
        }
        let tree = DecisionTreeClassifier::fit(&features, &labels, TreeParams::default()).unwrap();
        assert_eq!(tree.predict_one(&[1.0, 0.0]), 0);
        assert_eq!(tree.predict_one(&[12.0, 0.0]), 1);
        assert_eq!(tree.n_classes(), 2);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(DecisionTreeRegressor::fit(&[], &[], TreeParams::default()).is_err());
        assert!(
            DecisionTreeRegressor::fit(&[vec![1.0]], &[1.0, 2.0], TreeParams::default()).is_err()
        );
        assert!(DecisionTreeRegressor::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[1.0, 2.0],
            TreeParams::default()
        )
        .is_err());
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets = vec![7.0; 20];
        let tree = DecisionTreeRegressor::fit(&features, &targets, TreeParams::default()).unwrap();
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_one(&[3.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let (f, t) = step_data();
        let params = TreeParams {
            min_samples_leaf: 10,
            ..Default::default()
        };
        let tree = DecisionTreeRegressor::fit(&f, &t, params).unwrap();
        // With 50 rows and min 10 per leaf, there can be at most 5 leaves.
        assert!(tree.leaf_count() <= 5);
    }

    #[test]
    fn gini_leaf_vote_breaks_ties_deterministically() {
        // Regression test: the majority vote once picked an arbitrary label
        // on tied counts (hash-map iteration order), making classification
        // predictions differ from run to run. Ties must go to the smaller
        // label.
        let mut scan = SplitScan::new(Criterion::Gini, 2);
        for &t in &[1.0, 0.0, 1.0, 0.0] {
            scan.add_node_sample(t);
        }
        for _ in 0..32 {
            assert_eq!(scan.leaf_value(), 0.0);
        }
    }

    #[test]
    fn column_fit_equals_row_fit() {
        let (f, t) = step_data();
        let cols = ColumnMatrix::from_rows(&f).unwrap();
        let by_rows = DecisionTreeRegressor::fit_seeded(&f, &t, TreeParams::default(), 7).unwrap();
        let by_cols =
            DecisionTreeRegressor::fit_columns_seeded(&cols, &t, TreeParams::default(), 7).unwrap();
        assert_eq!(by_rows, by_cols);
        let labels: Vec<usize> = t.iter().map(|&y| usize::from(y > 15.0)).collect();
        let c_rows =
            DecisionTreeClassifier::fit_seeded(&f, &labels, TreeParams::default(), 7).unwrap();
        let c_cols =
            DecisionTreeClassifier::fit_columns_seeded(&cols, &labels, TreeParams::default(), 7)
                .unwrap();
        assert_eq!(c_rows, c_cols);
    }

    #[test]
    fn duplicate_feature_values_split_cleanly() {
        // Heavily tied feature values stress the stable partitioning of the
        // presorted arrays: ties must stay in ascending sample order.
        let features: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 4) as f64]).collect();
        let targets: Vec<f64> = (0..60).map(|i| if i % 4 < 2 { 1.0 } else { 5.0 }).collect();
        let tree = DecisionTreeRegressor::fit(&features, &targets, TreeParams::default()).unwrap();
        assert_eq!(tree.predict_one(&[0.0]), 1.0);
        assert_eq!(tree.predict_one(&[3.0]), 5.0);
    }
}
