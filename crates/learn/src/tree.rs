//! CART decision trees for regression and classification.
//!
//! These are the building blocks of the [`crate::forest`] and
//! [`crate::boosting`] ensembles. Splits are chosen greedily: variance
//! reduction for regression, Gini impurity reduction for classification.
//! Candidate thresholds are the midpoints between consecutive distinct
//! sorted feature values, which is exact for the small-to-medium feature
//! spaces used by COMPREDICT and the tier predictor.

use crate::error::LearnError;
use crate::{Classifier, Regressor};
use rand::Rng;

/// Hyper-parameters shared by regression and classification trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth of the tree (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features considered at each split. `None` means all
    /// features; forests set this to sqrt / one-third of the feature count.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, features: &[f64]) -> f64 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if features.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    left.predict(features)
                } else {
                    right.predict(features)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.leaves() + right.leaves(),
        }
    }
}

/// Criterion used to score candidate splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    /// Sum of squared deviations from the mean (regression).
    Variance,
    /// Gini impurity (classification); targets are class labels cast to f64.
    Gini,
}

fn leaf_value(targets: &[f64], idx: &[usize], criterion: Criterion) -> f64 {
    match criterion {
        Criterion::Variance => idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64,
        Criterion::Gini => {
            // Majority vote over integer labels.
            let mut counts: std::collections::HashMap<i64, usize> =
                std::collections::HashMap::new();
            for &i in idx {
                *counts.entry(targets[i] as i64).or_insert(0) += 1;
            }
            counts
                .into_iter()
                // Ties on the count are broken towards the smaller label so
                // the vote does not depend on hash-map iteration order.
                .max_by_key(|&(label, c)| (c, std::cmp::Reverse(label)))
                .map(|(label, _)| label as f64)
                .unwrap_or(0.0)
        }
    }
}

fn impurity(targets: &[f64], idx: &[usize], criterion: Criterion) -> f64 {
    match criterion {
        Criterion::Variance => {
            let n = idx.len() as f64;
            let mean = idx.iter().map(|&i| targets[i]).sum::<f64>() / n;
            idx.iter()
                .map(|&i| (targets[i] - mean).powi(2))
                .sum::<f64>()
        }
        Criterion::Gini => {
            let n = idx.len() as f64;
            let mut counts: std::collections::HashMap<i64, usize> =
                std::collections::HashMap::new();
            for &i in idx {
                *counts.entry(targets[i] as i64).or_insert(0) += 1;
            }
            let gini = 1.0
                - counts
                    .values()
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p
                    })
                    .sum::<f64>();
            gini * n
        }
    }
}

struct Builder<'a> {
    features: &'a [Vec<f64>],
    targets: &'a [f64],
    params: TreeParams,
    criterion: Criterion,
    rng_state: u64,
}

impl<'a> Builder<'a> {
    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free feature subsampling.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn candidate_features(&mut self, width: usize) -> Vec<usize> {
        match self.params.max_features {
            None => (0..width).collect(),
            Some(k) if k >= width => (0..width).collect(),
            Some(k) => {
                // Sample k distinct features (Fisher-Yates over indices).
                let mut all: Vec<usize> = (0..width).collect();
                for i in 0..k {
                    let j = i + (self.next_rand() as usize) % (width - i);
                    all.swap(i, j);
                }
                all.truncate(k);
                all
            }
        }
    }

    fn build(&mut self, idx: &[usize], depth: usize) -> Node {
        let targets = self.targets;
        let criterion = self.criterion;
        let make_leaf = || Node::Leaf {
            value: leaf_value(targets, idx, criterion),
        };
        if depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || idx.len() < 2 * self.params.min_samples_leaf
        {
            return make_leaf();
        }
        let parent_impurity = impurity(self.targets, idx, self.criterion);
        if parent_impurity <= 1e-12 {
            return make_leaf();
        }
        let width = self.features[0].len();
        let candidates = self.candidate_features(width);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted_idx = idx.to_vec();
        for &feat in &candidates {
            sorted_idx.sort_by(|&a, &b| {
                self.features[a][feat]
                    .partial_cmp(&self.features[b][feat])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Scan split positions between distinct values.
            for pos in
                self.params.min_samples_leaf..=(sorted_idx.len() - self.params.min_samples_leaf)
            {
                if pos == 0 || pos == sorted_idx.len() {
                    continue;
                }
                let lo = self.features[sorted_idx[pos - 1]][feat];
                let hi = self.features[sorted_idx[pos]][feat];
                if (hi - lo).abs() <= f64::EPSILON {
                    continue;
                }
                let threshold = 0.5 * (lo + hi);
                let (left, right) = sorted_idx.split_at(pos);
                let score = impurity(self.targets, left, self.criterion)
                    + impurity(self.targets, right, self.criterion);
                if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                    best = Some((feat, threshold, score));
                }
            }
        }

        let Some((feature, threshold, score)) = best else {
            return make_leaf();
        };
        if score >= parent_impurity - 1e-12 {
            return make_leaf();
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.features[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf();
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(&left_idx, depth + 1)),
            right: Box::new(self.build(&right_idx, depth + 1)),
        }
    }
}

fn validate(features: &[Vec<f64>], targets: &[f64]) -> Result<(), LearnError> {
    if features.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    if features.len() != targets.len() {
        return Err(LearnError::LengthMismatch {
            features: features.len(),
            targets: targets.len(),
        });
    }
    let width = features[0].len();
    for row in features {
        if row.len() != width {
            return Err(LearnError::RaggedFeatures {
                expected: width,
                found: row.len(),
            });
        }
    }
    Ok(())
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    root: Node,
    params: TreeParams,
}

impl DecisionTreeRegressor {
    /// Fit a regression tree with the given parameters.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        params: TreeParams,
    ) -> Result<Self, LearnError> {
        Self::fit_seeded(features, targets, params, 0x5EED)
    }

    /// Fit with an explicit seed for deterministic feature subsampling.
    pub fn fit_seeded(
        features: &[Vec<f64>],
        targets: &[f64],
        params: TreeParams,
        seed: u64,
    ) -> Result<Self, LearnError> {
        validate(features, targets)?;
        let mut builder = Builder {
            features,
            targets,
            params,
            criterion: Criterion::Variance,
            rng_state: seed | 1,
        };
        let idx: Vec<usize> = (0..features.len()).collect();
        let root = builder.build(&idx, 0);
        Ok(DecisionTreeRegressor { root, params })
    }

    /// Fit on a bootstrap sample drawn with the provided RNG (used by
    /// random forests).
    pub(crate) fn fit_bootstrap<R: Rng>(
        features: &[Vec<f64>],
        targets: &[f64],
        params: TreeParams,
        rng: &mut R,
    ) -> Result<Self, LearnError> {
        validate(features, targets)?;
        let n = features.len();
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let boot_features: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
        let boot_targets: Vec<f64> = idx.iter().map(|&i| targets[i]).collect();
        Self::fit_seeded(&boot_features, &boot_targets, params, rng.gen())
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaves in the fitted tree.
    pub fn leaf_count(&self) -> usize {
        self.root.leaves()
    }

    /// The parameters the tree was fit with.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }
}

impl Regressor for DecisionTreeRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        self.root.predict(features)
    }
}

/// A CART classification tree (Gini impurity).
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    root: Node,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Fit a classification tree on integer labels.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        params: TreeParams,
    ) -> Result<Self, LearnError> {
        Self::fit_seeded(features, labels, params, 0x5EED)
    }

    /// Fit with an explicit seed for deterministic feature subsampling.
    pub fn fit_seeded(
        features: &[Vec<f64>],
        labels: &[usize],
        params: TreeParams,
        seed: u64,
    ) -> Result<Self, LearnError> {
        let targets: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        validate(features, &targets)?;
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut builder = Builder {
            features,
            targets: &targets,
            params,
            criterion: Criterion::Gini,
            rng_state: seed | 1,
        };
        let idx: Vec<usize> = (0..features.len()).collect();
        let root = builder.build(&idx, 0);
        Ok(DecisionTreeClassifier { root, n_classes })
    }

    /// Fit on a bootstrap sample drawn with the provided RNG.
    pub(crate) fn fit_bootstrap<R: Rng>(
        features: &[Vec<f64>],
        labels: &[usize],
        params: TreeParams,
        rng: &mut R,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let n = features.len();
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let boot_features: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
        let boot_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        Self::fit_seeded(&boot_features, &boot_labels, params, rng.gen())
    }

    /// Number of classes seen during training.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl Classifier for DecisionTreeClassifier {
    fn predict_one(&self, features: &[f64]) -> usize {
        self.root.predict(features).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 if x < 5 else 20, with a second irrelevant feature.
        let features: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64 / 5.0, (i % 3) as f64])
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| if f[0] < 5.0 { 10.0 } else { 20.0 })
            .collect();
        (features, targets)
    }

    #[test]
    fn regression_tree_learns_step_function() {
        let (f, t) = step_data();
        let tree = DecisionTreeRegressor::fit(&f, &t, TreeParams::default()).unwrap();
        assert_eq!(tree.predict_one(&[1.0, 0.0]), 10.0);
        assert_eq!(tree.predict_one(&[9.0, 0.0]), 20.0);
        assert!(tree.depth() >= 1);
        assert!(tree.leaf_count() >= 2);
    }

    #[test]
    fn regression_tree_respects_max_depth_zero() {
        let (f, t) = step_data();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let tree = DecisionTreeRegressor::fit(&f, &t, params).unwrap();
        assert_eq!(tree.depth(), 0);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        assert!((tree.predict_one(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_fits_piecewise_linear_reasonably() {
        let features: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<f64> = features.iter().map(|f| f[0] * 2.0 + 1.0).collect();
        let tree = DecisionTreeRegressor::fit(&features, &targets, TreeParams::default()).unwrap();
        let preds: Vec<f64> = features.iter().map(|f| tree.predict_one(f)).collect();
        let err = crate::metrics::mae(&targets, &preds);
        assert!(err < 0.5, "mae = {err}");
    }

    #[test]
    fn classification_tree_separates_two_blobs() {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            features.push(vec![i as f64 * 0.1, 0.0]);
            labels.push(0);
            features.push(vec![10.0 + i as f64 * 0.1, 0.0]);
            labels.push(1);
        }
        let tree = DecisionTreeClassifier::fit(&features, &labels, TreeParams::default()).unwrap();
        assert_eq!(tree.predict_one(&[1.0, 0.0]), 0);
        assert_eq!(tree.predict_one(&[12.0, 0.0]), 1);
        assert_eq!(tree.n_classes(), 2);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(DecisionTreeRegressor::fit(&[], &[], TreeParams::default()).is_err());
        assert!(
            DecisionTreeRegressor::fit(&[vec![1.0]], &[1.0, 2.0], TreeParams::default()).is_err()
        );
        assert!(DecisionTreeRegressor::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[1.0, 2.0],
            TreeParams::default()
        )
        .is_err());
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets = vec![7.0; 20];
        let tree = DecisionTreeRegressor::fit(&features, &targets, TreeParams::default()).unwrap();
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_one(&[3.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let (f, t) = step_data();
        let params = TreeParams {
            min_samples_leaf: 10,
            ..Default::default()
        };
        let tree = DecisionTreeRegressor::fit(&f, &t, params).unwrap();
        // With 50 rows and min 10 per leaf, there can be at most 5 leaves.
        assert!(tree.leaf_count() <= 5);
    }

    #[test]
    fn gini_leaf_vote_breaks_ties_deterministically() {
        // Regression test: the majority vote once picked an arbitrary label
        // on tied counts (hash-map iteration order), making classification
        // predictions differ from run to run. Ties must go to the smaller
        // label.
        let targets = vec![1.0, 0.0, 1.0, 0.0];
        let idx = vec![0, 1, 2, 3];
        for _ in 0..32 {
            assert_eq!(leaf_value(&targets, &idx, Criterion::Gini), 0.0);
        }
    }
}
