//! Error type for the learning crate.

use std::fmt;

/// Errors produced when building datasets or fitting models.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// A model was fit on an empty training set.
    EmptyTrainingSet,
    /// Feature matrix and target vector lengths differ.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of targets.
        targets: usize,
    },
    /// Rows of the feature matrix have inconsistent widths.
    RaggedFeatures {
        /// Expected width (from the first row).
        expected: usize,
        /// Width actually found.
        found: usize,
    },
    /// A hyper-parameter was invalid (e.g. zero trees, zero neighbours).
    InvalidHyperParameter(&'static str),
    /// Numerical failure (singular matrix, NaN loss, ...).
    Numerical(&'static str),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::EmptyTrainingSet => write!(f, "training set is empty"),
            LearnError::LengthMismatch { features, targets } => write!(
                f,
                "feature rows ({features}) and targets ({targets}) have different lengths"
            ),
            LearnError::RaggedFeatures { expected, found } => write!(
                f,
                "ragged feature matrix: expected width {expected}, found {found}"
            ),
            LearnError::InvalidHyperParameter(msg) => write!(f, "invalid hyper-parameter: {msg}"),
            LearnError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for LearnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LearnError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(LearnError::LengthMismatch {
            features: 3,
            targets: 4
        }
        .to_string()
        .contains('3'));
        assert!(LearnError::RaggedFeatures {
            expected: 2,
            found: 5
        }
        .to_string()
        .contains("ragged"));
    }
}
