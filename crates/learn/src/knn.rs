//! k-nearest-neighbour regression.
//!
//! Used as the stand-in for the paper's SVR rows: a non-parametric,
//! kernel-flavoured model with very different bias/variance behaviour from
//! the tree ensembles, so the model-comparison tables still compare
//! genuinely different model families. Distances are Euclidean over
//! standardized features (the caller is responsible for standardization,
//! see [`crate::data::Standardizer`]).

use crate::error::LearnError;
use crate::Regressor;

/// Distance weighting applied to neighbour targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeighting {
    /// Every neighbour counts equally.
    Uniform,
    /// Neighbours are weighted by 1 / (distance + epsilon).
    InverseDistance,
}

/// k-nearest-neighbour regressor.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    features: Vec<Vec<f64>>,
    targets: Vec<f64>,
    k: usize,
    weighting: KnnWeighting,
}

impl KnnRegressor {
    /// "Fit" (memorise) the training data.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        k: usize,
        weighting: KnnWeighting,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if features.len() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: features.len(),
                targets: targets.len(),
            });
        }
        if k == 0 {
            return Err(LearnError::InvalidHyperParameter("k must be > 0"));
        }
        let width = features[0].len();
        for row in features {
            if row.len() != width {
                return Err(LearnError::RaggedFeatures {
                    expected: width,
                    found: row.len(),
                });
            }
        }
        Ok(KnnRegressor {
            features: features.to_vec(),
            targets: targets.to_vec(),
            k: k.min(features.len()),
            weighting,
        })
    }

    /// Number of neighbours actually used (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Regressor for KnnRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        // Collect (distance², target) and take the k smallest.
        let mut dist: Vec<(f64, f64)> = self
            .features
            .iter()
            .zip(&self.targets)
            .map(|(row, &t)| (squared_distance(row, features), t))
            .collect();
        dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        dist.truncate(self.k);
        match self.weighting {
            KnnWeighting::Uniform => dist.iter().map(|(_, t)| t).sum::<f64>() / dist.len() as f64,
            KnnWeighting::InverseDistance => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (d2, t) in dist {
                    let w = 1.0 / (d2.sqrt() + 1e-9);
                    num += w * t;
                    den += w;
                }
                num / den
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn exact_neighbour_dominates_with_inverse_distance() {
        let f: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let t: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let knn = KnnRegressor::fit(&f, &t, 3, KnnWeighting::InverseDistance).unwrap();
        // Querying an exact training point should return (almost) its target.
        assert!((knn.predict_one(&[4.0]) - 40.0).abs() < 1e-3);
    }

    #[test]
    fn uniform_weighting_averages_neighbours() {
        let f = vec![vec![0.0], vec![1.0], vec![10.0]];
        let t = vec![0.0, 10.0, 100.0];
        let knn = KnnRegressor::fit(&f, &t, 2, KnnWeighting::Uniform).unwrap();
        // Nearest two neighbours of 0.4 are 0.0 and 1.0 -> (0 + 10) / 2.
        assert!((knn.predict_one(&[0.4]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn learns_smooth_function_reasonably() {
        let f: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let t: Vec<f64> = f.iter().map(|x| (x[0]).sin() * 3.0 + x[0]).collect();
        let knn = KnnRegressor::fit(&f, &t, 5, KnnWeighting::InverseDistance).unwrap();
        let test_f: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0 + 0.03]).collect();
        let test_t: Vec<f64> = test_f.iter().map(|x| (x[0]).sin() * 3.0 + x[0]).collect();
        let preds: Vec<f64> = test_f.iter().map(|x| knn.predict_one(x)).collect();
        assert!(r2_score(&test_t, &preds) > 0.95);
    }

    #[test]
    fn k_is_clamped_to_training_size() {
        let f = vec![vec![0.0], vec![1.0]];
        let t = vec![1.0, 3.0];
        let knn = KnnRegressor::fit(&f, &t, 10, KnnWeighting::Uniform).unwrap();
        assert_eq!(knn.k(), 2);
        assert!((knn.predict_one(&[0.5]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(KnnRegressor::fit(&[], &[], 3, KnnWeighting::Uniform).is_err());
        assert!(KnnRegressor::fit(&[vec![1.0]], &[1.0], 0, KnnWeighting::Uniform).is_err());
        assert!(KnnRegressor::fit(&[vec![1.0]], &[1.0, 2.0], 1, KnnWeighting::Uniform).is_err());
    }
}
