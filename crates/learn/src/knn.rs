//! k-nearest-neighbour regression.
//!
//! Used as the stand-in for the paper's SVR rows: a non-parametric,
//! kernel-flavoured model with very different bias/variance behaviour from
//! the tree ensembles, so the model-comparison tables still compare
//! genuinely different model families. Distances are Euclidean over
//! standardized features (the caller is responsible for standardization,
//! see [`crate::data::Standardizer`]).
//!
//! Queries use a **bounded selection**: a max-heap of the k best
//! `(distance², index)` pairs, `O(n log k)` instead of the full
//! `O(n log n)` sort the seed implementation paid (preserved as
//! [`crate::reference::knn_predict_reference`] and regression-tested
//! bit-for-bit in `tests/differential_learn.rs`). The selected set — ties at
//! the boundary resolved by ascending training index — and the accumulation
//! order over it are identical to the sorted path's.

use crate::error::LearnError;
use crate::Regressor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Distance weighting applied to neighbour targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeighting {
    /// Every neighbour counts equally.
    Uniform,
    /// Neighbours are weighted by 1 / (distance + epsilon).
    InverseDistance,
}

/// k-nearest-neighbour regressor.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    features: Vec<Vec<f64>>,
    targets: Vec<f64>,
    k: usize,
    weighting: KnnWeighting,
}

impl KnnRegressor {
    /// "Fit" (memorise) the training data.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        k: usize,
        weighting: KnnWeighting,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        if features.len() != targets.len() {
            return Err(LearnError::LengthMismatch {
                features: features.len(),
                targets: targets.len(),
            });
        }
        if k == 0 {
            return Err(LearnError::InvalidHyperParameter("k must be > 0"));
        }
        let width = features[0].len();
        for row in features {
            if row.len() != width {
                return Err(LearnError::RaggedFeatures {
                    expected: width,
                    found: row.len(),
                });
            }
        }
        Ok(KnnRegressor {
            features: features.to_vec(),
            targets: targets.to_vec(),
            k: k.min(features.len()),
            weighting,
        })
    }

    /// Number of neighbours actually used (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The memorised training rows (reference oracle access).
    pub(crate) fn training_features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The memorised training targets (reference oracle access).
    pub(crate) fn training_targets(&self) -> &[f64] {
        &self.targets
    }

    /// The configured weighting (reference oracle access).
    pub(crate) fn weighting(&self) -> KnnWeighting {
        self.weighting
    }
}

pub(crate) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A candidate neighbour ordered by `(distance², training index)` — the
/// same total order a stable sort by distance induces, so the heap selects
/// exactly the prefix the sorted reference truncates to.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Neighbour {
    d2: f64,
    pos: usize,
    target: f64,
}

impl Eq for Neighbour {}

impl Ord for Neighbour {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d2
            .partial_cmp(&other.d2)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.pos.cmp(&other.pos))
    }
}

impl PartialOrd for Neighbour {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Regressor for KnnRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        // Bounded selection: max-heap of the k best (distance², index).
        let mut heap: BinaryHeap<Neighbour> = BinaryHeap::with_capacity(self.k + 1);
        for (pos, (row, &target)) in self.features.iter().zip(&self.targets).enumerate() {
            let cand = Neighbour {
                d2: squared_distance(row, features),
                pos,
                target,
            };
            if heap.len() < self.k {
                heap.push(cand);
            } else if let Some(worst) = heap.peek() {
                if cand < *worst {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }
        // Accumulate in ascending (distance², index) order — the exact
        // order the sorted reference iterates its truncated prefix in.
        let selected = heap.into_sorted_vec();
        match self.weighting {
            KnnWeighting::Uniform => {
                selected.iter().map(|n| n.target).sum::<f64>() / selected.len() as f64
            }
            KnnWeighting::InverseDistance => {
                let mut num = 0.0;
                let mut den = 0.0;
                for n in selected {
                    let w = 1.0 / (n.d2.sqrt() + 1e-9);
                    num += w * n.target;
                    den += w;
                }
                num / den
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;
    use crate::reference::knn_predict_reference;

    #[test]
    fn exact_neighbour_dominates_with_inverse_distance() {
        let f: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let t: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let knn = KnnRegressor::fit(&f, &t, 3, KnnWeighting::InverseDistance).unwrap();
        // Querying an exact training point should return (almost) its target.
        assert!((knn.predict_one(&[4.0]) - 40.0).abs() < 1e-3);
    }

    #[test]
    fn uniform_weighting_averages_neighbours() {
        let f = vec![vec![0.0], vec![1.0], vec![10.0]];
        let t = vec![0.0, 10.0, 100.0];
        let knn = KnnRegressor::fit(&f, &t, 2, KnnWeighting::Uniform).unwrap();
        // Nearest two neighbours of 0.4 are 0.0 and 1.0 -> (0 + 10) / 2.
        assert!((knn.predict_one(&[0.4]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_selection_matches_sorted_reference_on_ties() {
        // An integer grid produces many exactly-tied distances; the heap
        // must select and order the same neighbours the stable sort did.
        let f: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let t: Vec<f64> = (0..40).map(|i| i as f64 * 1.7 - 3.0).collect();
        for weighting in [KnnWeighting::Uniform, KnnWeighting::InverseDistance] {
            for k in [1, 3, 7, 40, 100] {
                let knn = KnnRegressor::fit(&f, &t, k, weighting).unwrap();
                for q in [[0.0, 0.0], [2.0, 3.0], [2.5, 1.5], [10.0, 10.0]] {
                    let fast = knn.predict_one(&q);
                    let slow = knn_predict_reference(&knn, &q);
                    assert_eq!(fast.to_bits(), slow.to_bits(), "k={k} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn learns_smooth_function_reasonably() {
        let f: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let t: Vec<f64> = f.iter().map(|x| (x[0]).sin() * 3.0 + x[0]).collect();
        let knn = KnnRegressor::fit(&f, &t, 5, KnnWeighting::InverseDistance).unwrap();
        let test_f: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0 + 0.03]).collect();
        let test_t: Vec<f64> = test_f.iter().map(|x| (x[0]).sin() * 3.0 + x[0]).collect();
        let preds: Vec<f64> = test_f.iter().map(|x| knn.predict_one(x)).collect();
        assert!(r2_score(&test_t, &preds) > 0.95);
    }

    #[test]
    fn k_is_clamped_to_training_size() {
        let f = vec![vec![0.0], vec![1.0]];
        let t = vec![1.0, 3.0];
        let knn = KnnRegressor::fit(&f, &t, 10, KnnWeighting::Uniform).unwrap();
        assert_eq!(knn.k(), 2);
        assert!((knn.predict_one(&[0.5]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(KnnRegressor::fit(&[], &[], 3, KnnWeighting::Uniform).is_err());
        assert!(KnnRegressor::fit(&[vec![1.0]], &[1.0], 0, KnnWeighting::Uniform).is_err());
        assert!(KnnRegressor::fit(&[vec![1.0]], &[1.0, 2.0], 1, KnnWeighting::Uniform).is_err());
    }
}
