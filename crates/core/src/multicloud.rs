//! Multi-cloud placement: the cooling enterprise workload placed inside a
//! single provider vs across a [`ProviderCatalog`], with egress priced in.
//!
//! The lifecycle scenario ([`crate::lifecycle`]) showed what per-period
//! re-tiering is worth inside one provider's ladder. This scenario asks the
//! SkyStore question on top of it: *does it pay to cross clouds?* The same
//! cooling enterprise account is placed three ways, all replayed through
//! the day-granular multi-provider billing engine
//! ([`BillingSimulator::multi_provider`]) so every comparison includes the
//! egress a real migration would be invoiced:
//!
//! 1. **All-home** — everything frozen on the home provider's default tier
//!    (the platform baseline),
//! 2. **Single-provider** — for each provider, the residency-aware
//!    schedule DP plans per-period tiers restricted to that provider's
//!    ladder (for a non-home provider the initial migration pays the
//!    home→provider egress on every byte),
//! 3. **Cross-provider** — the DP searches the merged tier space with
//!    egress-aware transition costs and crosses clouds only where the
//!    destination ladder repays the egress.
//!
//! The [`MultiCloudOutcome`] reports the egress-adjusted savings split:
//! what the best single cloud achieves over the baseline, and what
//! crossing adds on top. With the catalog's discounted-interconnect egress
//! matrix the cross-provider plan typically wins (latency-bounded cold
//! data reaches another cloud's cheap millisecond-latency tiers); scale
//! the matrix to public-internet rates
//! ([`ProviderCatalog::with_egress_scale`], ~×5 and up) and the optimum
//! collapses back to staying single-provider — both regimes are asserted
//! in `tests/integration_multicloud.rs`.

use crate::lifecycle::{billing_events, WRITE_VOLUME_FRACTION};
use crate::ScopeError;
use scope_cloudsim::{
    billing::Placement, BillingEvent, BillingReport, BillingSimulator, CostModel, ObjectSpec,
    PlacementSchedule, ProviderCatalog, ProviderTopology, TierId, DAYS_PER_MONTH,
};
use scope_optassign::{ideal_tier_schedules_with_model, TierSchedule};
use scope_workload::{DatasetCatalog, EnterpriseOptions, EnterpriseWorkload};
use serde::{Deserialize, Serialize};

/// Options for the multi-cloud experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCloudOptions {
    /// The enterprise account to generate (catalog + day-resolution log).
    pub workload: EnterpriseOptions,
    /// The providers to place across (tier ladders + egress matrix).
    pub providers: ProviderCatalog,
    /// Name of the provider the data currently lives on.
    pub home_provider: String,
    /// Name of the tier (inside the home provider) the data currently
    /// occupies — the platform default.
    pub home_tier: String,
    /// Re-tiering granularity in billing periods (1 = every period).
    pub retier_every: u32,
}

impl Default for MultiCloudOptions {
    fn default() -> Self {
        MultiCloudOptions {
            workload: EnterpriseOptions::default(),
            providers: ProviderCatalog::azure_s3_gcs(),
            home_provider: "azure".to_string(),
            home_tier: "Hot".to_string(),
            retier_every: 1,
        }
    }
}

/// Realised cost of placing the account entirely inside one provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleProviderOutcome {
    /// Provider name.
    pub provider: String,
    /// Realised day-granular total (cents), including the initial
    /// migration egress when the provider is not the home provider.
    pub total: f64,
    /// Egress paid (cents) — zero for the home provider.
    pub egress: f64,
    /// Mid-horizon tier transitions across all datasets.
    pub transitions: usize,
}

/// Outcome of the multi-cloud experiment: the egress-adjusted savings
/// split between single-provider and cross-provider placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCloudOutcome {
    /// Realised cost of freezing everything on the home default tier.
    pub all_home_total: f64,
    /// One outcome per provider, in provider-catalog order.
    pub single: Vec<SingleProviderOutcome>,
    /// Name of the cheapest single provider.
    pub best_single_provider: String,
    /// Its realised total (cents).
    pub best_single_total: f64,
    /// Realised total of the cross-provider placement (cents).
    pub cross_total: f64,
    /// Egress paid by the cross-provider placement (cents).
    pub cross_egress: f64,
    /// Mid-horizon transitions of the cross-provider placement.
    pub cross_transitions: usize,
    /// How many of the cross-provider plan's moves (including the initial
    /// placement off the home tier) actually cross a provider boundary.
    pub cross_provider_moves: usize,
    /// % cost benefit of the best single provider over the all-home
    /// baseline.
    pub benefit_best_single: f64,
    /// % cost benefit of the cross-provider placement over the all-home
    /// baseline.
    pub benefit_cross: f64,
    /// % saved by going cross-provider relative to the best single
    /// provider: `100 * (best_single - cross) / best_single`.
    pub savings_vs_best_single: f64,
    /// Events outside the billed horizon in the cross-provider run.
    pub dropped_events: u64,
}

/// Replay `events` against one placement schedule per dataset through the
/// multi-provider billing engine.
fn simulate(
    providers: &ProviderCatalog,
    datasets: &DatasetCatalog,
    schedules: &[PlacementSchedule],
    home: TierId,
    horizon_days: u32,
    events: &[BillingEvent],
) -> Result<BillingReport, ScopeError> {
    let mut sim = BillingSimulator::multi_provider(providers);
    for d in datasets.iter() {
        sim.place_scheduled(
            ObjectSpec::new(d.name.clone(), d.size_gb).on_tier(home),
            schedules[d.id].clone(),
        )?;
    }
    Ok(sim.run_days(horizon_days, events)?)
}

/// Count the moves of a plan that cross a provider boundary, including the
/// initial move off the home tier.
fn count_cross_moves(plans: &[TierSchedule], topo: &ProviderTopology, home: TierId) -> usize {
    let mut moves = 0;
    for plan in plans {
        let mut prev = home;
        for &tier in &plan.tiers {
            if tier != prev && topo.crosses_providers(prev, tier) {
                moves += 1;
            }
            prev = tier;
        }
    }
    moves
}

/// Run the multi-cloud experiment.
pub fn run_multicloud(options: &MultiCloudOptions) -> Result<MultiCloudOutcome, ScopeError> {
    let providers = &options.providers;
    let topo = providers.topology();
    let model = CostModel::with_topology(providers.merged_catalog(), topo.clone());
    let home = providers.merged_tier_id(&options.home_provider, &options.home_tier)?;

    let workload = EnterpriseWorkload::generate(options.workload.clone())?;
    let start = workload.projection_start();
    let horizon_months = workload.options.future_months;
    let horizon_days = horizon_months * DAYS_PER_MONTH;
    let events = billing_events(&workload, start * DAYS_PER_MONTH, horizon_days);

    // Baseline: everything frozen on the home default tier.
    let all_home: Vec<PlacementSchedule> = workload
        .catalog
        .iter()
        .map(|_| PlacementSchedule::constant(Placement::uncompressed(home)))
        .collect();
    let all_home_report = simulate(
        providers,
        &workload.catalog,
        &all_home,
        home,
        horizon_days,
        &events,
    )?;

    // One restricted plan per provider.
    let mut single = Vec::with_capacity(providers.len());
    let mut single_reports = Vec::with_capacity(providers.len());
    for (pid, provider) in providers.iter() {
        let allowed = providers.provider_tier_ids(pid)?;
        let plans = ideal_tier_schedules_with_model(
            &model,
            Some(&allowed),
            &workload.catalog,
            &workload.series,
            start,
            horizon_months,
            home,
            WRITE_VOLUME_FRACTION,
            options.retier_every,
        )?;
        let schedules: Vec<PlacementSchedule> =
            plans.iter().map(|p| p.to_placement_schedule()).collect();
        let report = simulate(
            providers,
            &workload.catalog,
            &schedules,
            home,
            horizon_days,
            &events,
        )?;
        single.push(SingleProviderOutcome {
            provider: provider.name.clone(),
            total: report.total(),
            egress: report.total_breakdown().egress,
            transitions: plans.iter().map(|p| p.transition_count()).sum(),
        });
        single_reports.push(report);
    }
    let best_idx = (0..single.len())
        .min_by(|&a, &b| {
            single[a]
                .total
                .partial_cmp(&single[b].total)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one provider");

    // The cross-provider plan over the full merged space.
    let cross_plans = ideal_tier_schedules_with_model(
        &model,
        None,
        &workload.catalog,
        &workload.series,
        start,
        horizon_months,
        home,
        WRITE_VOLUME_FRACTION,
        options.retier_every,
    )?;
    let cross_schedules: Vec<PlacementSchedule> = cross_plans
        .iter()
        .map(|p| p.to_placement_schedule())
        .collect();
    let cross_report = simulate(
        providers,
        &workload.catalog,
        &cross_schedules,
        home,
        horizon_days,
        &events,
    )?;

    let best_single_total = single[best_idx].total;
    let savings_vs_best_single = if best_single_total > 0.0 {
        100.0 * (best_single_total - cross_report.total()) / best_single_total
    } else {
        0.0
    };
    Ok(MultiCloudOutcome {
        all_home_total: all_home_report.total(),
        best_single_provider: single[best_idx].provider.clone(),
        best_single_total,
        cross_total: cross_report.total(),
        cross_egress: cross_report.total_breakdown().egress,
        cross_transitions: cross_plans.iter().map(|p| p.transition_count()).sum(),
        cross_provider_moves: count_cross_moves(&cross_plans, &topo, home),
        benefit_best_single: single_reports[best_idx].percent_benefit_vs(&all_home_report),
        benefit_cross: cross_report.percent_benefit_vs(&all_home_report),
        savings_vs_best_single,
        dropped_events: cross_report.dropped_events,
        single,
    })
}

/// Sweep the egress scale: run the experiment at each multiple of the
/// catalog's egress matrix (0 = free interconnect, 1 = the shipped
/// discounted rates, ~5 = public internet prices). Everything else —
/// workload seed, home placement, granularity — is held fixed, so the
/// sweep isolates what egress pricing does to the single-vs-cross split.
///
/// The per-scale experiments are independent full pipelines (workload
/// generation → schedule DP → day-granular replay), so they fan out with
/// the deterministic parallel helper of [`scope_cloudsim::parallel`] and
/// merge in scale order — the sweep output is bit-for-bit the sequential
/// loop's.
pub fn multicloud_egress_sweep(
    options: &MultiCloudOptions,
    scales: &[f64],
) -> Result<Vec<(f64, MultiCloudOutcome)>, ScopeError> {
    scope_cloudsim::parallel::parallel_map(scales, |_, &scale| {
        let scaled = MultiCloudOptions {
            providers: options
                .providers
                .clone()
                .with_egress_scale(scale)
                .map_err(|e| ScopeError::InvalidConfig(e.to_string()))?,
            ..options.clone()
        };
        Ok((scale, run_multicloud(&scaled)?))
    })
    .into_iter()
    .collect()
}

/// The merged placement never loses to staying inside any one provider:
/// the restricted plans are points of the merged search space priced by the
/// same egress-aware model.
#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> MultiCloudOptions {
        MultiCloudOptions {
            workload: EnterpriseOptions {
                n_datasets: 80,
                history_months: 6,
                future_months: 6,
                seed: 17,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn cross_provider_never_loses_to_any_single_provider() {
        let outcome = run_multicloud(&options()).unwrap();
        assert_eq!(outcome.single.len(), 3);
        assert_eq!(outcome.dropped_events, 0);
        for s in &outcome.single {
            assert!(
                outcome.cross_total <= s.total * (1.0 + 1e-9),
                "cross {} loses to {} {}",
                outcome.cross_total,
                s.provider,
                s.total
            );
        }
        // The home provider pays no egress; the others migrate everything.
        let home = outcome
            .single
            .iter()
            .find(|s| s.provider == "azure")
            .unwrap();
        assert_eq!(home.egress, 0.0);
        for s in &outcome.single {
            if s.provider != "azure" {
                assert!(s.egress > 0.0, "{} paid no egress", s.provider);
            }
        }
        // Both optimized placements beat the all-home baseline.
        assert!(outcome.benefit_best_single > 0.0, "{outcome:?}");
        assert!(
            outcome.benefit_cross >= outcome.benefit_best_single,
            "{outcome:?}"
        );
    }

    #[test]
    fn egress_sweep_is_monotone_in_the_cross_total() {
        let sweep = multicloud_egress_sweep(&options(), &[0.0, 1.0, 10.0]).unwrap();
        assert_eq!(sweep.len(), 3);
        // More expensive egress can only make the realised cross-provider
        // plan costlier (the plan re-optimizes, but the free-egress optimum
        // dominates every priced one).
        for w in sweep.windows(2) {
            assert!(
                w[0].1.cross_total <= w[1].1.cross_total * (1.0 + 1e-9),
                "scale {} total {} vs scale {} total {}",
                w[0].0,
                w[0].1.cross_total,
                w[1].0,
                w[1].1.cross_total
            );
        }
        // Free egress crosses at least as often as internet-priced egress.
        assert!(sweep[0].1.cross_provider_moves >= sweep[2].1.cross_provider_moves);
    }
}
