//! The Fig 5 experiment: how compression-prediction quality affects the
//! cost/latency trade-off curves of the optimizer.
//!
//! The paper sweeps the α (storage weight) / β (read + decompression
//! weight) hyper-parameters of OPTASSIGN and plots, for each compression
//! predictor, the latency-cost vs storage-cost and total-cost vs latency
//! curves. The headline result is that the curve obtained with the real
//! predictor (query samples + weighted-entropy features) is nearly
//! indistinguishable from the curve obtained with ground-truth compression
//! values, while naive predictors (averaging, size-only features on random
//! samples) land on visibly worse trade-off points.
//!
//! The predictor variants here perturb the ground-truth per-table profiles
//! with the *measured error magnitude* of the corresponding model family
//! (the MAPE columns of Tables V–VII): ~1% for the Random-Forest predictor,
//! ~3% for the SVR-style predictor, ~20–70% for the averaging and
//! random-sample baselines. The optimizer plans with the perturbed values
//! and is then evaluated against the ground truth, exactly like the paper's
//! "effect of prediction errors on the overall optimization".

use crate::scenario::PipelineInputs;
use crate::ScopeError;
use scope_cloudsim::CostWeights;
use scope_optassign::{solve_greedy, CompressionOption, OptAssignProblem, PartitionSpec};
use serde::{Deserialize, Serialize};

/// A compression-predictor variant for the Fig 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorVariant {
    /// Plan with the exact measured compression values.
    GroundTruth,
    /// Plan with Random-Forest-quality predictions (query samples +
    /// weighted-entropy features): ~1% relative error.
    RandomForest,
    /// Plan with SVR-quality predictions: ~3% relative error.
    Svr,
    /// Plan with the averaging baseline: every table gets the global mean
    /// ratio and decompression speed.
    Averaging,
    /// Plan with size-only features fit on random samples: large,
    /// systematic over-estimation of compressibility (the Table V failure
    /// mode: random samples look less repetitive than queried data).
    RandomSampleSizeOnly,
}

impl PredictorVariant {
    /// All variants, in plotting order.
    pub fn all() -> [PredictorVariant; 5] {
        [
            PredictorVariant::GroundTruth,
            PredictorVariant::RandomForest,
            PredictorVariant::Svr,
            PredictorVariant::Averaging,
            PredictorVariant::RandomSampleSizeOnly,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorVariant::GroundTruth => "ground truth",
            PredictorVariant::RandomForest => "RF (queries + entropy)",
            PredictorVariant::Svr => "SVR (queries + entropy)",
            PredictorVariant::Averaging => "averaging",
            PredictorVariant::RandomSampleSizeOnly => "random samples + size",
        }
    }

    /// Relative error magnitude applied to ratios and decompression speeds.
    fn relative_error(&self) -> f64 {
        match self {
            PredictorVariant::GroundTruth => 0.0,
            PredictorVariant::RandomForest => 0.01,
            PredictorVariant::Svr => 0.035,
            PredictorVariant::Averaging => 0.0, // handled specially (global mean)
            PredictorVariant::RandomSampleSizeOnly => 0.7,
        }
    }
}

/// One point of the Fig 5 curves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Storage weight α used for this point.
    pub alpha: f64,
    /// Read/decompression weight β used for this point.
    pub beta: f64,
    /// Realised storage cost (ground-truth compression), cents.
    pub storage_cost: f64,
    /// Realised read + decompression cost, cents.
    pub latency_cost: f64,
    /// Realised total cost, cents.
    pub total_cost: f64,
    /// Realised expected access latency (TTFB + decompression), seconds,
    /// averaged over accesses.
    pub latency_seconds: f64,
}

/// Deterministic pseudo-noise in `[-1, 1]` derived from a label and index.
fn signed_noise(label: &str, index: usize) -> f64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in label.bytes().chain(index.to_le_bytes()) {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    ((hash >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// Build the per-table compression options a predictor variant would hand to
/// the optimizer.
fn predicted_options(
    inputs: &PipelineInputs,
    variant: PredictorVariant,
) -> Vec<Vec<CompressionOption>> {
    let n_schemes = inputs.tables[0].options.len();
    // Global means for the averaging baseline.
    let mut mean_ratio = vec![0.0; n_schemes];
    let mut mean_decomp = vec![0.0; n_schemes];
    for t in &inputs.tables {
        for (k, o) in t.options.iter().enumerate() {
            mean_ratio[k] += o.ratio / inputs.tables.len() as f64;
            mean_decomp[k] += o.decompress_seconds / inputs.tables.len() as f64;
        }
    }
    inputs
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| {
            t.options
                .iter()
                .enumerate()
                .map(|(k, o)| {
                    if k == 0 {
                        return CompressionOption::none();
                    }
                    match variant {
                        PredictorVariant::Averaging => CompressionOption::new(
                            o.name.clone(),
                            mean_ratio[k].max(1.0),
                            mean_decomp[k].max(0.0),
                        ),
                        PredictorVariant::RandomSampleSizeOnly => {
                            // Random samples look less repetitive than queried
                            // data, so this predictor systematically
                            // *underestimates* ratios and overestimates cost.
                            let err = variant.relative_error();
                            CompressionOption::new(
                                o.name.clone(),
                                (o.ratio * (1.0 - 0.5 * err)).max(1.0),
                                o.decompress_seconds
                                    * (1.0 + err * signed_noise(&t.name, i * 7 + k).abs()),
                            )
                        }
                        _ => {
                            let err = variant.relative_error();
                            let nr = signed_noise(&t.name, i * 31 + k);
                            let nd = signed_noise(&t.name, i * 53 + k + 1000);
                            CompressionOption::new(
                                o.name.clone(),
                                (o.ratio * (1.0 + err * nr)).max(1.0),
                                (o.decompress_seconds * (1.0 + err * nd)).max(0.0),
                            )
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Build one partition spec per table (the Fig 5 sweep operates at table
/// granularity, like the paper's TPC-H 1 GB experiment).
fn table_specs(inputs: &PipelineInputs, options: &[Vec<CompressionOption>]) -> Vec<PartitionSpec> {
    // Access frequency per table from the query families.
    let mut freq: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    for family in &inputs.families {
        let tables: std::collections::BTreeSet<&str> =
            family.files.iter().map(|f| f.table.as_str()).collect();
        for t in tables {
            *freq.entry(t).or_insert(0.0) += family.frequency;
        }
    }
    inputs
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut spec = PartitionSpec::new(
                i,
                t.name.clone(),
                t.size_gb,
                freq.get(t.name.as_str()).copied().unwrap_or(0.0),
            )
            .with_latency_threshold(t.latency_threshold_seconds);
            for o in options[i].iter().skip(1) {
                // Decompression is per GB in the profile; scale to the table.
                spec = spec.with_compression_option(CompressionOption::new(
                    o.name.clone(),
                    o.ratio,
                    o.decompress_seconds * t.size_gb,
                ));
            }
            spec
        })
        .collect()
}

/// Run the α/β sweep for one predictor variant.
///
/// For every `(alpha, beta)` pair the optimizer plans with the variant's
/// *predicted* compression values; the returned point reports the cost and
/// latency the plan actually achieves under the *ground-truth* values.
///
/// Sweep points are independent, so they are computed with the
/// deterministic parallel fan-out of [`scope_cloudsim::parallel`] (chunked
/// by α index, merged in index order): the returned curve is bit-for-bit
/// the one the sequential loop produced.
pub fn tradeoff_sweep(
    inputs: &PipelineInputs,
    variant: PredictorVariant,
    alphas: &[f64],
    beta: f64,
) -> Result<Vec<TradeoffPoint>, ScopeError> {
    inputs.validate()?;
    let predicted = predicted_options(inputs, variant);
    let truth = predicted_options(inputs, PredictorVariant::GroundTruth);
    let points = scope_cloudsim::parallel::parallel_map(alphas, |_, &alpha| {
        let weights = CostWeights::new(alpha, beta, alpha.max(0.01));
        // Plan with predicted values.
        let plan_problem = OptAssignProblem::new(
            inputs.catalog.clone(),
            table_specs(inputs, &predicted),
            inputs.horizon_months,
        )
        .with_weights(weights);
        let plan = solve_greedy(&plan_problem)?;
        // Evaluate the chosen (tier, scheme) under ground truth.
        let eval_problem = OptAssignProblem::new(
            inputs.catalog.clone(),
            table_specs(inputs, &truth),
            inputs.horizon_months,
        )
        .with_weights(weights);
        let realized =
            scope_optassign::Assignment::from_choices(&eval_problem, plan.choices.clone())?;
        let latency = realized.expected_ttfb(&eval_problem)
            + realized.expected_decompression_latency(&eval_problem);
        Ok(TradeoffPoint {
            alpha,
            beta,
            storage_cost: realized.breakdown.storage,
            latency_cost: realized.breakdown.read + realized.breakdown.decompression,
            total_cost: realized.breakdown.total(),
            latency_seconds: latency,
        })
    });
    points.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{tpch_scenario, ScenarioOptions};

    fn inputs() -> PipelineInputs {
        tpch_scenario(&ScenarioOptions {
            nominal_total_gb: 1.0, // the paper's Fig 5 uses TPC-H 1 GB
            generator_scale: 0.05,
            queries_per_template: 4,
            total_files: 24,
            ..Default::default()
        })
        .unwrap()
    }

    fn alphas() -> Vec<f64> {
        vec![0.0, 0.1, 0.3, 1.0, 3.0, 10.0]
    }

    #[test]
    fn sweep_produces_monotone_storage_cost_in_alpha() {
        let inputs = inputs();
        let points =
            tradeoff_sweep(&inputs, PredictorVariant::GroundTruth, &alphas(), 1.0).unwrap();
        assert_eq!(points.len(), 6);
        // As alpha grows the optimizer cares more about storage, so the
        // realised storage cost must not increase.
        for w in points.windows(2) {
            assert!(w[1].storage_cost <= w[0].storage_cost + 1e-6);
        }
        for p in &points {
            assert!(p.total_cost > 0.0);
            assert!(p.latency_seconds >= 0.0);
        }
    }

    #[test]
    fn good_predictors_track_the_ground_truth_curve() {
        let inputs = inputs();
        let a = alphas();
        let truth = tradeoff_sweep(&inputs, PredictorVariant::GroundTruth, &a, 1.0).unwrap();
        let rf = tradeoff_sweep(&inputs, PredictorVariant::RandomForest, &a, 1.0).unwrap();
        let naive =
            tradeoff_sweep(&inputs, PredictorVariant::RandomSampleSizeOnly, &a, 1.0).unwrap();
        // The RF curve must stay very close to ground truth (within 5% total
        // cost at every sweep point) — the Fig 5 conclusion.
        let mut rf_gap = 0.0f64;
        let mut naive_gap = 0.0f64;
        for ((t, r), n) in truth.iter().zip(&rf).zip(&naive) {
            rf_gap = rf_gap.max((r.total_cost - t.total_cost).abs() / t.total_cost);
            naive_gap = naive_gap.max((n.total_cost - t.total_cost).abs() / t.total_cost);
        }
        assert!(rf_gap < 0.05, "RF deviates {rf_gap}");
        // The naive predictor is allowed to deviate more (and in this
        // workload it does at some sweep points); what matters is that it is
        // never *better* tracked than RF.
        assert!(naive_gap >= rf_gap, "naive {naive_gap} vs rf {rf_gap}");
    }

    #[test]
    fn averaging_variant_uses_global_means() {
        let inputs = inputs();
        let opts = predicted_options(&inputs, PredictorVariant::Averaging);
        // Every table gets the same predicted gzip ratio under averaging.
        let first = opts[0][1].ratio;
        assert!(opts.iter().all(|o| (o[1].ratio - first).abs() < 1e-12));
        // Ground truth differs across tables.
        let gt = predicted_options(&inputs, PredictorVariant::GroundTruth);
        let ratios: Vec<f64> = gt.iter().map(|o| o[1].ratio).collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 1e-3, "tables should differ in compressibility");
    }

    #[test]
    fn variant_names_and_errors() {
        assert_eq!(PredictorVariant::all().len(), 5);
        assert_eq!(PredictorVariant::GroundTruth.relative_error(), 0.0);
        assert!(
            PredictorVariant::RandomForest.relative_error()
                < PredictorVariant::Svr.relative_error()
        );
        assert_eq!(
            PredictorVariant::RandomForest.name(),
            "RF (queries + entropy)"
        );
    }
}
