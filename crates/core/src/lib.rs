//! # scope-core
//!
//! SCOPe: Storage Cost Optimizer with Performance Guarantees — the unified
//! pipeline of §VII that combines the three modules built in the sibling
//! crates:
//!
//! 1. **G-PART** (`scope-datapart`) merges the file sets touched by query
//!    families into access-aware partitions,
//! 2. **COMPREDICT** (`scope-compredict`) predicts compression ratio and
//!    decompression speed per partition,
//! 3. **OPTASSIGN** (`scope-optassign`) assigns each partition a storage
//!    tier and compression scheme minimizing total cost under latency SLAs
//!    and capacity constraints.
//!
//! The crate also implements every *policy variant* the paper evaluates
//! against (Tables IX–XI rows: all-premium default, Ares-style
//! compression-only, Hermes-style tiering-only, HCompress-style
//! latency-focused, the partitioned versions of each, and the SCOPe
//! configurations), the Enterprise Data I experiments (Tables II–IV,
//! Fig 3), and the cost-vs-latency trade-off sweep of Fig 5.
//!
//! Entry points:
//!
//! * [`scenario`] — builders that generate the evaluation scenarios
//!   (TPC-H-like at several scales, Enterprise Data II) as
//!   [`PipelineInputs`],
//! * [`pipeline`] — [`run_policy`] executes one policy over the inputs and
//!   returns a [`PolicyOutcome`] (one row of Tables IX–XI),
//! * [`policy`] — the catalog of policies,
//! * [`enterprise`] — the Enterprise Data I experiment drivers,
//! * [`tradeoff`] — the Fig 5 predictor-impact sweep,
//! * [`lifecycle`] — the day-granular lifecycle scenario: datasets that
//!   cool over time are re-tiered at billing-period boundaries by the
//!   residency-aware schedule DP and replayed through the day-granular
//!   billing engine against frozen-placement baselines,
//! * [`multicloud`] — the cross-provider scenario: the same cooling
//!   account placed inside each single provider vs across the merged
//!   multi-provider tier space with egress-aware planning, reporting the
//!   egress-adjusted savings split,
//! * [`serving`] — the deployment loop: an enterprise day log replayed
//!   through the incremental serving engine (`scope-serve`), epoch by
//!   epoch, with every incremental re-solve differentially checked
//!   against the preserved batch path.

#![warn(missing_docs)]

pub mod chaos;
pub mod enterprise;
pub mod lifecycle;
pub mod multicloud;
pub mod pipeline;
pub mod policy;
pub mod recovery;
pub mod scenario;
pub mod serving;
pub mod tradeoff;

pub use chaos::{run_chaos, ChaosEpoch, ChaosOptions, ChaosOutcome};
pub use enterprise::{
    customer_benefit_table, predictor_confusion, tiering_baseline_comparison, BaselineRow,
    CustomerBenefit,
};
pub use lifecycle::{lifecycle_tradeoff, run_lifecycle, LifecycleOptions, LifecycleOutcome};
pub use multicloud::{
    multicloud_egress_sweep, run_multicloud, MultiCloudOptions, MultiCloudOutcome,
    SingleProviderOutcome,
};
pub use pipeline::{run_all_policies, run_policy, PolicyOutcome};
pub use policy::Policy;
pub use recovery::{run_recovery, RecoveryEpoch, RecoveryOptions, RecoveryOutcome};
pub use scenario::{
    enterprise2_scenario, tpch_scenario, PipelineInputs, ScenarioOptions, TableProfile,
};
pub use serving::{run_serving, ServingEpoch, ServingOptions, ServingOutcome};
pub use tradeoff::{tradeoff_sweep, PredictorVariant, TradeoffPoint};

/// Errors produced by the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ScopeError {
    /// An underlying optimizer error.
    OptAssign(String),
    /// An underlying partitioning error.
    DataPart(String),
    /// An underlying prediction error.
    Compredict(String),
    /// A cloud-simulation error.
    CloudSim(String),
    /// A workload-generation error.
    Workload(String),
    /// A serving-engine error.
    Serving(String),
    /// Invalid pipeline configuration.
    InvalidConfig(String),
}

impl std::fmt::Display for ScopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScopeError::OptAssign(m) => write!(f, "optassign: {m}"),
            ScopeError::DataPart(m) => write!(f, "datapart: {m}"),
            ScopeError::Compredict(m) => write!(f, "compredict: {m}"),
            ScopeError::CloudSim(m) => write!(f, "cloudsim: {m}"),
            ScopeError::Workload(m) => write!(f, "workload: {m}"),
            ScopeError::Serving(m) => write!(f, "serving: {m}"),
            ScopeError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for ScopeError {}

impl From<scope_optassign::OptAssignError> for ScopeError {
    fn from(e: scope_optassign::OptAssignError) -> Self {
        ScopeError::OptAssign(e.to_string())
    }
}

impl From<scope_datapart::DataPartError> for ScopeError {
    fn from(e: scope_datapart::DataPartError) -> Self {
        ScopeError::DataPart(e.to_string())
    }
}

impl From<scope_compredict::CompredictError> for ScopeError {
    fn from(e: scope_compredict::CompredictError) -> Self {
        ScopeError::Compredict(e.to_string())
    }
}

impl From<scope_cloudsim::CloudSimError> for ScopeError {
    fn from(e: scope_cloudsim::CloudSimError) -> Self {
        ScopeError::CloudSim(e.to_string())
    }
}

impl From<scope_serve::ServeError> for ScopeError {
    fn from(e: scope_serve::ServeError) -> Self {
        ScopeError::Serving(e.to_string())
    }
}

impl From<scope_workload::WorkloadError> for ScopeError {
    fn from(e: scope_workload::WorkloadError) -> Self {
        ScopeError::Workload(e.to_string())
    }
}

impl From<scope_table::TableError> for ScopeError {
    fn from(e: scope_table::TableError) -> Self {
        ScopeError::Workload(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: ScopeError = scope_datapart::DataPartError::InvalidOption("x".into()).into();
        assert!(e.to_string().contains("datapart"));
        let e: ScopeError = scope_cloudsim::CloudSimError::EmptyCatalog.into();
        assert!(e.to_string().contains("cloudsim"));
        let e: ScopeError = scope_optassign::OptAssignError::InvalidProblem("bad".into()).into();
        assert!(e.to_string().contains("optassign"));
    }
}
