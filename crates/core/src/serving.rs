//! Serving scenario: an enterprise day log replayed through the
//! incremental serving engine.
//!
//! Where [`crate::lifecycle`] *plans ahead* (a DP over the projected
//! access series, lowered to a placement schedule and billed once), this
//! scenario runs the deployment loop the paper's production setting
//! implies: a long-running [`ServeEngine`] holds the account's objects,
//! day-granular access events stream in epoch by epoch, heat decays and
//! re-buckets, and only the objects whose heat moved get their cost rows
//! re-evaluated before an incremental, account-sharded re-solve.
//!
//! With `verify` enabled (the default), every epoch also runs the
//! preserved batch path — [`scope_serve::reference::full_resolve`] — and
//! records whether the incremental outcome matched it bit-for-bit: the
//! scenario doubles as a differential harness over a realistic replayed
//! trace.

use crate::lifecycle::billing_events;
use crate::ScopeError;
use scope_cloudsim::{TierCatalog, TierId, DAYS_PER_MONTH};
use scope_serve::{reference, CompressionOption, ServeConfig, ServeEngine, ServeObject};
use scope_workload::{EnterpriseOptions, EnterpriseWorkload};
use serde::{Deserialize, Serialize};

/// Options for the serving replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingOptions {
    /// The enterprise account to generate (catalog + day-resolution log).
    pub workload: EnterpriseOptions,
    /// Tier catalog the engine re-optimizes over.
    pub catalog: TierCatalog,
    /// Compression schemes shared by all objects (index 0 must be the
    /// identity scheme).
    pub schemes: Vec<CompressionOption>,
    /// Re-optimization cadence in days (an epoch = one ingest + advance +
    /// re-solve round).
    pub epoch_days: u32,
    /// Number of synthetic billing accounts the datasets are sharded
    /// into round-robin (each account re-solves independently).
    pub accounts: usize,
    /// Worker threads for the sharded re-solve (0 = default).
    pub threads: usize,
    /// Per-day heat decay for the engine.
    pub decay_per_day: f64,
    /// Geometric heat-bucket base for the engine.
    pub bucket_base: f64,
    /// Run the cold reference solve every epoch and record whether the
    /// incremental outcome matched it bit-for-bit.
    pub verify: bool,
}

impl Default for ServingOptions {
    fn default() -> Self {
        ServingOptions {
            workload: EnterpriseOptions::default(),
            catalog: TierCatalog::azure_hot_cool_archive(),
            schemes: vec![
                CompressionOption::none(),
                CompressionOption::new("zstd", 2.4, 0.35),
            ],
            epoch_days: 15,
            accounts: 4,
            threads: 0,
            decay_per_day: 0.98,
            bucket_base: 2.0,
            verify: true,
        }
    }
}

/// One epoch of the serving replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingEpoch {
    /// Day the engine advanced to before this re-solve.
    pub day: u32,
    /// Events folded into heat this epoch.
    pub folded_events: u64,
    /// Cost-table rows (re)evaluated this epoch.
    pub rows_patched: usize,
    /// Objects whose placement changed this epoch.
    pub retier_decisions: usize,
    /// Total objective across accounts after the re-solve.
    pub total_objective: f64,
    /// Whether the cold reference solve was run this epoch.
    pub verified: bool,
    /// Whether the incremental outcome matched the reference bit-for-bit
    /// (only meaningful when `verified` is true).
    pub matches_reference: bool,
}

/// Outcome of the serving replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Per-epoch records, in replay order.
    pub epochs: Vec<ServingEpoch>,
    /// Objects served.
    pub objects: usize,
    /// Account shards.
    pub accounts: usize,
    /// Total objective after the final epoch.
    pub final_total_objective: f64,
    /// Placement changes across all epochs.
    pub total_retier_decisions: usize,
    /// Row evaluations across all epochs (the work an equivalent sequence
    /// of batch solves would have spent is `epochs * objects`).
    pub total_rows_patched: usize,
    /// Out-of-horizon events dropped by ingestion.
    pub dropped_events: u64,
}

/// Replay the projection window of a generated enterprise account through
/// the serving engine, re-optimizing every `epoch_days`.
pub fn run_serving(options: &ServingOptions) -> Result<ServingOutcome, ScopeError> {
    if options.epoch_days == 0 {
        return Err(ScopeError::InvalidConfig(
            "epoch_days must be positive".into(),
        ));
    }
    if options.accounts == 0 {
        return Err(ScopeError::InvalidConfig(
            "at least one account shard is required".into(),
        ));
    }
    let workload = EnterpriseWorkload::generate(options.workload.clone())?;
    let horizon_months = workload.options.future_months;
    let horizon_days = horizon_months * DAYS_PER_MONTH;
    let events = billing_events(
        &workload,
        workload.projection_start() * DAYS_PER_MONTH,
        horizon_days,
    );

    let config = ServeConfig {
        horizon_days,
        horizon_months: f64::from(horizon_months),
        decay_per_day: options.decay_per_day,
        bucket_base: options.bucket_base,
        threads: options.threads,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(options.catalog.clone(), options.schemes.clone(), config)?;
    // Everything starts on the platform default (index 0 = fastest tier),
    // round-robined into synthetic billing accounts.
    for d in workload.catalog.iter() {
        engine.register(
            ServeObject::new(
                d.name.clone(),
                format!("account-{}", d.id % options.accounts),
                d.size_gb,
                TierId(0),
            )
            .with_latency_threshold(d.latency_threshold_seconds),
        )?;
    }
    let columns = engine.columns_from_events(&events);

    let mut outcome = ServingOutcome {
        epochs: Vec::new(),
        objects: engine.len(),
        accounts: options.accounts.min(engine.len()),
        final_total_objective: 0.0,
        total_retier_decisions: 0,
        total_rows_patched: 0,
        dropped_events: 0,
    };
    let mut day = 0u32;
    while day < horizon_days {
        let hi = (day + options.epoch_days).min(horizon_days);
        let ingest = engine.ingest(&columns.filter_day_range(day, hi));
        engine.advance(hi);
        let cold = if options.verify {
            Some(reference::full_resolve(&engine)?)
        } else {
            None
        };
        let resolved = engine.reoptimize()?;
        let matches_reference = match &cold {
            Some(cold) => {
                reference::total_objective(cold).to_bits() == resolved.total_objective.to_bits()
                    && cold.len() == resolved.accounts.len()
                    && cold.iter().zip(&resolved.accounts).all(|(c, i)| {
                        c.account == i.account && c.assignment.choices == i.assignment.choices
                    })
            }
            None => false,
        };
        outcome.total_retier_decisions += resolved.retier_decisions;
        outcome.total_rows_patched += resolved.rows_patched;
        outcome.final_total_objective = resolved.total_objective;
        outcome.dropped_events = resolved.dropped_events;
        outcome.epochs.push(ServingEpoch {
            day: hi,
            folded_events: ingest.folded,
            rows_patched: resolved.rows_patched,
            retier_decisions: resolved.retier_decisions,
            total_objective: resolved.total_objective,
            verified: cold.is_some(),
            matches_reference,
        });
        day = hi;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> ServingOptions {
        ServingOptions {
            workload: EnterpriseOptions {
                n_datasets: 60,
                history_months: 6,
                future_months: 6,
                seed: 11,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn serving_replay_matches_the_batch_reference_on_every_epoch() {
        let outcome = run_serving(&options()).unwrap();
        assert_eq!(outcome.objects, 60);
        assert_eq!(outcome.epochs.len(), 12); // 180 days / 15-day epochs
        for (i, e) in outcome.epochs.iter().enumerate() {
            assert!(e.verified, "epoch {i} skipped verification");
            assert!(e.matches_reference, "epoch {i} diverged from reference");
        }
        // The first epoch is a cold build; the steady state is a delta
        // path that re-evaluates only re-bucketed rows.
        assert_eq!(outcome.epochs[0].rows_patched, outcome.objects);
        let warm_rows: usize = outcome.epochs[1..].iter().map(|e| e.rows_patched).sum();
        assert!(
            warm_rows < (outcome.epochs.len() - 1) * outcome.objects,
            "warm epochs patched {warm_rows} rows; not incremental"
        );
        // Cooling datasets make the engine move placements mid-stream.
        assert!(outcome.total_retier_decisions > 0, "{outcome:?}");
        // The replayed trace lies inside the configured horizon.
        assert_eq!(outcome.dropped_events, 0);
        assert!(outcome.final_total_objective.is_finite());
    }

    #[test]
    fn serving_options_are_validated() {
        let bad = ServingOptions {
            epoch_days: 0,
            ..options()
        };
        assert!(matches!(
            run_serving(&bad),
            Err(ScopeError::InvalidConfig(_))
        ));
        let bad = ServingOptions {
            accounts: 0,
            ..options()
        };
        assert!(matches!(
            run_serving(&bad),
            Err(ScopeError::InvalidConfig(_))
        ));
    }
}
