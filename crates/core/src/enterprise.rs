//! Enterprise Data I experiments: Tables II–IV and Fig 3.
//!
//! These experiments operate at metadata level: a synthetic dataset catalog
//! plus access-log series from `scope-workload` stand in for the
//! proprietary Adobe Experience Platform accounts, OPTASSIGN (with `K = 0`,
//! i.e. no compression) picks tiers per dataset, and the
//! `scope-cloudsim` billing simulator replays the *actual* accesses of the
//! projection window to compute the realised "% cost benefit" relative to
//! the all-hot platform baseline.

use crate::ScopeError;
use scope_cloudsim::{
    billing::Placement, AccessEvent, BillingReport, BillingSimulator, ObjectSpec, TierCatalog,
    TierId,
};
use scope_learn::ConfusionMatrix;
use scope_optassign::{ideal_tier_labels, PredictorFeatures, TierPredictor, TieringBaseline};
use scope_workload::{AccessSeries, DatasetCatalog, EnterpriseOptions, EnterpriseWorkload};
use serde::{Deserialize, Serialize};

/// Result row of Table II: the projected % cost benefit for one customer
/// account at two horizons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomerBenefit {
    /// Customer label ("Customer A", ...).
    pub customer: String,
    /// Total catalog size in PB.
    pub total_size_pb: f64,
    /// % cost benefit over the all-hot baseline for a 2-month horizon
    /// (Hot/Cool tiers only).
    pub benefit_2_months: f64,
    /// % cost benefit for a 6-month horizon (Hot/Cool/Archive tiers).
    pub benefit_6_months: f64,
}

/// Result row of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Model / rule description.
    pub model: String,
    /// "Predicted", "Known" or "N/A".
    pub access_information: String,
    /// Horizon in months.
    pub duration_months: u32,
    /// % cost benefit over the all-hot baseline.
    pub benefit_percent: f64,
}

/// Convert a month of the access series into billing events for one dataset.
fn access_events(
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    from_month: u32,
    horizon: u32,
) -> Vec<AccessEvent> {
    let mut events = Vec::new();
    for d in datasets.iter() {
        for m in from_month..from_month + horizon {
            let acc = series.get(d.id, m);
            if acc.reads > 0.0 {
                events.push(AccessEvent::read(
                    d.name.clone(),
                    m - from_month,
                    acc.reads * acc.read_fraction * d.size_gb,
                ));
            }
            if acc.writes > 0.0 {
                events.push(AccessEvent::write(
                    d.name.clone(),
                    m - from_month,
                    acc.writes * crate::lifecycle::WRITE_VOLUME_FRACTION * d.size_gb,
                ));
            }
        }
    }
    events
}

/// Replay the projection window against a per-dataset tier assignment and
/// return the billing report.
fn simulate(
    catalog: &TierCatalog,
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    tiers: &[TierId],
    current_tier: TierId,
    from_month: u32,
    horizon: u32,
) -> Result<BillingReport, ScopeError> {
    let mut sim = BillingSimulator::new(catalog.clone());
    for d in datasets.iter() {
        sim.place(
            ObjectSpec::new(d.name.clone(), d.size_gb).on_tier(current_tier),
            Placement::uncompressed(tiers[d.id]),
        )?;
    }
    let events = access_events(datasets, series, from_month, horizon);
    Ok(sim.run(horizon, &events)?)
}

/// Percentage benefit of assigning `tiers` relative to keeping everything on
/// `current_tier`, over the window `[from_month, from_month + horizon)`.
pub fn percent_benefit(
    catalog: &TierCatalog,
    datasets: &DatasetCatalog,
    series: &AccessSeries,
    tiers: &[TierId],
    current_tier: TierId,
    from_month: u32,
    horizon: u32,
) -> Result<f64, ScopeError> {
    let baseline_tiers = vec![current_tier; datasets.len()];
    let baseline = simulate(
        catalog,
        datasets,
        series,
        &baseline_tiers,
        current_tier,
        from_month,
        horizon,
    )?;
    let optimized = simulate(
        catalog,
        datasets,
        series,
        tiers,
        current_tier,
        from_month,
        horizon,
    )?;
    Ok(optimized.percent_benefit_vs(&baseline))
}

/// Reproduce Table II: % cost benefit for several customer accounts at 2-
/// and 6-month horizons, using OPTASSIGN with known future accesses
/// (`K = 0`, dataset-level placement).
pub fn customer_benefit_table(
    accounts: &[(String, EnterpriseOptions)],
) -> Result<Vec<CustomerBenefit>, ScopeError> {
    let mut rows = Vec::with_capacity(accounts.len());
    for (name, options) in accounts {
        let workload = EnterpriseWorkload::generate(options.clone())?;
        let start = workload.projection_start();
        let hot_cool = TierCatalog::azure_hot_cool();
        let hot = hot_cool.tier_id("Hot")?;
        let labels_2 = ideal_tier_labels(
            &hot_cool,
            &workload.catalog,
            &workload.series,
            start,
            2,
            hot,
        )?;
        let benefit_2 = percent_benefit(
            &hot_cool,
            &workload.catalog,
            &workload.series,
            &labels_2,
            hot,
            start,
            2,
        )?;
        let hca = TierCatalog::azure_hot_cool_archive();
        let hot_hca = hca.tier_id("Hot")?;
        let horizon6 = 6.min(workload.options.future_months);
        let labels_6 = ideal_tier_labels(
            &hca,
            &workload.catalog,
            &workload.series,
            start,
            horizon6,
            hot_hca,
        )?;
        let benefit_6 = percent_benefit(
            &hca,
            &workload.catalog,
            &workload.series,
            &labels_6,
            hot_hca,
            start,
            horizon6,
        )?;
        rows.push(CustomerBenefit {
            customer: name.clone(),
            total_size_pb: workload.catalog.total_size_pb(),
            benefit_2_months: benefit_2,
            benefit_6_months: benefit_6,
        });
    }
    Ok(rows)
}

/// Reproduce Table III: train the Random-Forest tier predictor on the
/// account's history and return the predicted-vs-ideal confusion matrix at
/// the start of the projection window.
pub fn predictor_confusion(
    options: &EnterpriseOptions,
    horizon_months: u32,
) -> Result<ConfusionMatrix, ScopeError> {
    let workload = EnterpriseWorkload::generate(options.clone())?;
    let catalog = TierCatalog::azure_hot_cool();
    let hot = catalog.tier_id("Hot")?;
    let eval_month = workload.projection_start();
    let train_until = eval_month.saturating_sub(horizon_months).max(3);
    let predictor = TierPredictor::train(
        &catalog,
        &workload.catalog,
        &workload.series,
        train_until,
        horizon_months,
        hot,
        PredictorFeatures::default(),
        options.seed,
    )?;
    Ok(predictor.evaluate(
        &catalog,
        &workload.catalog,
        &workload.series,
        eval_month,
        horizon_months,
        hot,
    )?)
}

/// Reproduce Table IV: compare OPTASSIGN (with predicted and with known
/// access information, at several horizons and tier sets) against the
/// intuitive caching / recency baselines.
pub fn tiering_baseline_comparison(
    options: &EnterpriseOptions,
) -> Result<Vec<BaselineRow>, ScopeError> {
    let workload = EnterpriseWorkload::generate(options.clone())?;
    let start = workload.projection_start();
    let catalog = TierCatalog::azure_hot_cool();
    let hot = catalog.tier_id("Hot")?;
    let cool = catalog.tier_id("Cool")?;
    let max_horizon = workload.options.future_months;
    let mut rows = Vec::new();

    // Rule-based baselines, evaluated over (up to) a 4-month window as in
    // the paper.
    let rule_horizon = 4.min(max_horizon);
    rows.push(BaselineRow {
        model: TieringBaseline::AllHot.name(),
        access_information: "N/A".to_string(),
        duration_months: 2.min(max_horizon),
        benefit_percent: 0.0,
    });
    for months in [2u32, 1] {
        let tiers = TieringBaseline::HotIfAccessedWithin(months).assign(
            &catalog,
            &workload.catalog,
            &workload.series,
            start,
            hot,
            cool,
            hot,
        )?;
        rows.push(BaselineRow {
            model: TieringBaseline::HotIfAccessedWithin(months).name(),
            access_information: "N/A".to_string(),
            duration_months: rule_horizon,
            benefit_percent: percent_benefit(
                &catalog,
                &workload.catalog,
                &workload.series,
                &tiers,
                hot,
                start,
                rule_horizon,
            )?,
        });
    }
    {
        let tiers = TieringBaseline::PreviousOptimal.assign(
            &catalog,
            &workload.catalog,
            &workload.series,
            start,
            hot,
            cool,
            hot,
        )?;
        rows.push(BaselineRow {
            model: TieringBaseline::PreviousOptimal.name(),
            access_information: "N/A".to_string(),
            duration_months: 2.min(max_horizon),
            benefit_percent: percent_benefit(
                &catalog,
                &workload.catalog,
                &workload.series,
                &tiers,
                hot,
                start,
                2.min(max_horizon),
            )?,
        });
    }

    // OptAssign with predicted access information (the trained RF).
    for horizon in [2u32, 4] {
        let horizon = horizon.min(max_horizon);
        let train_until = start.saturating_sub(horizon).max(3);
        let predictor = TierPredictor::train(
            &catalog,
            &workload.catalog,
            &workload.series,
            train_until,
            horizon,
            hot,
            PredictorFeatures::default(),
            options.seed,
        )?;
        let tiers = predictor.predict_all(&workload.catalog, &workload.series, start);
        rows.push(BaselineRow {
            model: "OptAssign (Hot, Cool)".to_string(),
            access_information: "Predicted".to_string(),
            duration_months: horizon,
            benefit_percent: percent_benefit(
                &catalog,
                &workload.catalog,
                &workload.series,
                &tiers,
                hot,
                start,
                horizon,
            )?,
        });
    }

    // OptAssign with known access information at increasing horizons.
    for horizon in [2u32, 4, 6] {
        let horizon = horizon.min(max_horizon);
        let tiers = ideal_tier_labels(
            &catalog,
            &workload.catalog,
            &workload.series,
            start,
            horizon,
            hot,
        )?;
        rows.push(BaselineRow {
            model: "OptAssign (Hot, Cool)".to_string(),
            access_information: "Known".to_string(),
            duration_months: horizon,
            benefit_percent: percent_benefit(
                &catalog,
                &workload.catalog,
                &workload.series,
                &tiers,
                hot,
                start,
                horizon,
            )?,
        });
    }

    // OptAssign with known accesses and the archive tier enabled.
    {
        let hca = TierCatalog::azure_hot_cool_archive();
        let hot_hca = hca.tier_id("Hot")?;
        let horizon = 6.min(max_horizon);
        let tiers = ideal_tier_labels(
            &hca,
            &workload.catalog,
            &workload.series,
            start,
            horizon,
            hot_hca,
        )?;
        rows.push(BaselineRow {
            model: "OptAssign (Hot, Cool, Archive)".to_string(),
            access_information: "Known".to_string(),
            duration_months: horizon,
            benefit_percent: percent_benefit(
                &hca,
                &workload.catalog,
                &workload.series,
                &tiers,
                hot_hca,
                start,
                horizon,
            )?,
        });
    }
    Ok(rows)
}

/// Per-dataset data for the Fig 3 scatter plots: (size GB, projected reads,
/// % cost benefit of the optimized tier vs staying hot) over a horizon.
pub fn benefit_scatter(
    options: &EnterpriseOptions,
    horizon_months: u32,
) -> Result<Vec<(f64, f64, f64)>, ScopeError> {
    let workload = EnterpriseWorkload::generate(options.clone())?;
    let start = workload.projection_start();
    let horizon = horizon_months.min(workload.options.future_months);
    let catalog = TierCatalog::azure_hot_cool_archive();
    let hot = catalog.tier_id("Hot")?;
    let labels = ideal_tier_labels(
        &catalog,
        &workload.catalog,
        &workload.series,
        start,
        horizon,
        hot,
    )?;
    let mut points = Vec::with_capacity(workload.catalog.len());
    for d in workload.catalog.iter() {
        // Simulate just this dataset under both placements.
        let single = DatasetCatalog::new(vec![d.clone()]);
        // Re-index: the single-dataset catalog re-assigns id 0, but the
        // series is keyed by the original id, so build a tiny series view.
        let mut series = AccessSeries::new(workload.series.months());
        for m in 0..workload.series.months() {
            series.set(0, m, workload.series.get(d.id, m));
        }
        let benefit = percent_benefit(
            &catalog,
            &single,
            &series,
            &[labels[d.id]],
            hot,
            start,
            horizon,
        )?;
        let reads = workload.series.total_reads(d.id, start, start + horizon);
        points.push((d.size_gb, reads, benefit));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_learn::f1_score;

    fn account(seed: u64, n: usize) -> EnterpriseOptions {
        EnterpriseOptions {
            n_datasets: n,
            history_months: 10,
            future_months: 6,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn customer_benefits_grow_with_horizon_and_are_positive() {
        let accounts = vec![
            ("Customer A".to_string(), account(1, 120)),
            ("Customer B".to_string(), account(2, 90)),
        ];
        let rows = customer_benefit_table(&accounts).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.total_size_pb > 0.0);
            assert!(
                r.benefit_2_months >= 0.0,
                "{}: 2-month benefit {}",
                r.customer,
                r.benefit_2_months
            );
            assert!(
                r.benefit_6_months > r.benefit_2_months,
                "{}: 6-month benefit {} should exceed 2-month {}",
                r.customer,
                r.benefit_6_months,
                r.benefit_2_months
            );
            // The paper reports 50-83% at 6 months with the archive tier.
            assert!(
                r.benefit_6_months > 20.0,
                "{}: 6-month benefit too small: {}",
                r.customer,
                r.benefit_6_months
            );
        }
    }

    #[test]
    fn predictor_confusion_matrix_is_near_diagonal() {
        let cm = predictor_confusion(&account(3, 150), 2).unwrap();
        assert_eq!(cm.total(), 150);
        assert!(cm.accuracy() > 0.8, "accuracy {}", cm.accuracy());
        assert!(f1_score(&cm, 0) > 0.5);
        assert!(f1_score(&cm, 1) > 0.8);
    }

    #[test]
    fn optassign_beats_caching_baselines_and_archive_helps() {
        let rows = tiering_baseline_comparison(&account(4, 120)).unwrap();
        assert_eq!(rows.len(), 10);
        let benefit = |model: &str, info: &str, dur: u32| -> f64 {
            rows.iter()
                .find(|r| {
                    r.model == model && r.access_information == info && r.duration_months == dur
                })
                .map(|r| r.benefit_percent)
                .unwrap_or_else(|| panic!("missing row {model}/{info}/{dur}"))
        };
        let all_hot = benefit("All hot", "N/A", 2);
        assert_eq!(all_hot, 0.0);
        let known2 = benefit("OptAssign (Hot, Cool)", "Known", 2);
        let known4 = benefit("OptAssign (Hot, Cool)", "Known", 4);
        let known6 = benefit("OptAssign (Hot, Cool)", "Known", 6);
        let predicted2 = benefit("OptAssign (Hot, Cool)", "Predicted", 2);
        let archive6 = benefit("OptAssign (Hot, Cool, Archive)", "Known", 6);
        // Longer horizons help; archive helps further; predictions are close
        // to the known-access optimum; everything beats doing nothing.
        assert!(known2 > 0.0);
        assert!(known6 >= known4 && known4 >= known2);
        assert!(archive6 > known6);
        assert!(predicted2 > 0.0);
        assert!(predicted2 >= known2 * 0.5);
        // The caching rules are clearly worse than OptAssign at comparable
        // horizons.
        let recency = benefit(&TieringBaseline::HotIfAccessedWithin(1).name(), "N/A", 4);
        let known_comparable = benefit("OptAssign (Hot, Cool)", "Known", 4);
        assert!(known_comparable > recency);
    }

    #[test]
    fn benefit_scatter_has_one_point_per_dataset() {
        let opts = account(5, 60);
        let points = benefit_scatter(&opts, 6).unwrap();
        assert_eq!(points.len(), 60);
        // Datasets that are never read should show a large benefit (they move
        // to cool/archive); at least some heavily read datasets show ~0.
        let max_benefit = points.iter().map(|p| p.2).fold(f64::NEG_INFINITY, f64::max);
        let min_benefit = points.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
        assert!(max_benefit > 30.0, "max benefit {max_benefit}");
        assert!(
            min_benefit >= -1e-6,
            "benefit should never be negative: {min_benefit}"
        );
    }
}
