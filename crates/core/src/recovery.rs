//! Crash-recovery scenario: the journaled serving loop under seeded
//! storage faults.
//!
//! Where [`crate::chaos`] injects faults into the *event stream* and the
//! *compute*, this scenario injects them into the *storage* underneath
//! the write-ahead intake journal, and crashes the engine mid-flight:
//!
//! * The full delivery schedule — sequenced batches interleaved with
//!   epoch boundaries (sync, heat decay, incremental re-solve, durable
//!   checkpoint) — is laid out up front as a step list. A fault-free
//!   **twin** engine runs the whole schedule once, cleanly, recording its
//!   checkpoint bytes and objective bits after every epoch.
//! * The journaled engine then runs the same schedule over a
//!   [`FaultyStorage`]-wrapped in-memory backend. The seeded
//!   [`StorageFaultPlan`] fails and tears appends, fails syncs, and picks
//!   crash points; at every crash the plan may additionally tear the
//!   unsynced tail and flip a durable bit. On top of the plan's own
//!   schedule, [`StorageFaultPlan::fuzz_points`] forces at least
//!   [`RecoveryOptions::fuzz_crashes`] crashes at fuzzed step positions,
//!   so even a rates-none plan exercises full crash/recovery cycles.
//! * Every crash runs the **single recovery protocol**
//!   ([`scope_serve::JournaledEngine::recover`]) and resumes the schedule
//!   from the position the [`scope_serve::RecoveryReport`] proves durable
//!   (`max` of the checkpoint marker and the position after the last
//!   recovered delivery); lost deliveries are simply re-delivered. The
//!   journal's epoch-boundary markers guarantee the resume point never
//!   lands past an un-replayed boundary — recovery cuts its tail at the
//!   first marker, so the harness re-runs the boundary's decay/re-solve
//!   instead of replaying deliveries across it. If
//!   corruption ever destroys every checkpoint *and* the journal's
//!   origin, the harness wipes storage and restarts the schedule from
//!   step zero — recovery by total re-delivery.
//! * After every epoch the journaled engine's checkpoint must be
//!   **byte-identical** to the twin's for that epoch, and the final
//!   states must match bit-for-bit — the end-to-end pin that journaling,
//!   crash, recovery, and replay are lossless.
//!
//! Livelock is impossible by construction: [`FaultyStorage`] mixes its
//! crash generation into every draw (a replayed operation re-draws its
//! faults), forced fuzz crashes fire exactly once, and after
//! [`RecoveryOptions::crash_cap`] crashes the harness swaps in a
//! rates-none plan and lets the run drain cleanly.

use crate::lifecycle::billing_events;
use crate::ScopeError;
use scope_cloudsim::{EventColumns, TierCatalog, TierId, DAYS_PER_MONTH};
use scope_faults::{FaultyStorage, StorageFaultPlan, StorageFaultRates};
use scope_serve::{
    CompressionOption, JournaledEngine, ServeConfig, ServeEngine, ServeError, ServeObject,
};
use scope_wal::{JournalConfig, MemStorage, WalError};
use scope_workload::{EnterpriseOptions, EnterpriseWorkload};
use serde::{Deserialize, Serialize};

/// Options for the crash-recovery replay.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOptions {
    /// The enterprise account to generate (catalog + day-resolution log).
    pub workload: EnterpriseOptions,
    /// Tier catalog the engine re-optimizes over.
    pub catalog: TierCatalog,
    /// Compression schemes shared by all objects (index 0 must be the
    /// identity scheme).
    pub schemes: Vec<CompressionOption>,
    /// Re-optimization cadence in days.
    pub epoch_days: u32,
    /// Number of synthetic billing accounts (shards).
    pub accounts: usize,
    /// Batches each epoch's events are split into before delivery.
    pub batches_per_epoch: usize,
    /// Worker threads for the sharded re-solve (0 = default).
    pub threads: usize,
    /// Per-day heat decay for the engine.
    pub decay_per_day: f64,
    /// Geometric heat-bucket base for the engine.
    pub bucket_base: f64,
    /// Storage-fault-plan seed.
    pub seed: u64,
    /// Storage-fault-plan rates.
    pub rates: StorageFaultRates,
    /// Records per journal segment (small values exercise rolling).
    pub segment_records: usize,
    /// Crashes forced at fuzzed step positions regardless of the crash
    /// rate (each fires exactly once). The issue floor is 3.
    pub fuzz_crashes: usize,
    /// After this many crashes the plan is swapped for rates-none so the
    /// run always drains (forced fuzz crashes still fire).
    pub crash_cap: usize,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            workload: EnterpriseOptions::default(),
            catalog: TierCatalog::azure_hot_cool_archive(),
            schemes: vec![
                CompressionOption::none(),
                CompressionOption::new("zstd", 2.4, 0.35),
            ],
            epoch_days: 15,
            accounts: 4,
            batches_per_epoch: 4,
            threads: 0,
            decay_per_day: 0.98,
            bucket_base: 2.0,
            seed: 0xD0_5EED,
            rates: StorageFaultRates::light(),
            segment_records: 8,
            fuzz_crashes: 3,
            crash_cap: 48,
        }
    }
}

/// One epoch of the recovery replay (last attempt wins after re-runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEpoch {
    /// Day the engine advanced to before this re-solve.
    pub day: u32,
    /// Times this epoch step executed (re-runs after crashes included).
    pub attempts: u32,
    /// Whether the durable checkpoint equalled the twin's byte-for-byte.
    pub checkpoint_matches_twin: bool,
    /// Whether the re-solve objective equalled the twin's bit-for-bit.
    pub objective_bits_match: bool,
}

/// Outcome of the crash-recovery replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Per-epoch records, in schedule order.
    pub epochs: Vec<RecoveryEpoch>,
    /// Objects served.
    pub objects: usize,
    /// Steps in the schedule (deliveries + epochs).
    pub steps: usize,
    /// Crashes survived (plan-drawn, fault-triggered, and forced).
    pub crashes: usize,
    /// Crashes forced at fuzzed positions.
    pub forced_crashes: usize,
    /// Injected append/sync failures that surfaced as typed errors.
    pub injected_op_faults: usize,
    /// Crashes that tore the unsynced tail.
    pub torn_crashes: usize,
    /// Crashes that flipped a durable bit.
    pub bit_flip_crashes: usize,
    /// Recoveries that found no usable checkpoint and rebuilt fresh.
    pub recoveries_started_fresh: usize,
    /// Full restarts after storage corruption destroyed the journal
    /// origin (recovery by total re-delivery).
    pub unrecoverable_resets: usize,
    /// Checkpoints quarantined (deleted) during walk-back, total.
    pub quarantined_checkpoints: usize,
    /// Corrupt interior records quarantined, total.
    pub quarantined_records: usize,
    /// Torn tail bytes truncated, total.
    pub torn_bytes: u64,
    /// Journal records replayed through the validating intake, total.
    pub replayed_records: u64,
    /// Deliveries re-executed after recoveries (the re-delivery cost).
    pub redelivered_batches: u64,
    /// Whether every epoch's durable checkpoint matched the twin's.
    pub checkpoints_bit_identical: bool,
    /// Whether the final engine state matched the twin's bit-for-bit.
    pub final_bit_identical: bool,
    /// Whether the crash cap was hit and the plan swapped to rates-none.
    pub fault_injection_capped: bool,
}

/// One step of the serving schedule.
enum Step {
    /// Deliver sequenced batch `seq`.
    Deliver(u64, EventColumns),
    /// Epoch boundary: sync, advance to `day`, re-solve, checkpoint.
    Epoch { day: u32, epoch: usize },
}

/// Split `columns` into `n` contiguous batches, preserving trace order
/// (same contract as the chaos scenario's splitter).
fn split_batches(columns: &EventColumns, n: usize) -> Vec<EventColumns> {
    let total = columns.len();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    for b in 0..n.max(1) {
        let lo = (b * per).min(total);
        let hi = ((b + 1) * per).min(total);
        let mut batch = EventColumns::default();
        batch.days.extend_from_slice(&columns.days[lo..hi]);
        batch.periods.extend_from_slice(&columns.periods[lo..hi]);
        batch
            .object_ids
            .extend_from_slice(&columns.object_ids[lo..hi]);
        batch.kinds.extend_from_slice(&columns.kinds[lo..hi]);
        batch.volumes.extend_from_slice(&columns.volumes[lo..hi]);
        out.push(batch);
    }
    out
}

/// Was this error injected by the fault plan (as opposed to a real bug)?
fn is_injected(err: &ServeError) -> bool {
    matches!(
        err,
        ServeError::Wal(WalError::Io { reason, .. }) if reason.starts_with("injected fault")
    )
}

/// Apply the plan's crash-time corruption to the raw store: possibly tear
/// the newest pending tail, drop the rest of the pending bytes, possibly
/// flip one durable bit. Returns `(tore, flipped)`.
fn corrupt_at_crash(
    plan: &StorageFaultPlan,
    generation: u64,
    pos: u64,
    mem: &mut MemStorage,
) -> (bool, bool) {
    let mut tore = false;
    if let Some((name, pending)) = mem.pending_objects().into_iter().next_back() {
        if let Some(keep) = plan.torn_keep(generation, pos, pending) {
            mem.crash_torn(&name, keep);
            tore = true;
        }
    }
    mem.crash();
    let mut flipped = false;
    if let Some(draw) = plan.flip_bit(generation, pos) {
        let targets: Vec<String> = mem
            .durable_objects()
            .into_iter()
            .filter(|(_, len)| *len > 0)
            .map(|(name, _)| name)
            .collect();
        if !targets.is_empty() {
            let target = &targets[(draw >> 48) as usize % targets.len()];
            flipped = mem.flip_durable_bit(target, draw & 0xffff_ffff_ffff);
        }
    }
    (tore, flipped)
}

/// Replay the projection window of a generated enterprise account through
/// the journaled serving engine under the seeded storage-fault schedule,
/// crashing and recovering along the way, and pin the recovered states
/// bit-for-bit against a never-crashed twin (see the [module docs](self)).
pub fn run_recovery(options: &RecoveryOptions) -> Result<RecoveryOutcome, ScopeError> {
    if options.epoch_days == 0 {
        return Err(ScopeError::InvalidConfig(
            "epoch_days must be positive".into(),
        ));
    }
    if options.accounts == 0 {
        return Err(ScopeError::InvalidConfig(
            "at least one account shard is required".into(),
        ));
    }
    if options.batches_per_epoch == 0 {
        return Err(ScopeError::InvalidConfig(
            "at least one batch per epoch is required".into(),
        ));
    }
    let plan = StorageFaultPlan::new(options.seed, options.rates)
        .map_err(|e| ScopeError::InvalidConfig(e.to_string()))?;
    let nofault = StorageFaultPlan::new(options.seed, StorageFaultRates::none())
        .map_err(|e| ScopeError::InvalidConfig(e.to_string()))?;
    let journal_cfg = JournalConfig {
        segment_records: options.segment_records,
        ..JournalConfig::default()
    };

    let workload = EnterpriseWorkload::generate(options.workload.clone())?;
    let horizon_months = workload.options.future_months;
    let horizon_days = horizon_months * DAYS_PER_MONTH;
    let events = billing_events(
        &workload,
        workload.projection_start() * DAYS_PER_MONTH,
        horizon_days,
    );

    let config = ServeConfig {
        horizon_days,
        horizon_months: f64::from(horizon_months),
        decay_per_day: options.decay_per_day,
        bucket_base: options.bucket_base,
        threads: options.threads,
        ..ServeConfig::default()
    };
    let build = || -> Result<ServeEngine, ServeError> {
        let mut engine = ServeEngine::new(
            options.catalog.clone(),
            options.schemes.clone(),
            config.clone(),
        )?;
        for d in workload.catalog.iter() {
            engine.register(
                ServeObject::new(
                    d.name.clone(),
                    format!("account-{}", d.id % options.accounts),
                    d.size_gb,
                    TierId(0),
                )
                .with_latency_threshold(d.latency_threshold_seconds),
            )?;
        }
        Ok(engine)
    };

    // Lay out the schedule: per-epoch batch deliveries, then the epoch
    // boundary step. `after_delivery[d]` is the step position just after
    // the `d`-th delivery — where a recovery covering `d` deliveries
    // resumes (unless the checkpoint marker proves more progress).
    let columns = build()?.columns_from_events(&events);
    let mut steps: Vec<Step> = Vec::new();
    let mut after_delivery: Vec<usize> = vec![0];
    let mut next_seq = 0u64;
    let mut epoch_count = 0usize;
    let mut day = 0u32;
    while day < horizon_days {
        let hi = (day + options.epoch_days).min(horizon_days);
        for batch in split_batches(
            &columns.filter_day_range(day, hi),
            options.batches_per_epoch,
        ) {
            steps.push(Step::Deliver(next_seq, batch));
            after_delivery.push(steps.len());
            next_seq += 1;
        }
        steps.push(Step::Epoch {
            day: hi,
            epoch: epoch_count,
        });
        epoch_count += 1;
        day = hi;
    }

    // Fault-free twin: run the whole schedule once, cleanly, recording
    // the reference trajectory.
    let mut twin = build()?;
    let mut twin_checkpoints: Vec<Vec<u8>> = Vec::with_capacity(epoch_count);
    let mut twin_objectives: Vec<u64> = Vec::with_capacity(epoch_count);
    for step in &steps {
        match step {
            Step::Deliver(seq, batch) => {
                twin.ingest_sequenced(*seq, batch)?;
            }
            Step::Epoch { day, .. } => {
                twin.advance(*day);
                let resolved = twin.reoptimize()?;
                twin_objectives.push(resolved.total_objective.to_bits());
                twin_checkpoints.push(twin.checkpoint());
            }
        }
    }

    let mut outcome = RecoveryOutcome {
        epochs: Vec::new(),
        objects: twin.len(),
        steps: steps.len(),
        crashes: 0,
        forced_crashes: 0,
        injected_op_faults: 0,
        torn_crashes: 0,
        bit_flip_crashes: 0,
        recoveries_started_fresh: 0,
        unrecoverable_resets: 0,
        quarantined_checkpoints: 0,
        quarantined_records: 0,
        torn_bytes: 0,
        replayed_records: 0,
        redelivered_batches: 0,
        checkpoints_bit_identical: true,
        final_bit_identical: false,
        fault_injection_capped: false,
    };
    let mut epochs: Vec<Option<RecoveryEpoch>> = vec![None; epoch_count];
    let mut attempts: Vec<u32> = vec![0; epoch_count];

    // Forced crash positions, each firing exactly once.
    let mut pending_fuzz = plan.fuzz_points(steps.len() as u64, options.fuzz_crashes);

    let active_plan = |crashes: usize| {
        if crashes >= options.crash_cap {
            &nofault
        } else {
            &plan
        }
    };
    let mut journaled = JournaledEngine::create(
        build()?,
        FaultyStorage::new(MemStorage::new(), active_plan(0).clone()),
        journal_cfg.clone(),
    )?;
    let mut pos = 0usize;
    let mut max_pos = 0usize;
    while pos < steps.len() {
        let step_pos = pos;
        let result: Result<(), ServeError> = match &steps[step_pos] {
            Step::Deliver(seq, batch) => {
                if step_pos < max_pos {
                    outcome.redelivered_batches += 1;
                }
                journaled.ingest_sequenced(*seq, batch).map(|_| ())
            }
            Step::Epoch { day, epoch } => (|| {
                journaled.advance(*day)?;
                let resolved = journaled.reoptimize()?;
                journaled.checkpoint_durable(step_pos as u64 + 1)?;
                attempts[*epoch] += 1;
                let checkpoint_ok = journaled.engine().checkpoint() == twin_checkpoints[*epoch];
                let objective_ok = resolved.total_objective.to_bits() == twin_objectives[*epoch];
                if !checkpoint_ok {
                    outcome.checkpoints_bit_identical = false;
                }
                epochs[*epoch] = Some(RecoveryEpoch {
                    day: *day,
                    attempts: attempts[*epoch],
                    checkpoint_matches_twin: checkpoint_ok,
                    objective_bits_match: objective_ok,
                });
                Ok(())
            })(),
        };

        let mut crash = false;
        match result {
            Ok(()) => {
                pos += 1;
                max_pos = max_pos.max(pos);
                // Forced fuzz crash at this position?
                if pending_fuzz.first() == Some(&(step_pos as u64)) {
                    pending_fuzz.remove(0);
                    outcome.forced_crashes += 1;
                    crash = true;
                } else if outcome.crashes < options.crash_cap
                    && plan.crash_at(journaled.journal().storage().generation(), step_pos as u64)
                {
                    crash = true;
                }
            }
            Err(err) if is_injected(&err) => {
                outcome.injected_op_faults += 1;
                crash = true;
            }
            Err(err) => return Err(err.into()),
        }
        if !crash {
            continue;
        }
        outcome.crashes += 1;

        // Crash: drop all in-memory state, apply crash-time corruption,
        // bump the generation, recover, resume from proven progress.
        let mut faulty = journaled.crash();
        let generation = faulty.generation();
        let (tore, flipped) =
            corrupt_at_crash(&plan, generation, step_pos as u64, faulty.inner_mut());
        outcome.torn_crashes += usize::from(tore);
        outcome.bit_flip_crashes += usize::from(flipped);
        faulty.bump_generation();
        let generations = faulty.generation();
        if outcome.crashes == options.crash_cap {
            outcome.fault_injection_capped = true;
        }
        // Past the cap, rebuild the wrapper around the surviving bytes
        // with the rates-none plan so the run drains.
        if outcome.crashes >= options.crash_cap {
            faulty = FaultyStorage::new(faulty.into_inner(), nofault.clone());
        }
        match JournaledEngine::recover(
            faulty,
            journal_cfg.clone(),
            options.catalog.clone(),
            options.schemes.clone(),
            build,
        ) {
            Ok((recovered, report)) => {
                outcome.recoveries_started_fresh += usize::from(report.started_fresh);
                outcome.quarantined_checkpoints += report.wal.quarantined_checkpoints.len();
                outcome.quarantined_records += report.wal.quarantined_records.len();
                outcome.torn_bytes += report.wal.torn_bytes;
                outcome.replayed_records += report.replayed;
                journaled = recovered;
                pos = after_delivery[report.resume_deliveries as usize].max(report.marker as usize);
            }
            Err(ServeError::Wal(WalError::Unrecoverable(_))) => {
                // Storage corruption destroyed the journal origin: wipe
                // and restart the whole schedule — recovery by total
                // re-delivery. The generation keeps counting so the
                // replay draws a fresh fault schedule.
                outcome.unrecoverable_resets += 1;
                let mut fresh =
                    FaultyStorage::new(MemStorage::new(), active_plan(outcome.crashes).clone());
                for _ in 0..generations {
                    fresh.bump_generation();
                }
                journaled = JournaledEngine::create(build()?, fresh, journal_cfg.clone())?;
                pos = 0;
            }
            Err(err) => return Err(err.into()),
        }
    }

    outcome.final_bit_identical = journaled.engine().checkpoint() == twin.checkpoint();
    outcome.epochs = epochs.into_iter().flatten().collect();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> RecoveryOptions {
        RecoveryOptions {
            workload: EnterpriseOptions {
                n_datasets: 60,
                history_months: 6,
                future_months: 6,
                seed: 11,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn assert_contracts(outcome: &RecoveryOutcome) {
        assert!(outcome.checkpoints_bit_identical, "{outcome:?}");
        assert!(outcome.final_bit_identical, "{outcome:?}");
        for (i, e) in outcome.epochs.iter().enumerate() {
            assert!(
                e.checkpoint_matches_twin,
                "epoch {i} checkpoint diverged from twin"
            );
            assert!(
                e.objective_bits_match,
                "epoch {i} objective diverged from twin"
            );
        }
    }

    #[test]
    fn recovery_replay_is_bit_identical_under_light_storage_faults() {
        let outcome = run_recovery(&options()).unwrap();
        assert_eq!(outcome.objects, 60);
        assert_eq!(outcome.epochs.len(), 12);
        assert_contracts(&outcome);
        assert!(outcome.crashes >= 3, "{outcome:?}");
        assert_eq!(outcome.forced_crashes, 3);
        assert!(!outcome.fault_injection_capped, "{outcome:?}");
    }

    #[test]
    fn recovery_replay_survives_heavy_storage_faults() {
        let outcome = run_recovery(&RecoveryOptions {
            rates: StorageFaultRates::heavy(),
            seed: 7,
            ..options()
        })
        .unwrap();
        assert_contracts(&outcome);
        assert!(outcome.crashes > 3, "{outcome:?}");
        // The heavy mix actually corrupted storage somewhere.
        assert!(
            outcome.torn_crashes + outcome.bit_flip_crashes + outcome.injected_op_faults > 0,
            "{outcome:?}"
        );
    }

    #[test]
    fn a_faultless_plan_still_exercises_forced_fuzz_crashes() {
        let outcome = run_recovery(&RecoveryOptions {
            rates: StorageFaultRates::none(),
            ..options()
        })
        .unwrap();
        assert_contracts(&outcome);
        assert_eq!(outcome.crashes, 3, "only the forced fuzz crashes");
        assert_eq!(outcome.forced_crashes, 3);
        assert_eq!(outcome.injected_op_faults, 0);
        assert_eq!(outcome.torn_crashes, 0);
        assert_eq!(outcome.bit_flip_crashes, 0);
        assert_eq!(outcome.unrecoverable_resets, 0);
    }

    #[test]
    fn recovery_options_are_validated() {
        for bad in [
            RecoveryOptions {
                epoch_days: 0,
                ..options()
            },
            RecoveryOptions {
                accounts: 0,
                ..options()
            },
            RecoveryOptions {
                batches_per_epoch: 0,
                ..options()
            },
            RecoveryOptions {
                rates: StorageFaultRates {
                    crash: -1.0,
                    ..StorageFaultRates::none()
                },
                ..options()
            },
        ] {
            assert!(matches!(
                run_recovery(&bad),
                Err(ScopeError::InvalidConfig(_))
            ));
        }
    }
}
