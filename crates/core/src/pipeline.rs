//! The SCOPe pipeline: partition → predict compression → assign tiers.
//!
//! [`run_policy`] executes one policy (a row of Tables IX–XI) over a
//! scenario's [`PipelineInputs`] and returns the cost/latency outcome. The
//! pipeline follows §VII exactly:
//!
//! 1. initial partitions are derived from query families; when the policy
//!    enables partitioning they are merged with G-PART, otherwise each
//!    *table* is a single partition and every query that touches any of its
//!    files is charged for scanning the whole table (which is what makes
//!    the un-partitioned baselines expensive),
//! 2. each partition gets its compression options from the per-table
//!    measured (or predicted) profiles, scaled to the partition's size,
//! 3. OPTASSIGN chooses the (tier, scheme) per partition under the policy's
//!    weights, with either the greedy solver (unbounded capacity) or the
//!    branch-and-bound solver (capacity reservations).

use crate::policy::Policy;
use crate::scenario::PipelineInputs;
use crate::ScopeError;
use scope_cloudsim::{Tier, TierCatalog};
use scope_datapart::{gpart_merge, FileCatalog, Partition};
use scope_optassign::{
    solve_branch_and_bound, solve_greedy, Assignment, CompressionOption, OptAssignProblem,
    PartitionSpec,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The outcome of running one policy — one row of Tables IX–XI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Policy name.
    pub policy: String,
    /// Adapted-from baseline label, if any.
    pub adapted_from: Option<String>,
    /// Storage cost over the horizon, cents.
    pub storage_cost: f64,
    /// Decompression compute cost, cents.
    pub decompression_cost: f64,
    /// Read cost, cents.
    pub read_cost: f64,
    /// Write / tier-change cost, cents.
    pub write_cost: f64,
    /// Total cost, cents.
    pub total_cost: f64,
    /// Worst-case read latency (time to first byte of the slowest tier in
    /// use), seconds.
    pub read_latency_ttfb: f64,
    /// Expected decompression latency per access, milliseconds.
    pub expected_decompression_ms: f64,
    /// Number of partitions assigned to each tier, in catalog order.
    pub tiering_scheme: Vec<usize>,
    /// Number of final partitions.
    pub n_partitions: usize,
}

/// Build the final partitions for a policy: G-PART merges of the query
/// families when partitioning is on, otherwise one partition per table.
///
/// The data lake physically stores one copy of every file, so after G-PART
/// the final partitions are made *disjoint*: a file claimed by several
/// merged partitions is owned by the most frequently accessed of them (the
/// hot partition). Files never touched by any query family form one
/// residual zero-frequency partition per table — these are the partitions
/// the optimizer later pushes to the coolest tier.
fn build_partitions(
    inputs: &PipelineInputs,
    policy: &Policy,
    file_catalog: &FileCatalog,
) -> Result<Vec<Partition>, ScopeError> {
    if policy.partition {
        let initial = Partition::from_families(&inputs.families);
        let merged = gpart_merge(
            &initial,
            file_catalog,
            &policy.merge_config(inputs.total_size_gb()),
        )?;
        // Assign every file to the highest-frequency partition claiming it.
        // A BTreeMap keeps the later iteration order (and therefore the file
        // order inside every partition) independent of hash seeds.
        let mut owner: std::collections::BTreeMap<scope_workload::FileRef, usize> =
            std::collections::BTreeMap::new();
        for (idx, p) in merged.iter().enumerate() {
            for f in &p.files {
                match owner.entry(f.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(idx);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        if merged[*e.get()].frequency < p.frequency {
                            e.insert(idx);
                        }
                    }
                }
            }
        }
        let mut files_of: Vec<Vec<scope_workload::FileRef>> = vec![Vec::new(); merged.len()];
        for (file, idx) in owner {
            files_of[idx].push(file);
        }
        let mut partitions: Vec<Partition> = Vec::new();
        for (idx, files) in files_of.into_iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            partitions.push(Partition::new(
                partitions.len(),
                files,
                merged[idx].frequency,
            ));
        }
        // Residual partition per table for files no query ever touches.
        let covered: std::collections::BTreeSet<scope_workload::FileRef> = partitions
            .iter()
            .flat_map(|p| p.files.iter().cloned())
            .collect();
        for t in &inputs.tables {
            let uncovered: Vec<scope_workload::FileRef> = (0..t.n_files)
                .map(|i| scope_workload::FileRef::new(t.name.clone(), i))
                .filter(|f| !covered.contains(f))
                .collect();
            if !uncovered.is_empty() {
                partitions.push(Partition::new(partitions.len(), uncovered, 0.0));
            }
        }
        Ok(partitions)
    } else {
        // One partition per table covering all of its files; its access
        // frequency is the total frequency of families touching the table.
        let mut freq_per_table: HashMap<&str, f64> = HashMap::new();
        for family in &inputs.families {
            let tables: std::collections::BTreeSet<&str> =
                family.files.iter().map(|f| f.table.as_str()).collect();
            for t in tables {
                *freq_per_table.entry(t).or_insert(0.0) += family.frequency;
            }
        }
        let mut partitions = Vec::with_capacity(inputs.tables.len());
        for (i, t) in inputs.tables.iter().enumerate() {
            let files = (0..t.n_files).map(|f| scope_workload::FileRef::new(t.name.clone(), f));
            partitions.push(Partition::new(
                i,
                files,
                freq_per_table.get(t.name.as_str()).copied().unwrap_or(0.0),
            ));
        }
        Ok(partitions)
    }
}

/// Build the OPTASSIGN partition specs for the final partitions.
///
/// Access accounting: each query family is charged against the partitions
/// that own its files. With partitioning enabled a family only reads the
/// bytes of its own footprint inside each partition (file-level access);
/// without partitioning the table is the access unit and every query that
/// touches a table scans the whole of it — this is exactly what makes the
/// un-partitioned baselines pay an order of magnitude more in read cost in
/// the paper's Tables IX–XI.
fn build_specs(
    inputs: &PipelineInputs,
    policy: &Policy,
    partitions: &[Partition],
    file_catalog: &FileCatalog,
) -> Result<Vec<PartitionSpec>, ScopeError> {
    // File ownership map (partitions are disjoint by construction).
    let mut owner: HashMap<&scope_workload::FileRef, usize> = HashMap::new();
    for (idx, p) in partitions.iter().enumerate() {
        for f in &p.files {
            owner.insert(f, idx);
        }
    }
    // Per-partition access count and read volume (GB over the horizon).
    let mut accesses = vec![0.0f64; partitions.len()];
    let mut read_volume = vec![0.0f64; partitions.len()];
    for family in &inputs.families {
        // BTreeMap: the loop below folds `frequency * volume` into f64
        // accumulators, and float addition order must not depend on hash
        // seeds.
        let mut gb_per_partition: std::collections::BTreeMap<usize, f64> =
            std::collections::BTreeMap::new();
        for f in &family.files {
            if let Some(&idx) = owner.get(f) {
                let gb = file_catalog.size(f).unwrap_or(0.0);
                *gb_per_partition.entry(idx).or_insert(0.0) += gb;
            }
        }
        for (idx, gb) in gb_per_partition {
            accesses[idx] += family.frequency;
            let volume = if policy.partition {
                gb
            } else {
                // Whole-table scan per access.
                partitions[idx].span(file_catalog)?
            };
            read_volume[idx] += family.frequency * volume;
        }
    }

    let mut specs = Vec::with_capacity(partitions.len());
    for (idx, p) in partitions.iter().enumerate() {
        let size_gb = p.span(file_catalog)?;
        // GB of the partition contributed by each table (drives the blended
        // compression profile).
        // BTreeMap: the accumulation loop below must add floats in a stable
        // order for run-to-run reproducible costs.
        let mut gb_per_table: std::collections::BTreeMap<&str, f64> =
            std::collections::BTreeMap::new();
        for f in &p.files {
            let profile = inputs
                .table(&f.table)
                .ok_or_else(|| ScopeError::InvalidConfig(format!("unknown table {}", f.table)))?;
            *gb_per_table.entry(f.table.as_str()).or_insert(0.0) += profile.file_size_gb();
        }
        let latency_threshold = p
            .files
            .iter()
            .filter_map(|f| inputs.table(&f.table))
            .map(|t| t.latency_threshold_seconds)
            .fold(f64::INFINITY, f64::min);

        // Average GB actually read per access of this partition.
        let gb_per_access = if accesses[idx] > 0.0 {
            (read_volume[idx] / accesses[idx]).min(size_gb)
        } else {
            0.0
        };
        let read_fraction = if size_gb > 0.0 {
            gb_per_access / size_gb
        } else {
            1.0
        };

        let mut spec = PartitionSpec::new(idx, format!("partition-{idx}"), size_gb, accesses[idx])
            .with_latency_threshold(latency_threshold)
            .with_read_fraction(read_fraction);
        if policy.compression && size_gb > 0.0 {
            // Blend per-table profiles: ratio is the GB-weighted average;
            // decompression time per access is the per-GB speed (GB-weighted
            // across tables) times the GB read per access.
            let scheme_names: Vec<String> = inputs.tables[0]
                .options
                .iter()
                .skip(1)
                .map(|o| o.name.clone())
                .collect();
            for scheme in &scheme_names {
                let mut ratio_acc = 0.0;
                let mut sec_per_gb_acc = 0.0;
                for (table, gb) in &gb_per_table {
                    let profile = inputs.table(table).expect("validated above");
                    if let Some(opt) = profile.options.iter().find(|o| &o.name == scheme) {
                        ratio_acc += opt.ratio * gb;
                        sec_per_gb_acc += opt.decompress_seconds * gb;
                    } else {
                        ratio_acc += gb; // scheme missing for this table: treat as uncompressed
                    }
                }
                let ratio = (ratio_acc / size_gb).max(1.0);
                let sec_per_gb = sec_per_gb_acc / size_gb;
                spec = spec.with_compression_option(CompressionOption::new(
                    scheme.clone(),
                    ratio,
                    sec_per_gb * gb_per_access,
                ));
            }
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Restrict a catalog to its fastest tier (used when tiering is disabled).
fn premium_only(catalog: &TierCatalog) -> TierCatalog {
    let fastest = catalog.fastest_tier();
    let tier: Tier = catalog.tier(fastest).expect("catalog non-empty").clone();
    TierCatalog::new(vec![tier]).expect("one tier")
}

/// Run one policy over the inputs.
pub fn run_policy(inputs: &PipelineInputs, policy: &Policy) -> Result<PolicyOutcome, ScopeError> {
    inputs.validate()?;
    let file_catalog = inputs.file_catalog();
    let partitions = build_partitions(inputs, policy, &file_catalog)?;
    let specs = build_specs(inputs, policy, &partitions, &file_catalog)?;

    // Tier catalog for this policy.
    let mut catalog = if policy.tiering {
        inputs.catalog.clone()
    } else {
        premium_only(&inputs.catalog)
    };
    let use_capacities = policy.tiering && policy.capacity_fractions.is_some();
    if let (true, Some(fractions)) = (use_capacities, &policy.capacity_fractions) {
        let total = inputs.total_size_gb();
        let names: Vec<String> = catalog.iter().map(|(_, t)| t.name.clone()).collect();
        for (name, fraction) in names.iter().zip(fractions) {
            catalog.set_capacity(name, fraction * total)?;
        }
    }

    let problem =
        OptAssignProblem::new(catalog, specs, inputs.horizon_months).with_weights(policy.weights);
    let assignment: Assignment = if use_capacities {
        match solve_branch_and_bound(&problem, 2_000_000) {
            Ok((a, _)) => a,
            // If the reservations cannot hold the data, fall back to the
            // unbounded greedy (the paper's prescription is to relax the
            // constraint that makes the instance infeasible).
            Err(scope_optassign::OptAssignError::InfeasibleCapacity) => solve_greedy(&problem)?,
            Err(e) => return Err(e.into()),
        }
    } else {
        solve_greedy(&problem)?
    };

    // Worst-case TTFB over the tiers actually used.
    let ttfb = assignment
        .choices
        .iter()
        .map(|&(tier, _)| {
            problem
                .catalog
                .tier(tier)
                .map(|t| t.ttfb_seconds)
                .unwrap_or(0.0)
        })
        .fold(0.0, f64::max);

    Ok(PolicyOutcome {
        policy: policy.name.clone(),
        adapted_from: policy.adapted_from.clone(),
        storage_cost: assignment.breakdown.storage,
        decompression_cost: assignment.breakdown.decompression,
        read_cost: assignment.breakdown.read,
        write_cost: assignment.breakdown.write,
        total_cost: assignment.breakdown.total(),
        read_latency_ttfb: ttfb,
        expected_decompression_ms: assignment.expected_decompression_latency(&problem) * 1000.0,
        tiering_scheme: assignment.tier_histogram(inputs.catalog.len()),
        n_partitions: partitions.len(),
    })
}

/// Run every policy of [`Policy::table_rows`] over the inputs, in order.
///
/// Policies are independent end-to-end pipeline runs, so they fan out over
/// [`scope_cloudsim::parallel_map`] — results merge in policy order and
/// each run is a pure function of its policy, so the table is bit-for-bit
/// identical to the sequential loop (the first failing policy's error, in
/// order, is returned exactly as before).
pub fn run_all_policies(inputs: &PipelineInputs) -> Result<Vec<PolicyOutcome>, ScopeError> {
    let policies = Policy::table_rows();
    scope_cloudsim::parallel_map(&policies, |_, p| run_policy(inputs, p))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{tpch_scenario, ScenarioOptions};

    fn inputs() -> PipelineInputs {
        tpch_scenario(&ScenarioOptions {
            nominal_total_gb: 100.0,
            generator_scale: 0.05,
            queries_per_template: 4,
            total_files: 40,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn default_policy_stores_everything_on_premium_uncompressed() {
        let inputs = inputs();
        let outcome = run_policy(&inputs, &Policy::default_premium()).unwrap();
        assert_eq!(outcome.n_partitions, 8);
        assert_eq!(outcome.tiering_scheme[0], 8);
        assert_eq!(outcome.tiering_scheme[1..].iter().sum::<usize>(), 0);
        assert_eq!(outcome.decompression_cost, 0.0);
        assert_eq!(outcome.expected_decompression_ms, 0.0);
        assert!(outcome.storage_cost > 0.0);
        assert!(outcome.read_cost > 0.0);
    }

    #[test]
    fn partitioning_reduces_read_cost_on_premium() {
        // The "Partition & store on premium" row has a dramatically lower
        // read cost than "Default" because queries no longer scan whole
        // tables (paper: 117 vs 3828 on TPC-H 100 GB).
        let inputs = inputs();
        let default = run_policy(&inputs, &Policy::default_premium()).unwrap();
        let partitioned = run_policy(&inputs, &Policy::partition_premium()).unwrap();
        assert!(partitioned.n_partitions >= 2);
        assert!(
            partitioned.read_cost < default.read_cost * 0.8,
            "partitioned read {} vs default read {}",
            partitioned.read_cost,
            default.read_cost
        );
        // Storage cost can only grow (overlap is duplicated), but the read
        // saving dominates on this query-heavy workload.
        assert!(partitioned.total_cost < default.total_cost);
    }

    #[test]
    fn compression_reduces_storage_cost_but_adds_decompression() {
        let inputs = inputs();
        let default = run_policy(&inputs, &Policy::default_premium()).unwrap();
        let compressed = run_policy(&inputs, &Policy::compress_premium()).unwrap();
        assert!(compressed.storage_cost < default.storage_cost);
        assert!(compressed.decompression_cost >= 0.0);
        assert!(compressed.total_cost < default.total_cost);
    }

    #[test]
    fn scope_variants_beat_every_baseline_on_total_cost() {
        // The headline claim of Tables IX–XI: the SCOPe configurations (the
        // last rows) incur lower total cost than every baseline variant, and
        // the total-cost-focused configuration is (nearly) the cheapest of
        // all — in the paper's Table X it is within a whisker of the
        // no-capacity SCOPe row and far below everything else.
        let inputs = inputs();
        let outcomes = run_all_policies(&inputs).unwrap();
        assert_eq!(outcomes.len(), 11);
        let cost_of = |name: &str| {
            outcomes
                .iter()
                .find(|o| o.policy == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .total_cost
        };
        let scope_total = cost_of("SCOPe (Total cost focused)");
        let scope_nocap = cost_of("SCOPe (No capacity constraint)");
        let default = cost_of("Default (store on premium)");
        let best_scope = scope_total.min(scope_nocap);
        // Every non-SCOPe baseline is more expensive than the best SCOPe
        // configuration.
        for o in &outcomes {
            if o.policy.starts_with("SCOPe") {
                continue;
            }
            assert!(
                best_scope < o.total_cost,
                "SCOPe {} should beat {} ({})",
                best_scope,
                o.policy,
                o.total_cost
            );
        }
        // The total-cost-focused row stays in the same cost regime as the
        // unconstrained optimum (the capacity reservations force some extra
        // compression / tier shuffling, but nowhere near the baseline costs).
        // The factor is generous because the measured decompression timings
        // feeding the scenario vary with machine load between runs.
        assert!(
            scope_total <= scope_nocap * 2.0 + 1e-9,
            "capacity-constrained SCOPe {} strays too far from unconstrained {}",
            scope_total,
            scope_nocap
        );
        // And the saving relative to the platform default is large (the
        // paper reports SCOPe at 8–18% of the default's cost).
        assert!(
            best_scope < 0.5 * default,
            "SCOPe {} vs default {}",
            best_scope,
            default
        );
    }

    #[test]
    fn latency_focused_scope_keeps_latency_low() {
        let inputs = inputs();
        let latency = run_policy(&inputs, &Policy::scope_latency_focused()).unwrap();
        let total = run_policy(&inputs, &Policy::scope_total_cost_focused()).unwrap();
        // The latency-focused variant sacrifices cost for latency.
        assert!(latency.read_latency_ttfb <= total.read_latency_ttfb + 1e-12);
        assert!(latency.total_cost >= total.total_cost * 0.9);
    }

    #[test]
    fn gpart_improves_the_tiering_baseline() {
        // "applying our partitioning heuristic can directly improve the
        // baselines" — Hermes + G-PART costs less than Hermes alone.
        let inputs = inputs();
        let hermes = run_policy(&inputs, &Policy::multi_tiering()).unwrap();
        let hermes_gpart = run_policy(&inputs, &Policy::partition_tiering()).unwrap();
        assert!(hermes_gpart.total_cost < hermes.total_cost);
    }

    #[test]
    fn tiering_scheme_histogram_sums_to_partition_count() {
        let inputs = inputs();
        for policy in Policy::table_rows() {
            let o = run_policy(&inputs, &policy).unwrap();
            assert_eq!(
                o.tiering_scheme.iter().sum::<usize>(),
                o.n_partitions,
                "{}",
                o.policy
            );
            assert!(o.total_cost > 0.0);
            assert!(
                (o.total_cost
                    - (o.storage_cost + o.read_cost + o.write_cost + o.decompression_cost))
                    .abs()
                    < 1e-6
            );
        }
    }
}
