//! Lifecycle tiering: objects that cool over time and get re-tiered at
//! billing-period boundaries.
//!
//! This is the scenario the day-granular billing timeline unlocks. The
//! enterprise generator's datasets follow decaying/periodic/spike access
//! patterns — they *cool* — but a placement frozen for the whole horizon
//! must average over that lifecycle. Here the pipeline instead:
//!
//! 1. generates an enterprise workload with a **day-resolution** access log
//!    (`scope-workload`),
//! 2. plans a cost-optimal per-period tier schedule per dataset with the
//!    residency-aware dynamic program (`scope-optassign::schedule`), which
//!    prices transition costs and day-exact early-deletion penalties,
//! 3. lowers the schedules onto the billing timeline and replays the
//!    actual day-stamped accesses through the day-granular billing engine
//!    (`scope-cloudsim`),
//!
//! and reports the realised cost against two frozen baselines: the all-hot
//! platform default and the best *static* OPTASSIGN placement. The sweep in
//! [`lifecycle_tradeoff`] varies the re-tiering granularity (every period,
//! every 2nd, ... never), quantifying what per-billing-period tier changes
//! are worth — the refinement the paper recommends over ad-hoc moves.

use crate::ScopeError;
use scope_cloudsim::{
    billing::Placement, BillingEvent, BillingReport, BillingSimulator, ObjectSpec,
    PlacementSchedule, TierCatalog, TierId, DAYS_PER_MONTH,
};
use scope_optassign::{ideal_tier_labels, ideal_tier_schedules, TierSchedule};
use scope_workload::{DatasetCatalog, EnterpriseOptions, EnterpriseWorkload};
use serde::{Deserialize, Serialize};

/// Fraction of a dataset's size written per write access (appends/updates,
/// not full rewrites) — the convention shared with the Enterprise Data I
/// experiment drivers in [`crate::enterprise`].
pub(crate) const WRITE_VOLUME_FRACTION: f64 = 0.05;

/// Options for the lifecycle experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleOptions {
    /// The enterprise account to generate (catalog + day-resolution log).
    pub workload: EnterpriseOptions,
    /// Tier catalog to optimize over.
    pub catalog: TierCatalog,
    /// Re-tiering granularity in billing periods (1 = every period).
    pub retier_every: u32,
}

impl Default for LifecycleOptions {
    fn default() -> Self {
        LifecycleOptions {
            workload: EnterpriseOptions::default(),
            catalog: TierCatalog::azure_hot_cool_archive(),
            retier_every: 1,
        }
    }
}

/// Outcome of the lifecycle experiment: realised day-granular costs of the
/// scheduled placement and its frozen baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleOutcome {
    /// Realised cost (cents) of keeping everything on the platform default
    /// (hot) tier.
    pub all_hot_total: f64,
    /// Realised cost of the best *static* OPTASSIGN placement (one tier
    /// per dataset, frozen for the horizon).
    pub static_total: f64,
    /// Realised cost of the per-period tier schedules.
    pub scheduled_total: f64,
    /// % cost benefit of the static placement over all-hot.
    pub benefit_static: f64,
    /// % cost benefit of the scheduled placement over all-hot.
    pub benefit_scheduled: f64,
    /// Number of mid-horizon tier transitions across all datasets.
    pub transitions: usize,
    /// Events outside the billed horizon (trace/horizon mismatches), from
    /// the scheduled run.
    pub dropped_events: u64,
}

/// Convert the day-resolution access log of a window
/// `[from_day, from_day + horizon_days)` into billing events with days
/// re-based to the window start. Read volume is `reads × fraction × size`;
/// write volume uses the appends-not-rewrites convention. Shared with the
/// multi-cloud scenario in [`crate::multicloud`].
pub(crate) fn billing_events(
    workload: &EnterpriseWorkload,
    from_day: u32,
    horizon_days: u32,
) -> Vec<BillingEvent> {
    let mut events = Vec::new();
    for r in workload.daily.records() {
        if r.day < from_day || r.day >= from_day + horizon_days {
            continue;
        }
        let d = workload
            .catalog
            .get(r.dataset)
            .expect("daily log references catalog datasets");
        let day = r.day - from_day;
        if r.reads > 0.0 {
            events.push(BillingEvent::read(
                d.name.clone(),
                day,
                r.reads * r.read_fraction * d.size_gb,
            ));
        }
        if r.writes > 0.0 {
            events.push(BillingEvent::write(
                d.name.clone(),
                day,
                r.writes * WRITE_VOLUME_FRACTION * d.size_gb,
            ));
        }
    }
    events
}

/// Replay `events` against one placement schedule per dataset.
fn simulate_schedules(
    catalog: &TierCatalog,
    datasets: &DatasetCatalog,
    schedules: &[PlacementSchedule],
    current_tier: TierId,
    horizon_days: u32,
    events: &[BillingEvent],
) -> Result<BillingReport, ScopeError> {
    let mut sim = BillingSimulator::new(catalog.clone());
    for d in datasets.iter() {
        sim.place_scheduled(
            ObjectSpec::new(d.name.clone(), d.size_gb).on_tier(current_tier),
            schedules[d.id].clone(),
        )?;
    }
    Ok(sim.run_days(horizon_days, events)?)
}

/// The granularity-independent part of the experiment: the generated
/// workload, its billing-event trace, and the two frozen baselines. Built
/// once and reused across a [`lifecycle_tradeoff`] sweep.
struct LifecycleContext {
    workload: EnterpriseWorkload,
    events: Vec<BillingEvent>,
    all_hot_report: BillingReport,
    static_report: BillingReport,
    hot: TierId,
    horizon_months: u32,
    horizon_days: u32,
}

/// Generate the account and evaluate everything that does not depend on the
/// re-tiering granularity.
fn prepare_lifecycle(options: &LifecycleOptions) -> Result<LifecycleContext, ScopeError> {
    let workload = EnterpriseWorkload::generate(options.workload.clone())?;
    let hot = options.catalog.tier_id("Hot")?;
    let start = workload.projection_start();
    let horizon_months = workload.options.future_months;
    let horizon_days = horizon_months * DAYS_PER_MONTH;
    let events = billing_events(&workload, start * DAYS_PER_MONTH, horizon_days);

    // Baseline 1: everything frozen on the platform default.
    let all_hot: Vec<PlacementSchedule> = workload
        .catalog
        .iter()
        .map(|_| PlacementSchedule::constant(Placement::uncompressed(hot)))
        .collect();
    let all_hot_report = simulate_schedules(
        &options.catalog,
        &workload.catalog,
        &all_hot,
        hot,
        horizon_days,
        &events,
    )?;

    // Baseline 2: the best static placement (one frozen tier per dataset).
    let labels = ideal_tier_labels(
        &options.catalog,
        &workload.catalog,
        &workload.series,
        start,
        horizon_months,
        hot,
    )?;
    let static_schedules: Vec<PlacementSchedule> = labels
        .iter()
        .map(|&t| PlacementSchedule::constant(Placement::uncompressed(t)))
        .collect();
    let static_report = simulate_schedules(
        &options.catalog,
        &workload.catalog,
        &static_schedules,
        hot,
        horizon_days,
        &events,
    )?;

    Ok(LifecycleContext {
        workload,
        events,
        all_hot_report,
        static_report,
        hot,
        horizon_months,
        horizon_days,
    })
}

/// Plan and replay the per-period schedules for one re-tiering granularity
/// against an already-prepared context.
fn run_prepared(
    options: &LifecycleOptions,
    ctx: &LifecycleContext,
) -> Result<LifecycleOutcome, ScopeError> {
    // Per-period schedules from the residency-aware DP, lowered onto the
    // billing timeline.
    let plans: Vec<TierSchedule> = ideal_tier_schedules(
        &options.catalog,
        &ctx.workload.catalog,
        &ctx.workload.series,
        ctx.workload.projection_start(),
        ctx.horizon_months,
        ctx.hot,
        WRITE_VOLUME_FRACTION,
        options.retier_every,
    )?;
    let transitions = plans.iter().map(|p| p.transition_count()).sum();
    let scheduled: Vec<PlacementSchedule> =
        plans.iter().map(|p| p.to_placement_schedule()).collect();
    let scheduled_report = simulate_schedules(
        &options.catalog,
        &ctx.workload.catalog,
        &scheduled,
        ctx.hot,
        ctx.horizon_days,
        &ctx.events,
    )?;

    Ok(LifecycleOutcome {
        all_hot_total: ctx.all_hot_report.total(),
        static_total: ctx.static_report.total(),
        scheduled_total: scheduled_report.total(),
        benefit_static: ctx.static_report.percent_benefit_vs(&ctx.all_hot_report),
        benefit_scheduled: scheduled_report.percent_benefit_vs(&ctx.all_hot_report),
        transitions,
        dropped_events: scheduled_report.dropped_events,
    })
}

/// Run the lifecycle experiment: generate the account, plan per-period
/// schedules, and replay the projection window's day-stamped accesses under
/// the scheduled placement and both frozen baselines.
pub fn run_lifecycle(options: &LifecycleOptions) -> Result<LifecycleOutcome, ScopeError> {
    let ctx = prepare_lifecycle(options)?;
    run_prepared(options, &ctx)
}

/// Sweep the re-tiering granularity: one [`LifecycleOutcome`] per entry of
/// `granularities` (in periods; use a value at least the horizon length for
/// "never re-tier"). The workload, trace and frozen baselines are generated
/// once and shared across the sweep — only the schedule planning and its
/// replay depend on the granularity. The trade-off mirrors the paper's
/// recommendation of per-billing-period tier changes: finer granularity can
/// only help the planned cost, and the sweep shows how much of the benefit
/// survives at coarser operational cadences.
pub fn lifecycle_tradeoff(
    options: &LifecycleOptions,
    granularities: &[u32],
) -> Result<Vec<(u32, LifecycleOutcome)>, ScopeError> {
    let ctx = prepare_lifecycle(options)?;
    granularities
        .iter()
        .map(|&g| {
            let opts = LifecycleOptions {
                retier_every: g.max(1),
                ..options.clone()
            };
            Ok((g, run_prepared(&opts, &ctx)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> LifecycleOptions {
        LifecycleOptions {
            workload: EnterpriseOptions {
                n_datasets: 100,
                history_months: 8,
                future_months: 6,
                seed: 21,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn lifecycle_beats_the_static_placement() {
        let outcome = run_lifecycle(&options()).unwrap();
        // Both optimized placements beat the platform default…
        assert!(outcome.benefit_static > 0.0, "{outcome:?}");
        assert!(outcome.benefit_scheduled > 0.0, "{outcome:?}");
        // …and per-period re-tiering beats (or at worst matches) the frozen
        // placement, because frozen placements are a special case of the
        // schedule space and the DP prices exactly what the engine bills.
        assert!(
            outcome.scheduled_total <= outcome.static_total * (1.0 + 1e-9),
            "{outcome:?}"
        );
        // Cooling datasets make some mid-horizon transitions worthwhile.
        assert!(outcome.transitions > 0, "{outcome:?}");
        assert_eq!(outcome.dropped_events, 0, "{outcome:?}");
        // The replayed trace is the projection window's own events, so the
        // lifecycle placement realises a real improvement, not a tie.
        assert!(
            outcome.scheduled_total < outcome.static_total,
            "{outcome:?}"
        );
    }

    #[test]
    fn finer_retier_granularity_is_never_worse() {
        let opts = LifecycleOptions {
            workload: EnterpriseOptions {
                n_datasets: 60,
                history_months: 6,
                future_months: 6,
                seed: 33,
                ..Default::default()
            },
            ..Default::default()
        };
        let sweep = lifecycle_tradeoff(&opts, &[1, 3, 6]).unwrap();
        assert_eq!(sweep.len(), 3);
        // Granularity 6 on a 6-period horizon = frozen placement.
        let frozen = &sweep[2].1;
        assert_eq!(frozen.transitions, 0);
        for w in sweep.windows(2) {
            assert!(
                w[0].1.scheduled_total <= w[1].1.scheduled_total * (1.0 + 1e-9),
                "granularity {} ({}) should not beat {} ({})",
                w[1].0,
                w[1].1.scheduled_total,
                w[0].0,
                w[0].1.scheduled_total,
            );
        }
    }
}
