//! The policy catalog: every storage-management variant evaluated in
//! Tables IX–XI of the paper.
//!
//! A policy toggles the three SCOPe ingredients — access-aware partitioning
//! (G-PART), multi-tiering and compression — and fixes the objective
//! weights. The first rows are the standard approaches and adapted
//! baselines from the literature (Ares = compression only, Hermes =
//! tiering only, HCompress = latency-time focused); the last rows are the
//! SCOPe configurations.

use scope_cloudsim::CostWeights;
use scope_datapart::MergeConfig;

/// One storage-management policy (a row of Tables IX–XI).
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Row label, matching the paper's "Variants we can support" column.
    pub name: String,
    /// The closest baseline from the literature, if any ("Other methods we
    /// can adapt" column).
    pub adapted_from: Option<String>,
    /// Apply G-PART partitioning before assignment ("P" column).
    pub partition: bool,
    /// Allow multiple storage tiers ("T" column); when false everything
    /// stays on the premium (fastest) tier.
    pub tiering: bool,
    /// Allow compression schemes ("C" column).
    pub compression: bool,
    /// Objective weights used by OPTASSIGN.
    pub weights: CostWeights,
    /// Optional per-tier capacity reservations, expressed as fractions of
    /// the total uncompressed data volume (Table XII style). `None` means
    /// unbounded capacity (the greedy solver applies).
    pub capacity_fractions: Option<Vec<f64>>,
    /// G-PART constraints used when `partition` is true. The span threshold
    /// is expressed as a fraction of the total data volume.
    pub span_threshold_fraction: f64,
}

impl Policy {
    fn base(name: &str, partition: bool, tiering: bool, compression: bool) -> Policy {
        Policy {
            name: name.to_string(),
            adapted_from: None,
            partition,
            tiering,
            compression,
            weights: CostWeights::total_cost_focused(),
            capacity_fractions: None,
            // Freeze merged partitions once they reach 15% of the data
            // volume: large enough that hot query footprints coalesce, small
            // enough that hot and cold files end up in different partitions
            // (the ablation benches sweep this knob).
            span_threshold_fraction: 0.15,
        }
    }

    fn adapted(mut self, from: &str) -> Policy {
        self.adapted_from = Some(from.to_string());
        self
    }

    fn with_weights(mut self, weights: CostWeights) -> Policy {
        self.weights = weights;
        self
    }

    fn with_capacities(mut self, fractions: Vec<f64>) -> Policy {
        self.capacity_fractions = Some(fractions);
        self
    }

    /// The G-PART configuration for this policy, given the total data volume
    /// in GB.
    pub fn merge_config(&self, total_gb: f64) -> MergeConfig {
        MergeConfig {
            span_threshold: (self.span_threshold_fraction * total_gb).max(f64::MIN_POSITIVE),
            ..Default::default()
        }
    }

    /// "Default (store on premium)": no partitioning, no tiering, no
    /// compression — the platform baseline.
    pub fn default_premium() -> Policy {
        Policy::base("Default (store on premium)", false, false, false)
    }

    /// "Compress & store on premium" — the Ares adaptation.
    pub fn compress_premium() -> Policy {
        Policy::base("Compress & store on premium", false, false, true).adapted("Ares")
    }

    /// "Multi-Tiering" — the Hermes adaptation.
    pub fn multi_tiering() -> Policy {
        Policy::base("Multi-Tiering", false, true, false).adapted("Hermes")
    }

    /// "Latency time focused" — the HCompress adaptation (α = 0).
    pub fn latency_focused() -> Policy {
        Policy::base("Latency time focused", false, true, true)
            .adapted("HCompress")
            .with_weights(CostWeights::latency_focused())
    }

    /// "Partition & store on premium".
    pub fn partition_premium() -> Policy {
        Policy::base("Partition & store on premium", true, false, false)
    }

    /// "Partitioning + Tiering" — Hermes + G-PART.
    pub fn partition_tiering() -> Policy {
        Policy::base("Partitioning + Tiering", true, true, false).adapted("Hermes + G-PART")
    }

    /// "Partitioning + Compression" — Ares + G-PART.
    pub fn partition_compression() -> Policy {
        Policy::base("Partitioning + Compression", true, false, true).adapted("Ares + G-PART")
    }

    /// "SCOPe (Latency time focused)" — HCompress + G-PART.
    pub fn scope_latency_focused() -> Policy {
        Policy::base("SCOPe (Latency time focused)", true, true, true)
            .adapted("HCompress + G-PART")
            .with_weights(CostWeights::latency_focused())
    }

    /// "SCOPe (No capacity constraint)".
    pub fn scope_no_capacity() -> Policy {
        Policy::base("SCOPe (No capacity constraint)", true, true, true)
    }

    /// "SCOPe (Read+Decomp. cost focused)".
    pub fn scope_read_decomp_focused() -> Policy {
        Policy::base("SCOPe (Read+Decomp. cost focused)", true, true, true)
            .with_weights(CostWeights::read_decomp_focused())
    }

    /// "SCOPe (Total cost focused)" — with the Table XII style capacity
    /// reservations (premium 16.3%, hot 32.6%, cool 48.91% of the data
    /// volume).
    pub fn scope_total_cost_focused() -> Policy {
        Policy::base("SCOPe (Total cost focused)", true, true, true)
            .with_capacities(vec![0.163, 0.326, 0.4891])
    }

    /// All eleven policies, in the row order of Tables IX–XI.
    pub fn table_rows() -> Vec<Policy> {
        vec![
            Policy::default_premium(),
            Policy::compress_premium(),
            Policy::multi_tiering(),
            Policy::latency_focused(),
            Policy::partition_premium(),
            Policy::partition_tiering(),
            Policy::partition_compression(),
            Policy::scope_latency_focused(),
            Policy::scope_no_capacity(),
            Policy::scope_read_decomp_focused(),
            Policy::scope_total_cost_focused(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eleven_rows_in_paper_order() {
        let rows = Policy::table_rows();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].name, "Default (store on premium)");
        assert_eq!(rows[10].name, "SCOPe (Total cost focused)");
        // The flag pattern of the paper's P/T/C columns.
        let flags: Vec<(bool, bool, bool)> = rows
            .iter()
            .map(|p| (p.partition, p.tiering, p.compression))
            .collect();
        assert_eq!(flags[0], (false, false, false));
        assert_eq!(flags[1], (false, false, true));
        assert_eq!(flags[2], (false, true, false));
        assert_eq!(flags[3], (false, true, true));
        assert_eq!(flags[4], (true, false, false));
        assert_eq!(flags[5], (true, true, false));
        assert_eq!(flags[6], (true, false, true));
        for f in &flags[7..] {
            assert_eq!(*f, (true, true, true));
        }
    }

    #[test]
    fn adapted_baselines_are_labelled() {
        assert_eq!(
            Policy::compress_premium().adapted_from.as_deref(),
            Some("Ares")
        );
        assert_eq!(
            Policy::multi_tiering().adapted_from.as_deref(),
            Some("Hermes")
        );
        assert_eq!(
            Policy::latency_focused().adapted_from.as_deref(),
            Some("HCompress")
        );
        assert_eq!(
            Policy::scope_latency_focused().adapted_from.as_deref(),
            Some("HCompress + G-PART")
        );
        assert!(Policy::default_premium().adapted_from.is_none());
    }

    #[test]
    fn weights_and_capacities_follow_the_variants() {
        assert_eq!(Policy::latency_focused().weights.alpha, 0.0);
        assert_eq!(Policy::scope_no_capacity().capacity_fractions, None);
        let caps = Policy::scope_total_cost_focused()
            .capacity_fractions
            .unwrap();
        assert_eq!(caps.len(), 3);
        assert!((caps.iter().sum::<f64>() - 0.9781).abs() < 1e-9);
    }

    #[test]
    fn merge_config_scales_with_data_volume() {
        let p = Policy::scope_no_capacity();
        let small = p.merge_config(10.0);
        let large = p.merge_config(1000.0);
        assert!(large.span_threshold > small.span_threshold);
        assert_eq!(small.span_threshold, 1.5);
    }
}
