//! Chaos-replay scenario: the serving loop under a seeded fault schedule.
//!
//! Where [`crate::serving`] replays a clean enterprise trace through the
//! incremental [`ServeEngine`], this scenario replays the *same* trace
//! through a gauntlet of injected faults — corrupt and torn intake
//! batches, duplicated and reordered delivery, per-shard re-solve
//! failures and deadline overruns, and end-of-epoch crashes — and asserts
//! the engine's degraded-mode contracts *exactly*, not approximately:
//!
//! * **Intake equality.** A fault-free twin engine is fed the filtered
//!   stream each [`scope_faults::CorruptedBatch`] prescribes; after every
//!   epoch the chaos engine's per-object heat must be bit-for-bit equal
//!   to the twin's, no matter how batches were corrupted, torn,
//!   duplicated, or reordered.
//! * **Quarantine accounting.** At the end of the run the engine's
//!   [`scope_serve::QuarantineLedger`] and drop/seen counters must equal
//!   the independent [`scope_faults::expected_intake`] reference over the
//!   delivered stream.
//! * **Degraded-mode serving.** Every healthy (non-stale) shard's
//!   placement must match the cold batch reference
//!   ([`scope_serve::reference::full_resolve`]) bit-for-bit; faulted
//!   shards serve their stored incumbent and re-converge after their
//!   deterministic backoff.
//! * **Crash consistency.** On crash epochs the engine is checkpointed,
//!   dropped, restored, and the restored engine's checkpoint must be
//!   byte-identical to the snapshot; the run then *continues on the
//!   restored engine*, so every later equality doubles as evidence the
//!   recovery was lossless.

use crate::lifecycle::billing_events;
use crate::ScopeError;
use scope_cloudsim::{EventColumns, TierCatalog, TierId, DAYS_PER_MONTH};
use scope_faults::{expected_intake, FaultPlan, FaultRates};
use scope_serve::{reference, CompressionOption, ServeConfig, ServeEngine, ServeObject};
use scope_workload::{EnterpriseOptions, EnterpriseWorkload};
use serde::{Deserialize, Serialize};

/// Options for the chaos replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// The enterprise account to generate (catalog + day-resolution log).
    pub workload: EnterpriseOptions,
    /// Tier catalog the engine re-optimizes over.
    pub catalog: TierCatalog,
    /// Compression schemes shared by all objects (index 0 must be the
    /// identity scheme).
    pub schemes: Vec<CompressionOption>,
    /// Re-optimization cadence in days.
    pub epoch_days: u32,
    /// Number of synthetic billing accounts (shards).
    pub accounts: usize,
    /// Batches each epoch's events are split into before delivery (the
    /// unit of tearing, duplication, and reordering).
    pub batches_per_epoch: usize,
    /// Worker threads for the sharded re-solve (0 = default).
    pub threads: usize,
    /// Per-day heat decay for the engine.
    pub decay_per_day: f64,
    /// Geometric heat-bucket base for the engine.
    pub bucket_base: f64,
    /// Fault-plan seed.
    pub seed: u64,
    /// Fault-plan rates.
    pub rates: FaultRates,
    /// Run the cold reference solve on the chaos engine every epoch and
    /// check healthy shards against it.
    pub verify: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            workload: EnterpriseOptions::default(),
            catalog: TierCatalog::azure_hot_cool_archive(),
            schemes: vec![
                CompressionOption::none(),
                CompressionOption::new("zstd", 2.4, 0.35),
            ],
            epoch_days: 15,
            accounts: 4,
            batches_per_epoch: 4,
            threads: 0,
            decay_per_day: 0.98,
            bucket_base: 2.0,
            seed: 0xC4A0_5EED,
            rates: FaultRates::light(),
            verify: true,
        }
    }
}

/// One epoch of the chaos replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosEpoch {
    /// Day the engine advanced to before this re-solve.
    pub day: u32,
    /// Events folded into heat this epoch (chaos engine).
    pub folded_events: u64,
    /// Events quarantined this epoch.
    pub quarantined_events: u64,
    /// Events lost to torn columns this epoch.
    pub truncated_events: u64,
    /// Shards degraded (faulted or backing off) this epoch.
    pub degraded_accounts: usize,
    /// Shards still serving a stale incumbent after this epoch.
    pub stale_accounts: usize,
    /// Placement changes this epoch.
    pub retier_decisions: usize,
    /// Total objective across shards after the re-solve.
    pub total_objective: f64,
    /// Whether the chaos engine's heat matched the fault-free twin's
    /// bit-for-bit after this epoch.
    pub heat_matches_twin: bool,
    /// Whether every healthy (non-stale) shard matched the cold batch
    /// reference bit-for-bit (only meaningful when `verified`).
    pub healthy_match_reference: bool,
    /// Whether the cold reference solve was run this epoch.
    pub verified: bool,
    /// Whether this epoch ended in a simulated crash + restore.
    pub crashed: bool,
}

/// Outcome of the chaos replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosOutcome {
    /// Per-epoch records, in replay order.
    pub epochs: Vec<ChaosEpoch>,
    /// Objects served.
    pub objects: usize,
    /// Account shards.
    pub accounts: usize,
    /// Simulated crashes survived (checkpoint → restore → continue).
    pub crashes: usize,
    /// Whether every restored engine's checkpoint was byte-identical to
    /// the snapshot it was restored from.
    pub recoveries_bit_identical: bool,
    /// Total events quarantined (including past ledger capacity).
    pub quarantined_events: u64,
    /// Whether the final quarantine ledger, drop and seen counters
    /// matched the independent [`scope_faults::expected_intake`]
    /// reference exactly.
    pub intake_matches_expected: bool,
    /// Out-of-horizon events dropped by ingestion.
    pub dropped_events: u64,
    /// Duplicate batch deliveries rejected by sequenced intake.
    pub duplicate_batches: u64,
    /// Placement changes across all epochs.
    pub total_retier_decisions: usize,
    /// Total objective after the final epoch.
    pub final_total_objective: f64,
}

/// Split `columns` into `n` contiguous batches, preserving trace order.
/// The final batch absorbs the remainder; empty batches are kept so the
/// sequence-number stream stays dense.
fn split_batches(columns: &EventColumns, n: usize) -> Vec<EventColumns> {
    let total = columns.len();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    for b in 0..n.max(1) {
        let lo = (b * per).min(total);
        let hi = ((b + 1) * per).min(total);
        let mut batch = EventColumns::default();
        batch.days.extend_from_slice(&columns.days[lo..hi]);
        batch.periods.extend_from_slice(&columns.periods[lo..hi]);
        batch
            .object_ids
            .extend_from_slice(&columns.object_ids[lo..hi]);
        batch.kinds.extend_from_slice(&columns.kinds[lo..hi]);
        batch.volumes.extend_from_slice(&columns.volumes[lo..hi]);
        out.push(batch);
    }
    out
}

/// Bit-exact heat comparison between two engines over the same objects.
fn heat_matches(a: &ServeEngine, b: &ServeEngine) -> bool {
    (0..a.len() as u32).all(|id| a.heat(id).map(f64::to_bits) == b.heat(id).map(f64::to_bits))
}

/// Replay the projection window of a generated enterprise account through
/// the serving engine under the seeded fault schedule, verifying the
/// degraded-mode contracts every epoch (see the [module docs](self)).
pub fn run_chaos(options: &ChaosOptions) -> Result<ChaosOutcome, ScopeError> {
    if options.epoch_days == 0 {
        return Err(ScopeError::InvalidConfig(
            "epoch_days must be positive".into(),
        ));
    }
    if options.accounts == 0 {
        return Err(ScopeError::InvalidConfig(
            "at least one account shard is required".into(),
        ));
    }
    if options.batches_per_epoch == 0 {
        return Err(ScopeError::InvalidConfig(
            "at least one batch per epoch is required".into(),
        ));
    }
    let plan = FaultPlan::new(options.seed, options.rates)
        .map_err(|e| ScopeError::InvalidConfig(e.to_string()))?;

    let workload = EnterpriseWorkload::generate(options.workload.clone())?;
    let horizon_months = workload.options.future_months;
    let horizon_days = horizon_months * DAYS_PER_MONTH;
    let events = billing_events(
        &workload,
        workload.projection_start() * DAYS_PER_MONTH,
        horizon_days,
    );

    let config = ServeConfig {
        horizon_days,
        horizon_months: f64::from(horizon_months),
        decay_per_day: options.decay_per_day,
        bucket_base: options.bucket_base,
        threads: options.threads,
        ..ServeConfig::default()
    };
    let build = || -> Result<ServeEngine, ScopeError> {
        let mut engine = ServeEngine::new(
            options.catalog.clone(),
            options.schemes.clone(),
            config.clone(),
        )?;
        for d in workload.catalog.iter() {
            engine.register(
                ServeObject::new(
                    d.name.clone(),
                    format!("account-{}", d.id % options.accounts),
                    d.size_gb,
                    TierId(0),
                )
                .with_latency_threshold(d.latency_threshold_seconds),
            )?;
        }
        Ok(engine)
    };
    let mut engine = build()?; // under chaos
    let mut twin = build()?; // fault-free, fed the filtered stream
    let columns = engine.columns_from_events(&events);

    let mut outcome = ChaosOutcome {
        epochs: Vec::new(),
        objects: engine.len(),
        accounts: options.accounts.min(engine.len()),
        crashes: 0,
        recoveries_bit_identical: true,
        quarantined_events: 0,
        intake_matches_expected: false,
        dropped_events: 0,
        duplicate_batches: 0,
        total_retier_decisions: 0,
        final_total_objective: 0.0,
    };
    // The exactly-once delivered stream, in sequence order — the input to
    // the independent intake reference at the end of the run.
    let mut delivered_in_order: Vec<EventColumns> = Vec::new();
    let mut next_seq = 0u64;
    let mut epoch_idx = 0u64;
    let mut day = 0u32;
    while day < horizon_days {
        let hi = (day + options.epoch_days).min(horizon_days);
        let window = columns.filter_day_range(day, hi);

        // Corrupt each batch, keeping the clean stream for the twin.
        let mut sequenced = Vec::with_capacity(options.batches_per_epoch);
        let mut quarantined = 0u64;
        let mut truncated = 0u64;
        for batch in split_batches(&window, options.batches_per_epoch) {
            let seq = next_seq;
            next_seq += 1;
            let corrupted = plan.corrupt_batch(seq, &batch, horizon_days);
            quarantined += corrupted.expected_quarantined;
            truncated += corrupted.expected_truncated;
            twin.ingest(&corrupted.clean);
            delivered_in_order.push(corrupted.delivered.clone());
            sequenced.push((seq, corrupted.delivered));
        }
        outcome.quarantined_events += quarantined;

        // Deliver with duplication and local reordering; sequenced intake
        // must neutralize both.
        let mut folded = 0u64;
        for (seq, batch) in plan.deliver(epoch_idx, &sequenced) {
            folded += engine.ingest_sequenced(seq, &batch)?.folded;
        }

        engine.advance(hi);
        twin.advance(hi);

        // The cold batch reference must be taken before the incremental
        // re-solve: both solve from the same pre-solve placements (the
        // re-solve then updates them, changing transition costs).
        let cold = if options.verify {
            Some(reference::full_resolve(&engine)?)
        } else {
            None
        };

        // Inject compute faults and re-solve.
        let faults = plan.shard_faults(epoch_idx, outcome.accounts);
        let resolved = engine.reoptimize_with_faults(&faults)?;
        twin.reoptimize()?;

        let heat_ok = heat_matches(&engine, &twin);
        let healthy_ok = match &cold {
            Some(cold) => {
                cold.len() == resolved.accounts.len()
                    && cold.iter().zip(&resolved.accounts).all(|(c, i)| {
                        i.stale
                            || (c.account == i.account
                                && c.assignment.choices == i.assignment.choices
                                && c.assignment.objective.to_bits()
                                    == i.assignment.objective.to_bits())
                    })
            }
            None => false,
        };

        // Crash epochs: checkpoint, drop the engine, restore, verify the
        // restored state is byte-identical, and continue on the restoree.
        let crashed = plan.crash_after_epoch(epoch_idx);
        if crashed {
            let snapshot = engine.checkpoint();
            let restored =
                ServeEngine::restore(options.catalog.clone(), options.schemes.clone(), &snapshot)?;
            if restored.checkpoint() != snapshot {
                outcome.recoveries_bit_identical = false;
            }
            engine = restored;
            outcome.crashes += 1;
        }

        outcome.total_retier_decisions += resolved.retier_decisions;
        outcome.final_total_objective = resolved.total_objective;
        outcome.dropped_events = resolved.dropped_events;
        outcome.duplicate_batches = engine.duplicate_batches();
        outcome.epochs.push(ChaosEpoch {
            day: hi,
            folded_events: folded,
            quarantined_events: quarantined,
            truncated_events: truncated,
            degraded_accounts: resolved.degraded_accounts,
            stale_accounts: engine.stale_accounts().len(),
            retier_decisions: resolved.retier_decisions,
            total_objective: resolved.total_objective,
            heat_matches_twin: heat_ok,
            healthy_match_reference: healthy_ok,
            verified: cold.is_some(),
            crashed,
        });
        day = hi;
        epoch_idx += 1;
    }

    // Final intake accounting versus the independent reference over the
    // exactly-once delivered stream.
    let expected = expected_intake(
        &delivered_in_order,
        horizon_days,
        engine.len() as u32,
        engine.quarantine().capacity(),
    );
    outcome.intake_matches_expected = engine.quarantine().entries() == expected.records
        && engine.quarantine().total() == expected.quarantined
        && engine.quarantine().truncated() == expected.truncated
        && engine.dropped_events() == expected.dropped
        && engine.events_seen() == expected.events_seen
        && outcome.quarantined_events == expected.quarantined;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> ChaosOptions {
        ChaosOptions {
            workload: EnterpriseOptions {
                n_datasets: 60,
                history_months: 6,
                future_months: 6,
                seed: 11,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn assert_contracts(outcome: &ChaosOutcome) {
        assert!(outcome.recoveries_bit_identical);
        assert!(outcome.intake_matches_expected);
        for (i, e) in outcome.epochs.iter().enumerate() {
            assert!(e.heat_matches_twin, "epoch {i} heat diverged from twin");
            assert!(e.verified, "epoch {i} skipped verification");
            assert!(
                e.healthy_match_reference,
                "epoch {i} healthy shards diverged from reference"
            );
        }
    }

    #[test]
    fn chaos_replay_upholds_every_contract_under_light_faults() {
        let outcome = run_chaos(&options()).unwrap();
        assert_eq!(outcome.objects, 60);
        assert_eq!(outcome.epochs.len(), 12);
        assert_contracts(&outcome);
        // The light mix actually exercised something.
        assert!(outcome.quarantined_events > 0, "{outcome:?}");
        assert!(outcome.duplicate_batches > 0, "{outcome:?}");
        assert!(outcome.crashes > 0, "{outcome:?}");
        assert!(
            outcome.epochs.iter().any(|e| e.degraded_accounts > 0),
            "{outcome:?}"
        );
        assert!(outcome.final_total_objective.is_finite());
    }

    #[test]
    fn chaos_replay_under_heavy_faults_still_recovers() {
        let outcome = run_chaos(&ChaosOptions {
            rates: FaultRates::heavy(),
            seed: 7,
            ..options()
        })
        .unwrap();
        assert_contracts(&outcome);
        assert!(outcome.crashes > 0);
    }

    #[test]
    fn a_faultless_plan_reduces_to_the_serving_replay() {
        let outcome = run_chaos(&ChaosOptions {
            rates: FaultRates::none(),
            ..options()
        })
        .unwrap();
        assert_contracts(&outcome);
        assert_eq!(outcome.quarantined_events, 0);
        assert_eq!(outcome.duplicate_batches, 0);
        assert_eq!(outcome.crashes, 0);
        assert!(outcome.epochs.iter().all(|e| e.degraded_accounts == 0));
        // With no faults the chaos loop must reproduce the serving
        // scenario's replay exactly (same trace, same engine settings).
        let serving = crate::serving::run_serving(&crate::serving::ServingOptions {
            workload: options().workload,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(
            outcome.final_total_objective.to_bits(),
            serving.final_total_objective.to_bits()
        );
        assert_eq!(
            outcome.total_retier_decisions,
            serving.total_retier_decisions
        );
    }

    #[test]
    fn chaos_options_are_validated() {
        for bad in [
            ChaosOptions {
                epoch_days: 0,
                ..options()
            },
            ChaosOptions {
                accounts: 0,
                ..options()
            },
            ChaosOptions {
                batches_per_epoch: 0,
                ..options()
            },
            ChaosOptions {
                rates: FaultRates {
                    crash: 1.5,
                    ..FaultRates::none()
                },
                ..options()
            },
        ] {
            assert!(matches!(run_chaos(&bad), Err(ScopeError::InvalidConfig(_))));
        }
    }
}
