//! Error type for the partitioning crate.

use std::fmt;

/// Errors produced by the partitioning algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum DataPartError {
    /// An algorithm option was invalid.
    InvalidOption(String),
    /// The cost threshold is too small for any feasible covering.
    InfeasibleCostThreshold {
        /// The requested threshold.
        threshold: f64,
        /// The minimum achievable total cost.
        minimum: f64,
    },
    /// A file referenced by a partition is missing from the file catalog.
    UnknownFile(String),
}

impl fmt::Display for DataPartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPartError::InvalidOption(msg) => write!(f, "invalid option: {msg}"),
            DataPartError::InfeasibleCostThreshold { threshold, minimum } => write!(
                f,
                "cost threshold {threshold} is below the minimum achievable cost {minimum}"
            ),
            DataPartError::UnknownFile(name) => write!(f, "unknown file in partition: {name}"),
        }
    }
}

impl std::error::Error for DataPartError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DataPartError::InvalidOption("x".into())
            .to_string()
            .contains('x'));
        assert!(DataPartError::UnknownFile("f".into())
            .to_string()
            .contains('f'));
        assert!(DataPartError::InfeasibleCostThreshold {
            threshold: 1.0,
            minimum: 2.0
        }
        .to_string()
        .contains('2'));
    }
}
