//! Partitions (file sets with access frequencies) and the file catalog.

use crate::error::DataPartError;
use scope_workload::{FileRef, QueryFamily};
use std::collections::{BTreeSet, HashMap};

/// Sizes of the physical files partitions are made of.
///
/// Sizes are in arbitrary consistent units (rows or GB); DATAPART only ever
/// compares and sums them.
#[derive(Debug, Clone, Default)]
pub struct FileCatalog {
    sizes: HashMap<FileRef, f64>,
}

impl FileCatalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        FileCatalog::default()
    }

    /// Build a catalog from `(table, file count, size per file)` triples,
    /// the common case where a table is split into equal-sized files.
    pub fn uniform(tables: &[(&str, usize, f64)]) -> Self {
        let mut catalog = FileCatalog::new();
        for &(table, count, size) in tables {
            for i in 0..count {
                catalog.insert(FileRef::new(table, i), size);
            }
        }
        catalog
    }

    /// Register a file and its size.
    pub fn insert(&mut self, file: FileRef, size: f64) {
        self.sizes.insert(file, size);
    }

    /// Size of a file, if known.
    pub fn size(&self, file: &FileRef) -> Option<f64> {
        self.sizes.get(file).copied()
    }

    /// Number of files known to the catalog.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when no files are registered.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Total size of a set of (distinct) files. Unknown files are an error.
    pub fn span_of<'a>(
        &self,
        files: impl IntoIterator<Item = &'a FileRef>,
    ) -> Result<f64, DataPartError> {
        let mut total = 0.0;
        for f in files {
            total += self.size(f).ok_or_else(|| {
                DataPartError::UnknownFile(format!("{}:{}", f.table, f.file_index))
            })?;
        }
        Ok(total)
    }
}

/// A partition: a set of files plus an expected access frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Stable id (initial partitions keep the query family id; merged
    /// partitions get fresh ids from the merger).
    pub id: usize,
    /// The (distinct) files in the partition.
    pub files: BTreeSet<FileRef>,
    /// Expected number of accesses (`ρ`).
    pub frequency: f64,
}

impl Partition {
    /// Create a partition from files and a frequency.
    pub fn new(id: usize, files: impl IntoIterator<Item = FileRef>, frequency: f64) -> Self {
        Partition {
            id,
            files: files.into_iter().collect(),
            frequency,
        }
    }

    /// Build the initial partition corresponding to a query family.
    pub fn from_query_family(family: &QueryFamily) -> Self {
        Partition {
            id: family.id,
            files: family.files.iter().cloned().collect(),
            frequency: family.frequency,
        }
    }

    /// Build initial partitions from a whole workload.
    pub fn from_families(families: &[QueryFamily]) -> Vec<Partition> {
        families.iter().map(Partition::from_query_family).collect()
    }

    /// Span (total size of distinct files) under a file catalog.
    pub fn span(&self, catalog: &FileCatalog) -> Result<f64, DataPartError> {
        catalog.span_of(self.files.iter())
    }

    /// Number of distinct files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Overlap with another partition: total size of the files common to
    /// both, `Ov(P_i, P_j) = Sp(P_i) + Sp(P_j) − Sp(P_i ∪ P_j)`.
    pub fn overlap(&self, other: &Partition, catalog: &FileCatalog) -> Result<f64, DataPartError> {
        let common: Vec<&FileRef> = self.files.intersection(&other.files).collect();
        catalog.span_of(common)
    }

    /// Overlap and union span in one pass: a sorted merge walk over the two
    /// file sets, with no intermediate set or `Vec` materialized. Both sums
    /// accumulate in ascending [`FileRef`] order — exactly the order
    /// `span_of(intersection)` / `span_of(union)` iterate — so the result
    /// is bit-identical to computing the two spans separately. This is the
    /// hoisted scoring G-PART calls once per candidate edge.
    pub fn overlap_stats(
        &self,
        other: &Partition,
        catalog: &FileCatalog,
    ) -> Result<(f64, f64), DataPartError> {
        let mut overlap = 0.0;
        let mut union_span = 0.0;
        let size_of = |f: &FileRef| {
            catalog
                .size(f)
                .ok_or_else(|| DataPartError::UnknownFile(format!("{}:{}", f.table, f.file_index)))
        };
        let mut a = self.files.iter().peekable();
        let mut b = other.files.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&fa), Some(&fb)) => match fa.cmp(fb) {
                    std::cmp::Ordering::Less => {
                        union_span += size_of(fa)?;
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        union_span += size_of(fb)?;
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        let s = size_of(fa)?;
                        union_span += s;
                        overlap += s;
                        a.next();
                        b.next();
                    }
                },
                (Some(&fa), None) => {
                    union_span += size_of(fa)?;
                    a.next();
                }
                (None, Some(&fb)) => {
                    union_span += size_of(fb)?;
                    b.next();
                }
                (None, None) => break,
            }
        }
        Ok((overlap, union_span))
    }

    /// Fractional overlap with another partition:
    /// `Ov(P_i, P_j) / Sp(P_i ∪ P_j)` (0 = disjoint, → 1 = nearly identical).
    pub fn fractional_overlap(
        &self,
        other: &Partition,
        catalog: &FileCatalog,
    ) -> Result<f64, DataPartError> {
        let (overlap, union_span) = self.overlap_stats(other, catalog)?;
        if union_span <= 0.0 {
            return Ok(0.0);
        }
        Ok(overlap / union_span)
    }

    /// Merge with another partition (union of files, sum of frequencies).
    pub fn merge(&self, other: &Partition, new_id: usize) -> Partition {
        Partition {
            id: new_id,
            files: self.files.union(&other.files).cloned().collect(),
            frequency: self.frequency + other.frequency,
        }
    }

    /// Expected read cost of the partition: `Sp · ρ`.
    pub fn read_cost(&self, catalog: &FileCatalog) -> Result<f64, DataPartError> {
        Ok(self.span(catalog)? * self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> FileCatalog {
        FileCatalog::uniform(&[("t", 10, 5.0)])
    }

    fn partition(id: usize, indices: &[usize], freq: f64) -> Partition {
        Partition::new(id, indices.iter().map(|&i| FileRef::new("t", i)), freq)
    }

    #[test]
    fn span_overlap_and_fractional_overlap() {
        let c = catalog();
        let a = partition(0, &[0, 1, 2], 2.0);
        let b = partition(1, &[2, 3], 3.0);
        assert_eq!(a.span(&c).unwrap(), 15.0);
        assert_eq!(b.span(&c).unwrap(), 10.0);
        assert_eq!(a.overlap(&b, &c).unwrap(), 5.0);
        // Union spans files 0..=3 -> 20; fractional overlap 5/20.
        assert!((a.fractional_overlap(&b, &c).unwrap() - 0.25).abs() < 1e-12);
        // Disjoint partitions have zero overlap.
        let d = partition(2, &[7, 8], 1.0);
        assert_eq!(a.overlap(&d, &c).unwrap(), 0.0);
        assert_eq!(a.fractional_overlap(&d, &c).unwrap(), 0.0);
    }

    #[test]
    fn merge_unions_files_and_sums_frequencies() {
        let c = catalog();
        let a = partition(0, &[0, 1, 2], 2.0);
        let b = partition(1, &[2, 3], 3.0);
        let m = a.merge(&b, 99);
        assert_eq!(m.id, 99);
        assert_eq!(m.file_count(), 4);
        assert_eq!(m.frequency, 5.0);
        assert_eq!(m.span(&c).unwrap(), 20.0);
        // Span of a merge never exceeds the sum of spans (subadditivity).
        assert!(m.span(&c).unwrap() <= a.span(&c).unwrap() + b.span(&c).unwrap());
        // Read cost is span * frequency.
        assert_eq!(m.read_cost(&c).unwrap(), 100.0);
    }

    #[test]
    fn overlap_stats_matches_set_based_spans_bitwise() {
        // The merge-walk must reproduce the historical two-pass computation
        // (span of the intersection, span of the union) exactly.
        let mut c = FileCatalog::new();
        for i in 0..12 {
            c.insert(FileRef::new("t", i), 1.0 + i as f64 * 0.37);
        }
        let cases = [
            (vec![0, 1, 2, 5], vec![2, 3, 5, 7]),
            (vec![0, 1], vec![4, 5]),
            (vec![3, 4, 5], vec![3, 4, 5]),
            (vec![0], vec![0, 1, 2, 3, 4, 5, 6]),
        ];
        for (fa, fb) in cases {
            let a = partition(0, &fa, 1.0);
            let b = partition(1, &fb, 1.0);
            let (overlap, union_span) = a.overlap_stats(&b, &c).unwrap();
            let common: Vec<&FileRef> = a.files.intersection(&b.files).collect();
            let expect_overlap = c.span_of(common).unwrap();
            let expect_union = c.span_of(a.files.union(&b.files)).unwrap();
            assert_eq!(overlap.to_bits(), expect_overlap.to_bits());
            assert_eq!(union_span.to_bits(), expect_union.to_bits());
            assert_eq!(a.overlap(&b, &c).unwrap().to_bits(), overlap.to_bits());
        }
    }

    #[test]
    fn unknown_files_are_reported() {
        let c = catalog();
        let bad = Partition::new(0, [FileRef::new("other", 0)], 1.0);
        assert!(matches!(bad.span(&c), Err(DataPartError::UnknownFile(_))));
    }

    #[test]
    fn from_query_family_preserves_id_files_and_frequency() {
        let family = QueryFamily {
            id: 7,
            files: vec![
                FileRef::new("t", 1),
                FileRef::new("t", 1),
                FileRef::new("t", 2),
            ],
            frequency: 4.0,
            template: 3,
        };
        let p = Partition::from_query_family(&family);
        assert_eq!(p.id, 7);
        assert_eq!(p.file_count(), 2); // duplicates collapse
        assert_eq!(p.frequency, 4.0);
        let many = Partition::from_families(&[family.clone(), family]);
        assert_eq!(many.len(), 2);
    }

    #[test]
    fn uniform_catalog_registers_all_files() {
        let c = FileCatalog::uniform(&[("a", 3, 2.0), ("b", 2, 10.0)]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.size(&FileRef::new("a", 2)), Some(2.0));
        assert_eq!(c.size(&FileRef::new("b", 1)), Some(10.0));
        assert_eq!(c.size(&FileRef::new("b", 5)), None);
        assert!(!c.is_empty());
        assert!(FileCatalog::new().is_empty());
    }
}
