//! Exact DP and bi-criteria approximation for time-ordered partitions
//! (§VI-B, Theorems 5 and 6).
//!
//! For time-series data every query (initial partition) is an interval of
//! the record axis; partitions are ordered by end time and only merges of
//! *adjacent* runs `[P_{i-k}, ..., P_i]` are considered. The DP
//!
//! ```text
//! ALG[P_i, C] = min_k  ALG[parent(M_i^k), C − C(M_i^k)] + Sp(M_i^k)
//! ```
//!
//! minimizes the total stored space of a covering by runs whose total read
//! cost stays within the budget `C`. With costs discretized to integers the
//! DP is exact in `O(N² · C)` (pseudo-polynomial); discretizing the cost
//! scale by `ε` and extending the threshold by `Nε` gives the paper's
//! `(1, 1 + Nε)` bi-criteria approximation in polynomial time.

use crate::error::DataPartError;

/// A time-ordered initial partition: an interval of the record axis plus an
/// access frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedPartition {
    /// Start of the interval (inclusive), in record/size units.
    pub start: f64,
    /// End of the interval (exclusive); must be > `start`.
    pub end: f64,
    /// Expected number of accesses.
    pub frequency: f64,
}

impl OrderedPartition {
    /// Create an interval partition.
    pub fn new(start: f64, end: f64, frequency: f64) -> Self {
        OrderedPartition {
            start,
            end,
            frequency,
        }
    }

    /// Span of the interval.
    pub fn span(&self) -> f64 {
        self.end - self.start
    }
}

/// A solution to the ordered merging problem.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedSolution {
    /// The chosen merges, as index ranges `[from, to]` (inclusive) over the
    /// input order.
    pub merges: Vec<(usize, usize)>,
    /// Total stored space of the merges.
    pub total_space: f64,
    /// Total read cost (`Σ Sp(M)·ρ(M)`) of the merges.
    pub total_cost: f64,
}

fn validate(partitions: &[OrderedPartition]) -> Result<(), DataPartError> {
    if partitions.is_empty() {
        return Err(DataPartError::InvalidOption(
            "no partitions to merge".to_string(),
        ));
    }
    for (i, p) in partitions.iter().enumerate() {
        if !(p.end > p.start) || !(p.frequency >= 0.0) {
            return Err(DataPartError::InvalidOption(format!(
                "partition {i} has an invalid interval or frequency"
            )));
        }
    }
    for w in partitions.windows(2) {
        if w[1].end < w[0].end {
            return Err(DataPartError::InvalidOption(
                "partitions must be sorted by end time".to_string(),
            ));
        }
    }
    Ok(())
}

/// Span and cost of the merge of partitions `[from, to]` (inclusive).
fn merge_stats(partitions: &[OrderedPartition], from: usize, to: usize) -> (f64, f64) {
    let start = partitions[from..=to]
        .iter()
        .map(|p| p.start)
        .fold(f64::INFINITY, f64::min);
    let end = partitions[from..=to]
        .iter()
        .map(|p| p.end)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = end - start;
    let freq: f64 = partitions[from..=to].iter().map(|p| p.frequency).sum();
    (span, span * freq)
}

/// Exact pseudo-polynomial DP: minimize total space subject to total read
/// cost ≤ `cost_threshold`, with costs discretized into `resolution` units
/// per unit of cost (higher resolution = finer discretization = slower).
///
/// Returns an error if even the cheapest covering (every partition kept
/// separate, which has the minimum possible cost) exceeds the threshold.
///
/// # Complexity
///
/// With `N` partitions and a budget of `C` discretized cost units, the DP
/// visits `O(N²)` candidate merges and relaxes `O(C)` budget cells for each
/// — but each merge's span/frequency statistics are maintained
/// **incrementally** while the window `[from, to]` grows rightward, so a
/// merge costs `O(1)` beyond its budget loop: `O(N²·C)` total. The seed
/// implementation re-scanned the window for every `(i, k)` pair
/// (`O(window)` per merge, `O(N²·(N + C))` total — the ISSUE's
/// `O(N²·C·n)` hot loop); it is preserved verbatim as
/// [`solve_ordered_exact_reference`] and pinned bit-for-bit (identical
/// plans, spaces and costs) against this path in
/// `tests/differential_learn.rs` and the `train_bench` bin.
///
/// The incremental statistics fold in exactly the order
/// [`merge_stats`]' left-to-right scans do (min/max/sum extended on the
/// right), and ties between equally-good merge lengths resolve to the
/// shortest merge in both paths, so the two are floating-point identical.
pub fn solve_ordered_exact(
    partitions: &[OrderedPartition],
    cost_threshold: f64,
    resolution: f64,
) -> Result<OrderedSolution, DataPartError> {
    validate(partitions)?;
    if !(cost_threshold > 0.0) || !(resolution > 0.0) {
        return Err(DataPartError::InvalidOption(
            "cost_threshold and resolution must be positive".to_string(),
        ));
    }
    let n = partitions.len();
    // Discretize: each merge's cost is rounded *up* to ceil(c * resolution)
    // units (conservative), while the budget is rounded *down* — this way a
    // returned solution's true cost can never exceed the requested
    // threshold, which is what the bi-criteria guarantee of Theorem 6
    // relies on.
    let to_units = |c: f64| (c * resolution).ceil() as usize;
    let budget = (cost_threshold * resolution).floor() as usize;

    // Minimum achievable cost = every partition separate.
    let min_cost: f64 = (0..n).map(|i| merge_stats(partitions, i, i).1).sum();
    if to_units(min_cost) > budget {
        return Err(DataPartError::InfeasibleCostThreshold {
            threshold: cost_threshold,
            minimum: min_cost,
        });
    }

    // dp[i][c] = min space to cover the first i partitions with cost units <= c.
    // choice[i][c] = the k (merge length) achieving it.
    const INF: f64 = f64::INFINITY;
    let mut dp = vec![vec![INF; budget + 1]; n + 1];
    let mut choice = vec![vec![usize::MAX; budget + 1]; n + 1];
    for cell in dp[0].iter_mut() {
        *cell = 0.0;
    }
    // Sweep merge windows [from, to] by growing `to` rightward so the
    // window statistics extend incrementally (same fold order as
    // `merge_stats`, hence bit-identical spans and costs). dp[from] is
    // final before the outer loop reaches it: every transition into row j
    // comes from a window ending at j-1, i.e. an earlier outer iteration.
    for from in 0..n {
        let mut start = f64::INFINITY;
        let mut end = f64::NEG_INFINITY;
        let mut freq = 0.0f64;
        for (to, part) in partitions.iter().enumerate().skip(from) {
            start = start.min(part.start);
            end = end.max(part.end);
            freq += part.frequency;
            let span = end - start;
            let cost = span * freq;
            let units = to_units(cost);
            if units > budget {
                // Spans and frequencies only grow with the window, so every
                // longer merge from this `from` is over budget too.
                break;
            }
            let i = to + 1;
            let k = i - from;
            for c in units..=budget {
                let prev = dp[from][c - units];
                if !prev.is_finite() {
                    continue;
                }
                let cand = prev + span;
                // `<=` so ties prefer the largest `from` (the shortest
                // merge) — the seed loop scanned k = 1..=i with a strict
                // `<`, which kept exactly that choice.
                if cand <= dp[i][c] {
                    dp[i][c] = cand;
                    choice[i][c] = k;
                }
            }
        }
    }
    if dp[n][budget].is_infinite() {
        return Err(DataPartError::InfeasibleCostThreshold {
            threshold: cost_threshold,
            minimum: min_cost,
        });
    }

    // Reconstruct the merges.
    let mut merges = Vec::new();
    let mut i = n;
    let mut c = budget;
    // Walk back through the choices; for the cost index we need the best c
    // for each i, which is the same monotone budget (dp is monotone in c),
    // so we track the remaining budget as we peel merges off.
    while i > 0 {
        // dp[i][c] might be achieved at a smaller c; find the choice made at
        // the largest c' <= c with the same value to recover a valid k.
        let k = choice[i][c];
        debug_assert!(k != usize::MAX);
        let from = i - k;
        let to = i - 1;
        merges.push((from, to));
        let (_, cost) = merge_stats(partitions, from, to);
        c -= to_units(cost);
        i = from;
    }
    merges.reverse();
    let total_space: f64 = merges
        .iter()
        .map(|&(f, t)| merge_stats(partitions, f, t).0)
        .sum();
    let total_cost: f64 = merges
        .iter()
        .map(|&(f, t)| merge_stats(partitions, f, t).1)
        .sum();
    Ok(OrderedSolution {
        merges,
        total_space,
        total_cost,
    })
}

/// The seed implementation of [`solve_ordered_exact`], preserved verbatim
/// as a differential oracle and benchmark baseline: every `(i, k)` merge
/// candidate recomputes its span/frequency statistics with a full
/// [`merge_stats`] window scan (`O(N²·(N + C))` overall). The production
/// path maintains the statistics incrementally and must return bit-for-bit
/// identical plans; `tests/differential_learn.rs` pins that on random
/// instances and the `train_bench` bin asserts it at benchmark scale.
pub fn solve_ordered_exact_reference(
    partitions: &[OrderedPartition],
    cost_threshold: f64,
    resolution: f64,
) -> Result<OrderedSolution, DataPartError> {
    validate(partitions)?;
    if !(cost_threshold > 0.0) || !(resolution > 0.0) {
        return Err(DataPartError::InvalidOption(
            "cost_threshold and resolution must be positive".to_string(),
        ));
    }
    let n = partitions.len();
    let to_units = |c: f64| (c * resolution).ceil() as usize;
    let budget = (cost_threshold * resolution).floor() as usize;

    let min_cost: f64 = (0..n).map(|i| merge_stats(partitions, i, i).1).sum();
    if to_units(min_cost) > budget {
        return Err(DataPartError::InfeasibleCostThreshold {
            threshold: cost_threshold,
            minimum: min_cost,
        });
    }

    const INF: f64 = f64::INFINITY;
    let mut dp = vec![vec![INF; budget + 1]; n + 1];
    let mut choice = vec![vec![usize::MAX; budget + 1]; n + 1];
    for cell in dp[0].iter_mut() {
        *cell = 0.0;
    }
    for i in 1..=n {
        // The merge covering partition i-1 (0-based) is [i-k, i-1] for k=1..=i.
        for k in 1..=i {
            let from = i - k;
            let to = i - 1;
            let (span, cost) = merge_stats(partitions, from, to);
            let units = to_units(cost);
            for c in units..=budget {
                let prev = dp[from][c - units];
                if prev + span < dp[i][c] {
                    dp[i][c] = prev + span;
                    choice[i][c] = k;
                }
            }
        }
    }
    if dp[n][budget].is_infinite() {
        return Err(DataPartError::InfeasibleCostThreshold {
            threshold: cost_threshold,
            minimum: min_cost,
        });
    }

    let mut merges = Vec::new();
    let mut i = n;
    let mut c = budget;
    while i > 0 {
        let k = choice[i][c];
        debug_assert!(k != usize::MAX);
        let from = i - k;
        let to = i - 1;
        merges.push((from, to));
        let (_, cost) = merge_stats(partitions, from, to);
        c -= to_units(cost);
        i = from;
    }
    merges.reverse();
    let total_space: f64 = merges
        .iter()
        .map(|&(f, t)| merge_stats(partitions, f, t).0)
        .sum();
    let total_cost: f64 = merges
        .iter()
        .map(|&(f, t)| merge_stats(partitions, f, t).1)
        .sum();
    Ok(OrderedSolution {
        merges,
        total_space,
        total_cost,
    })
}

/// The `(1, 1 + Nε)` bi-criteria approximation (Theorem 6): discretize the
/// cost scale so that each merge's cost is rounded up by at most `ε ·
/// cost_threshold / N`, and extend the budget by `N` such units. The space
/// found is at most the optimal space for the original threshold, and the
/// cost is at most `(1 + Nε) · cost_threshold`.
pub fn solve_ordered_bicriteria(
    partitions: &[OrderedPartition],
    cost_threshold: f64,
    epsilon: f64,
) -> Result<OrderedSolution, DataPartError> {
    if !(epsilon > 0.0) {
        return Err(DataPartError::InvalidOption(
            "epsilon must be positive".to_string(),
        ));
    }
    validate(partitions)?;
    let n = partitions.len() as f64;
    // One cost unit = ε · threshold; extend the budget by N units.
    let unit = epsilon * cost_threshold;
    let resolution = 1.0 / unit;
    let extended_threshold = cost_threshold + n * unit;
    solve_ordered_exact(partitions, extended_threshold, resolution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(n: usize, span: f64, overlap: f64, freq: f64) -> Vec<OrderedPartition> {
        // n intervals of length `span`, each overlapping the previous by
        // `overlap`.
        (0..n)
            .map(|i| {
                let start = i as f64 * (span - overlap);
                OrderedPartition::new(start, start + span, freq)
            })
            .collect()
    }

    #[test]
    fn generous_budget_merges_everything() {
        let parts = chain(5, 10.0, 5.0, 1.0);
        // Full merge: span 10 + 4*5 = 30, freq 5, cost 150.
        let sol = solve_ordered_exact(&parts, 1000.0, 1.0).unwrap();
        assert_eq!(sol.merges, vec![(0, 4)]);
        assert!((sol.total_space - 30.0).abs() < 1e-9);
        assert!((sol.total_cost - 150.0).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_keeps_partitions_separate() {
        let parts = chain(5, 10.0, 5.0, 1.0);
        // Separate cost = 5 * 10 * 1 = 50, which is the minimum possible.
        let sol = solve_ordered_exact(&parts, 50.0, 1.0).unwrap();
        assert_eq!(sol.merges.len(), 5);
        assert!((sol.total_cost - 50.0).abs() < 1e-9);
        assert!((sol.total_space - 50.0).abs() < 1e-9);
        // Below the minimum the instance is infeasible.
        assert!(matches!(
            solve_ordered_exact(&parts, 10.0, 1.0),
            Err(DataPartError::InfeasibleCostThreshold { .. })
        ));
    }

    #[test]
    fn intermediate_budget_trades_space_for_cost() {
        let parts = chain(6, 10.0, 5.0, 1.0);
        let loose = solve_ordered_exact(&parts, 10_000.0, 1.0).unwrap();
        let medium = solve_ordered_exact(&parts, 120.0, 1.0).unwrap();
        let tight = solve_ordered_exact(&parts, 60.0, 1.0).unwrap();
        // Space shrinks as the budget loosens; cost stays within budget.
        assert!(loose.total_space <= medium.total_space);
        assert!(medium.total_space <= tight.total_space);
        assert!(medium.total_cost <= 120.0 + 1e-9);
        assert!(tight.total_cost <= 60.0 + 1e-9);
        // The medium budget should produce a genuine compromise: fewer
        // merges than "all separate", more than "all together".
        assert!(medium.merges.len() > loose.merges.len());
        assert!(medium.merges.len() < tight.merges.len());
    }

    #[test]
    fn merges_are_contiguous_and_cover_everything() {
        let parts = chain(9, 8.0, 3.0, 2.0);
        let sol = solve_ordered_exact(&parts, 400.0, 1.0).unwrap();
        // Contiguity + coverage: ranges tile [0, 9).
        let mut next = 0usize;
        for &(from, to) in &sol.merges {
            assert_eq!(from, next);
            assert!(to >= from);
            next = to + 1;
        }
        assert_eq!(next, 9);
    }

    #[test]
    fn dp_is_optimal_against_brute_force() {
        // Small instance: compare against exhaustive enumeration of all
        // contiguous coverings.
        let parts = chain(6, 7.0, 2.0, 1.5);
        let budget = 130.0;
        let dp = solve_ordered_exact(&parts, budget, 10.0).unwrap();

        // Brute force over compositions of 6.
        fn enumerate(
            parts: &[OrderedPartition],
            start: usize,
            budget: f64,
            space: f64,
            best: &mut f64,
        ) {
            if start == parts.len() {
                if space < *best {
                    *best = space;
                }
                return;
            }
            for end in start..parts.len() {
                let (span, cost) = super::merge_stats(parts, start, end);
                if cost <= budget + 1e-12 {
                    enumerate(parts, end + 1, budget - cost, space + span, best);
                }
            }
        }
        let mut best = f64::INFINITY;
        enumerate(&parts, 0, budget, 0.0, &mut best);
        // The DP discretizes costs (rounding up), so it may be slightly
        // conservative but never better than the true optimum.
        assert!(dp.total_space >= best - 1e-9);
        assert!(dp.total_space <= best * 1.1 + 1e-9);
    }

    #[test]
    fn incremental_dp_matches_reference_bitwise() {
        // Production (incremental window stats) vs seed (per-merge window
        // re-scans): identical plans, spaces and costs, bit for bit —
        // including on tie-heavy uniform chains where the shortest-merge
        // tie-break decides the plan.
        let mut cases: Vec<(Vec<OrderedPartition>, f64, f64)> = vec![
            (chain(12, 10.0, 5.0, 1.0), 400.0, 1.0),
            (chain(12, 10.0, 5.0, 1.0), 700.0, 3.0),
            (chain(9, 7.0, 2.0, 0.0), 80.0, 1.0),
        ];
        // Irregular instances: varying spans, overlaps and frequencies.
        let mut parts = Vec::new();
        let mut end = 0.0;
        for i in 0..15 {
            let span = 3.0 + (i % 5) as f64 * 2.5;
            end += 1.0 + (i % 3) as f64;
            parts.push(OrderedPartition::new(end - span, end, (i % 4) as f64));
        }
        cases.push((parts.clone(), 900.0, 2.0));
        cases.push((parts, 2500.0, 0.5));
        for (parts, budget, resolution) in cases {
            let fast = solve_ordered_exact(&parts, budget, resolution).unwrap();
            let slow = solve_ordered_exact_reference(&parts, budget, resolution).unwrap();
            assert_eq!(fast.merges, slow.merges);
            assert_eq!(fast.total_space.to_bits(), slow.total_space.to_bits());
            assert_eq!(fast.total_cost.to_bits(), slow.total_cost.to_bits());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Brute-force optimality at larger N than the fixed 6-partition
        /// unit test: integer spans, steps and frequencies with resolution
        /// 1.0 make the discretization exact, so the DP must match the
        /// enumerated optimum *exactly* — and the incremental production
        /// path must match the seed reference bit-for-bit.
        #[test]
        fn dp_is_optimal_against_brute_force_at_larger_n(
            steps in proptest::collection::vec(1u32..6, 7..12),
            spans in proptest::collection::vec(1u32..7, 12),
            freqs in proptest::collection::vec(0u32..5, 12),
            budget_extra in 1u32..60,
        ) {
            let n = steps.len();
            let mut parts = Vec::with_capacity(n);
            let mut end = 0i64;
            for i in 0..n {
                end += steps[i] as i64;
                let span = spans[i] as i64;
                parts.push(OrderedPartition::new(
                    (end - span) as f64,
                    end as f64,
                    freqs[i] as f64,
                ));
            }
            // All stats are integers, so ceil/floor discretization at
            // resolution 1.0 is exact and f64 sums are exact.
            let min_cost: i64 = parts.iter().map(|p| (p.span() * p.frequency) as i64).sum();
            let budget_units = min_cost + budget_extra as i64;
            let budget = budget_units as f64;

            let fast = solve_ordered_exact(&parts, budget, 1.0).unwrap();
            let slow = solve_ordered_exact_reference(&parts, budget, 1.0).unwrap();
            prop_assert_eq!(&fast.merges, &slow.merges);
            prop_assert_eq!(fast.total_space.to_bits(), slow.total_space.to_bits());
            prop_assert_eq!(fast.total_cost.to_bits(), slow.total_cost.to_bits());

            // Exhaustive enumeration of all 2^(n-1) contiguous coverings,
            // in the DP's own integer cost units.
            fn enumerate(
                parts: &[OrderedPartition],
                start: usize,
                budget_units: i64,
                space: i64,
                best: &mut i64,
            ) {
                if start == parts.len() {
                    *best = (*best).min(space);
                    return;
                }
                for end in start..parts.len() {
                    let lo = parts[start..=end]
                        .iter()
                        .map(|p| p.start)
                        .fold(f64::INFINITY, f64::min) as i64;
                    let hi = parts[start..=end]
                        .iter()
                        .map(|p| p.end)
                        .fold(f64::NEG_INFINITY, f64::max) as i64;
                    let freq: i64 = parts[start..=end].iter().map(|p| p.frequency as i64).sum();
                    let span = hi - lo;
                    let cost = span * freq;
                    if cost <= budget_units {
                        enumerate(parts, end + 1, budget_units - cost, space + span, best);
                    }
                }
            }
            let mut best = i64::MAX;
            enumerate(&parts, 0, budget_units, 0, &mut best);
            prop_assert!(best < i64::MAX, "separate covering always fits");
            prop_assert_eq!(fast.total_space as i64, best);
        }
    }

    #[test]
    fn bicriteria_respects_relaxed_budget() {
        let parts = chain(8, 10.0, 6.0, 1.0);
        let threshold = 200.0;
        let epsilon = 0.05;
        let sol = solve_ordered_bicriteria(&parts, threshold, epsilon).unwrap();
        let n = parts.len() as f64;
        assert!(sol.total_cost <= threshold * (1.0 + n * epsilon) + 1e-6);
        // Space must be no worse than the exact solution at the original
        // threshold (the whole point of the bi-criteria trade).
        let exact = solve_ordered_exact(&parts, threshold, 10.0).unwrap();
        assert!(sol.total_space <= exact.total_space + 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(solve_ordered_exact(&[], 10.0, 1.0).is_err());
        let bad_interval = vec![OrderedPartition::new(5.0, 5.0, 1.0)];
        assert!(solve_ordered_exact(&bad_interval, 10.0, 1.0).is_err());
        let unsorted = vec![
            OrderedPartition::new(0.0, 10.0, 1.0),
            OrderedPartition::new(0.0, 5.0, 1.0),
        ];
        assert!(solve_ordered_exact(&unsorted, 100.0, 1.0).is_err());
        let ok = chain(3, 5.0, 1.0, 1.0);
        assert!(solve_ordered_exact(&ok, -1.0, 1.0).is_err());
        assert!(solve_ordered_exact(&ok, 100.0, 0.0).is_err());
        assert!(solve_ordered_bicriteria(&ok, 100.0, 0.0).is_err());
    }
}
