//! # scope-datapart
//!
//! DATAPART (§VI of the paper): access-pattern-aware data partitioning.
//!
//! Query families define *initial partitions* — the sets of files each
//! family reads together. DATAPART merges these initial partitions into
//! final partitions so that the total stored space is minimized (overlap is
//! deduplicated) while the total expected read cost of the merges stays
//! under a budget, and partitions with wildly different access frequencies
//! are not merged together. The problem is NP-hard
//! (MERGEPARTITIONS, Theorem 4), so the crate provides:
//!
//! * [`gpart`] — the G-PART greedy heuristic for the general (graph) case:
//!   repeatedly merge the pair of partitions with the largest fractional
//!   overlap, subject to the frequency-compatibility constraints and a
//!   span threshold (Algorithm 1),
//! * [`ordered`] — the exact dynamic program and the (1, 1+Nε) bi-criteria
//!   approximation for time-ordered partitions (Theorems 5 and 6),
//! * [`metrics`] — duplication / space / read-cost metrics and the
//!   no-merge / merge-all baselines used in Fig 7.

#![warn(missing_docs)]

pub mod error;
pub mod gpart;
pub mod metrics;
pub mod ordered;
pub mod partition;

pub use error::DataPartError;
pub use gpart::{gpart_merge, MergeConfig};
pub use metrics::{merge_all, no_merge, PartitioningMetrics};
pub use ordered::{
    solve_ordered_bicriteria, solve_ordered_exact, solve_ordered_exact_reference, OrderedPartition,
    OrderedSolution,
};
pub use partition::{FileCatalog, Partition};
