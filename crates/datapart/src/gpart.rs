//! G-PART: the greedy partition-merging heuristic (Algorithm 1).
//!
//! Initial partitions are nodes of a graph whose edges are weighted by the
//! fractional overlap of the two partitions. G-PART repeatedly pops the
//! highest-overlap *feasible* edge from a max-heap, merges the two
//! endpoints into a meta-node, and re-inserts the meta-node's edges — unless
//! the merged span already exceeds the soft span threshold `S_thresh`, in
//! which case the meta-node is frozen. A pair of partitions is feasible to
//! merge when their access frequencies are comparable: either their ratio
//! is within `[1/ρ_c, ρ_c]` or their absolute difference is at most `ρ'_c`.

use crate::error::DataPartError;
use crate::partition::{FileCatalog, Partition};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of the G-PART merging constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeConfig {
    /// Maximum allowed frequency ratio between merged partitions (`ρ_c`).
    pub frequency_ratio: f64,
    /// Maximum allowed absolute frequency difference (`ρ'_c`); a pair is
    /// feasible if it satisfies *either* the ratio or the difference bound.
    pub frequency_abs_diff: f64,
    /// Soft span threshold `S_thresh`: once a merged partition reaches this
    /// span it is not merged further (prevents unbounded read-cost growth).
    pub span_threshold: f64,
    /// Minimum fractional overlap for an edge to exist at all.
    pub min_overlap: f64,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            frequency_ratio: 3.0,
            frequency_abs_diff: 5.0,
            span_threshold: f64::INFINITY,
            min_overlap: 1e-9,
        }
    }
}

impl MergeConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), DataPartError> {
        if !(self.frequency_ratio >= 1.0) {
            return Err(DataPartError::InvalidOption(format!(
                "frequency_ratio must be >= 1, got {}",
                self.frequency_ratio
            )));
        }
        if !(self.frequency_abs_diff >= 0.0) {
            return Err(DataPartError::InvalidOption(format!(
                "frequency_abs_diff must be >= 0, got {}",
                self.frequency_abs_diff
            )));
        }
        if !(self.span_threshold > 0.0) {
            return Err(DataPartError::InvalidOption(format!(
                "span_threshold must be positive, got {}",
                self.span_threshold
            )));
        }
        Ok(())
    }

    /// Are two partitions' frequencies compatible for merging?
    pub fn frequencies_compatible(&self, a: f64, b: f64) -> bool {
        let abs_ok = (a - b).abs() <= self.frequency_abs_diff;
        let ratio_ok = if a <= 0.0 || b <= 0.0 {
            false
        } else {
            let r = a / b;
            r >= 1.0 / self.frequency_ratio && r <= self.frequency_ratio
        };
        abs_ok || ratio_ok
    }
}

/// A heap entry: fractional overlap plus the two node ids it connects.
#[derive(Debug, PartialEq)]
struct Edge {
    overlap: f64,
    a: usize,
    b: usize,
}

impl Eq for Edge {}

impl Ord for Edge {
    fn cmp(&self, other: &Self) -> Ordering {
        self.overlap
            .partial_cmp(&other.overlap)
            .unwrap_or(Ordering::Equal)
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

impl PartialOrd for Edge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Run G-PART on the initial partitions, returning the merged partitions.
///
/// The result covers every input partition (each input is contained in
/// exactly one output), ids are re-assigned densely, and no output partition
/// was produced by merging a pair that violated the feasibility constraints.
pub fn gpart_merge(
    initial: &[Partition],
    catalog: &FileCatalog,
    config: &MergeConfig,
) -> Result<Vec<Partition>, DataPartError> {
    config.validate()?;
    if initial.is_empty() {
        return Ok(Vec::new());
    }
    // Working set of nodes; `alive[i]` marks whether node i still exists.
    let mut nodes: Vec<Partition> = initial.to_vec();
    let mut alive: Vec<bool> = vec![true; nodes.len()];
    let mut frozen: Vec<bool> = vec![false; nodes.len()];
    let mut heap: BinaryHeap<Edge> = BinaryHeap::new();

    // Validate spans up-front (also catches unknown files early).
    for p in &nodes {
        p.span(catalog)?;
    }

    let push_edges_for = |heap: &mut BinaryHeap<Edge>,
                          nodes: &[Partition],
                          alive: &[bool],
                          frozen: &[bool],
                          idx: usize|
     -> Result<(), DataPartError> {
        for j in 0..nodes.len() {
            if j == idx || !alive[j] || frozen[j] {
                continue;
            }
            if !config.frequencies_compatible(nodes[idx].frequency, nodes[j].frequency) {
                continue;
            }
            let overlap = nodes[idx].fractional_overlap(&nodes[j], catalog)?;
            if overlap > config.min_overlap {
                heap.push(Edge {
                    overlap,
                    a: idx.min(j),
                    b: idx.max(j),
                });
            }
        }
        Ok(())
    };

    // Initial edges.
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if !config.frequencies_compatible(nodes[i].frequency, nodes[j].frequency) {
                continue;
            }
            let overlap = nodes[i].fractional_overlap(&nodes[j], catalog)?;
            if overlap > config.min_overlap {
                heap.push(Edge {
                    overlap,
                    a: i,
                    b: j,
                });
            }
        }
    }

    while let Some(edge) = heap.pop() {
        let (a, b) = (edge.a, edge.b);
        if !alive[a] || !alive[b] || frozen[a] || frozen[b] {
            continue; // stale edge
        }
        // Re-check feasibility: frequencies may have changed via merging.
        if !config.frequencies_compatible(nodes[a].frequency, nodes[b].frequency) {
            continue;
        }
        // Merge a and b into a new node.
        let merged = nodes[a].merge(&nodes[b], nodes.len());
        alive[a] = false;
        alive[b] = false;
        let merged_span = merged.span(catalog)?;
        nodes.push(merged);
        alive.push(true);
        let new_idx = nodes.len() - 1;
        let is_frozen = merged_span >= config.span_threshold;
        frozen.push(is_frozen);
        if !is_frozen {
            push_edges_for(&mut heap, &nodes, &alive, &frozen, new_idx)?;
        }
    }

    let mut result: Vec<Partition> = nodes
        .into_iter()
        .zip(alive)
        .filter_map(|(p, keep)| keep.then_some(p))
        .collect();
    result.sort_by(|a, b| {
        a.files
            .iter()
            .next()
            .cmp(&b.files.iter().next())
            .then_with(|| a.file_count().cmp(&b.file_count()))
    });
    for (i, p) in result.iter_mut().enumerate() {
        p.id = i;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_workload::FileRef;
    use std::collections::BTreeSet;

    fn catalog(n: usize) -> FileCatalog {
        FileCatalog::uniform(&[("t", n, 1.0)])
    }

    fn partition(id: usize, indices: &[usize], freq: f64) -> Partition {
        Partition::new(id, indices.iter().map(|&i| FileRef::new("t", i)), freq)
    }

    fn total_files_covered(parts: &[Partition]) -> BTreeSet<FileRef> {
        parts.iter().flat_map(|p| p.files.iter().cloned()).collect()
    }

    #[test]
    fn highly_overlapping_partitions_are_merged() {
        let c = catalog(10);
        let initial = vec![
            partition(0, &[0, 1, 2, 3], 2.0),
            partition(1, &[1, 2, 3, 4], 2.0),
            partition(2, &[7, 8], 2.0),
        ];
        let merged = gpart_merge(&initial, &c, &MergeConfig::default()).unwrap();
        // The first two share 3 of 5 files and merge; the third is disjoint.
        assert_eq!(merged.len(), 2);
        let sizes: Vec<usize> = merged.iter().map(|p| p.file_count()).collect();
        assert!(sizes.contains(&5));
        assert!(sizes.contains(&2));
        // Coverage is preserved.
        assert_eq!(total_files_covered(&initial), total_files_covered(&merged));
    }

    #[test]
    fn incompatible_frequencies_block_merging() {
        let c = catalog(10);
        let initial = vec![
            partition(0, &[0, 1, 2], 1.0),
            partition(1, &[0, 1, 2], 100.0), // identical files, wildly different frequency
        ];
        let config = MergeConfig {
            frequency_ratio: 2.0,
            frequency_abs_diff: 5.0,
            ..Default::default()
        };
        let merged = gpart_merge(&initial, &c, &config).unwrap();
        assert_eq!(
            merged.len(),
            2,
            "incompatible partitions must stay separate"
        );
        // Relaxing the constraint merges them.
        let relaxed = MergeConfig {
            frequency_ratio: 1000.0,
            ..config
        };
        assert_eq!(gpart_merge(&initial, &c, &relaxed).unwrap().len(), 1);
    }

    #[test]
    fn span_threshold_freezes_large_merges() {
        let c = catalog(30);
        // A chain of overlapping partitions that would all merge into one
        // without the threshold.
        let initial: Vec<Partition> = (0..10)
            .map(|i| partition(i, &[i, i + 1, i + 2], 1.0))
            .collect();
        let unbounded = gpart_merge(&initial, &c, &MergeConfig::default()).unwrap();
        assert_eq!(unbounded.len(), 1);
        let bounded = gpart_merge(
            &initial,
            &c,
            &MergeConfig {
                span_threshold: 6.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(bounded.len() > 1);
        // No merged partition wildly exceeds the threshold (a single merge
        // step can overshoot, but growth stops there).
        for p in &bounded {
            assert!(p.span(&c).unwrap() <= 6.0 + 5.0);
        }
        assert_eq!(total_files_covered(&initial), total_files_covered(&bounded));
    }

    #[test]
    fn merging_reduces_duplicated_space() {
        let c = catalog(20);
        // Heavy overlap: 8 partitions all sharing a hot core of files.
        let initial: Vec<Partition> = (0..8)
            .map(|i| {
                let mut files = vec![0, 1, 2, 3];
                files.push(4 + i);
                partition(i, &files, 2.0)
            })
            .collect();
        let merged = gpart_merge(&initial, &c, &MergeConfig::default()).unwrap();
        let space_before: f64 = initial.iter().map(|p| p.span(&c).unwrap()).sum();
        let space_after: f64 = merged.iter().map(|p| p.span(&c).unwrap()).sum();
        assert!(space_after < space_before);
    }

    #[test]
    fn disjoint_partitions_are_untouched() {
        let c = catalog(12);
        let initial = vec![
            partition(0, &[0, 1], 1.0),
            partition(1, &[4, 5], 1.0),
            partition(2, &[8, 9], 1.0),
        ];
        let merged = gpart_merge(&initial, &c, &MergeConfig::default()).unwrap();
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn empty_input_and_bad_config() {
        let c = catalog(3);
        assert!(gpart_merge(&[], &c, &MergeConfig::default())
            .unwrap()
            .is_empty());
        assert!(gpart_merge(
            &[partition(0, &[0], 1.0)],
            &c,
            &MergeConfig {
                frequency_ratio: 0.5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(gpart_merge(
            &[partition(0, &[0], 1.0)],
            &c,
            &MergeConfig {
                span_threshold: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn unknown_file_is_reported() {
        let c = catalog(2);
        let bad = vec![Partition::new(0, [FileRef::new("missing", 0)], 1.0)];
        assert!(matches!(
            gpart_merge(&bad, &c, &MergeConfig::default()),
            Err(DataPartError::UnknownFile(_))
        ));
    }

    #[test]
    fn frequency_compatibility_rules() {
        let cfg = MergeConfig {
            frequency_ratio: 3.0,
            frequency_abs_diff: 5.0,
            ..Default::default()
        };
        assert!(cfg.frequencies_compatible(10.0, 20.0)); // ratio 2 <= 3
        assert!(cfg.frequencies_compatible(100.0, 104.0)); // diff 4 <= 5
        assert!(!cfg.frequencies_compatible(1.0, 100.0));
        assert!(cfg.frequencies_compatible(0.0, 3.0)); // diff rule saves zero-frequency
        assert!(!cfg.frequencies_compatible(0.0, 50.0));
    }
}
