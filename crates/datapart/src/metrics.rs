//! Partitioning quality metrics and the no-merge / merge-all baselines.
//!
//! Fig 7 of the paper compares three points per table: (i) no merging (keep
//! every query family's file set as its own partition), (ii) G-PART, and
//! (iii) merging all partitions of a table into one. The two axes are
//! *duplication* (how much data is stored more than once across partitions)
//! and the increase in expected *read cost* caused by merging.

use crate::error::DataPartError;
use crate::partition::{FileCatalog, Partition};
use scope_workload::FileRef;
use std::collections::BTreeSet;

/// Aggregate metrics of a partitioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitioningMetrics {
    /// Number of final partitions.
    pub n_partitions: usize,
    /// Total stored space (sum of partition spans; overlap across partitions
    /// is counted every time it is stored).
    pub total_space: f64,
    /// Space of the distinct files referenced by any partition.
    pub distinct_space: f64,
    /// Duplication `1 − distinct/total` (0 = no file stored twice).
    pub duplication: f64,
    /// Total expected read cost `Σ Sp(M)·ρ(M)`.
    pub read_cost: f64,
}

/// Compute the metrics of a set of partitions.
pub fn evaluate(
    partitions: &[Partition],
    catalog: &FileCatalog,
) -> Result<PartitioningMetrics, DataPartError> {
    let mut total_space = 0.0;
    let mut read_cost = 0.0;
    let mut distinct: BTreeSet<&FileRef> = BTreeSet::new();
    for p in partitions {
        total_space += p.span(catalog)?;
        read_cost += p.read_cost(catalog)?;
        distinct.extend(p.files.iter());
    }
    let distinct_space = catalog.span_of(distinct)?;
    let duplication = if total_space > 0.0 {
        1.0 - distinct_space / total_space
    } else {
        0.0
    };
    Ok(PartitioningMetrics {
        n_partitions: partitions.len(),
        total_space,
        distinct_space,
        duplication,
        read_cost,
    })
}

/// The "no merging" baseline: every initial partition stays as it is.
pub fn no_merge(initial: &[Partition]) -> Vec<Partition> {
    initial.to_vec()
}

/// The "merge all" baseline: all initial partitions are collapsed into a
/// single partition (per call), summing frequencies.
pub fn merge_all(initial: &[Partition]) -> Vec<Partition> {
    if initial.is_empty() {
        return Vec::new();
    }
    let mut merged = initial[0].clone();
    for p in &initial[1..] {
        merged = merged.merge(p, 0);
    }
    merged.id = 0;
    vec![merged]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpart::{gpart_merge, MergeConfig};

    fn catalog() -> FileCatalog {
        FileCatalog::uniform(&[("t", 20, 1.0)])
    }

    fn partition(id: usize, indices: &[usize], freq: f64) -> Partition {
        Partition::new(id, indices.iter().map(|&i| FileRef::new("t", i)), freq)
    }

    fn overlapping_initial() -> Vec<Partition> {
        (0..6)
            .map(|i| {
                let files: Vec<usize> = (0..4).map(|j| i + j).collect();
                partition(i, &files, 2.0)
            })
            .collect()
    }

    #[test]
    fn metrics_of_disjoint_partitions_have_zero_duplication() {
        let c = catalog();
        let parts = vec![partition(0, &[0, 1], 1.0), partition(1, &[5, 6], 2.0)];
        let m = evaluate(&parts, &c).unwrap();
        assert_eq!(m.n_partitions, 2);
        assert_eq!(m.total_space, 4.0);
        assert_eq!(m.distinct_space, 4.0);
        assert_eq!(m.duplication, 0.0);
        assert_eq!(m.read_cost, 2.0 + 4.0);
    }

    #[test]
    fn duplication_reflects_shared_files() {
        let c = catalog();
        let parts = vec![partition(0, &[0, 1, 2], 1.0), partition(1, &[1, 2, 3], 1.0)];
        let m = evaluate(&parts, &c).unwrap();
        assert_eq!(m.total_space, 6.0);
        assert_eq!(m.distinct_space, 4.0);
        assert!((m.duplication - (1.0 - 4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn fig7_ordering_no_merge_vs_gpart_vs_merge_all() {
        // The qualitative shape of Fig 7: no-merge has the highest
        // duplication but the lowest read cost; merge-all has zero
        // duplication but the highest read cost; G-PART sits in between on
        // both axes (a good trade-off).
        let c = catalog();
        let initial = overlapping_initial();
        let nm = evaluate(&no_merge(&initial), &c).unwrap();
        let gp = evaluate(
            &gpart_merge(&initial, &c, &MergeConfig::default()).unwrap(),
            &c,
        )
        .unwrap();
        let ma = evaluate(&merge_all(&initial), &c).unwrap();

        assert!(nm.duplication >= gp.duplication);
        assert!(gp.duplication >= ma.duplication);
        assert_eq!(ma.duplication, 0.0);

        assert!(nm.read_cost <= gp.read_cost + 1e-9);
        assert!(gp.read_cost <= ma.read_cost + 1e-9);

        assert!(nm.n_partitions >= gp.n_partitions);
        assert!(gp.n_partitions >= ma.n_partitions);
        assert_eq!(ma.n_partitions, 1);
    }

    #[test]
    fn merge_all_sums_frequencies_and_covers_all_files() {
        let initial = overlapping_initial();
        let merged = merge_all(&initial);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].frequency, 12.0);
        assert_eq!(merged[0].file_count(), 9); // files 0..=8
        assert!(merge_all(&[]).is_empty());
    }

    #[test]
    fn empty_partitioning_metrics() {
        let c = catalog();
        let m = evaluate(&[], &c).unwrap();
        assert_eq!(m.n_partitions, 0);
        assert_eq!(m.total_space, 0.0);
        assert_eq!(m.duplication, 0.0);
    }
}
