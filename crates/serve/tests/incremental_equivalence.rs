//! Property tests pinning the incremental serving path to the batch
//! oracle: after any random sequence of heat-delta batches, the
//! incremental re-solve equals a from-scratch solve of the final state
//! bit-for-bit, and the account-sharded fan-out is thread-count
//! independent.

use proptest::prelude::*;
use scope_cloudsim::{BillingEvent, TierCatalog, TierId};
use scope_serve::{reference, CompressionOption, ServeConfig, ServeEngine, ServeObject};

fn schemes() -> Vec<CompressionOption> {
    vec![
        CompressionOption::none(),
        CompressionOption::new("gzip", 3.5, 1.5),
        CompressionOption::new("zstd", 2.4, 0.35),
    ]
}

fn build_engine(accounts: usize, per_account: usize, config: ServeConfig) -> ServeEngine {
    let mut engine = ServeEngine::new(TierCatalog::azure_hot_cool_archive(), schemes(), config)
        .expect("engine config is valid");
    for a in 0..accounts {
        for o in 0..per_account {
            let gid = a * per_account + o;
            let mut spec = ServeObject::new(
                format!("obj-{a}-{o}"),
                format!("acct-{a}"),
                0.8 + gid as f64 * 0.53,
                TierId(gid % 2),
            )
            .with_residency_days((gid as u32 * 17) % 190);
            if gid % 4 == 0 {
                spec = spec.with_latency_threshold(2.0);
            }
            engine.register(spec).expect("registration is valid");
        }
    }
    engine
}

/// Deterministic trace from a seed: `events_per_day` accesses per day with
/// a skew toward low object ids, ~10% writes.
fn seeded_trace(
    engine: &ServeEngine,
    days: u32,
    events_per_day: u32,
    mut seed: u64,
) -> Vec<BillingEvent> {
    let mut draw = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let n = engine.len() as u32;
    let mut events = Vec::new();
    for day in 0..days {
        for _ in 0..events_per_day {
            let r = draw() % n;
            let id = (u64::from(r) * u64::from(r) / u64::from(n)) as u32;
            let name = engine
                .object_name(id.min(n - 1))
                .expect("id in range")
                .to_string();
            let volume = 0.02 + f64::from(draw() % 128) / 100.0;
            if draw() % 10 == 0 {
                events.push(BillingEvent::write(name, day, volume));
            } else {
                events.push(BillingEvent::read(name, day, volume));
            }
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batch boundaries, trace seeds and fleet shapes: on every
    /// epoch the incremental outcome must equal the cold reference solve
    /// of the same state — choices exactly, objectives bit-for-bit.
    #[test]
    fn incremental_equals_from_scratch_after_random_batches(
        accounts in 1usize..4,
        per_account in 2usize..9,
        epoch_lengths in proptest::collection::vec(1u32..25, 2..7),
        events_per_day in 5u32..40,
        seed in 0u64..1_000_000_000,
    ) {
        let mut engine = build_engine(accounts, per_account, ServeConfig::default());
        let days: u32 = epoch_lengths.iter().sum();
        let events = seeded_trace(&engine, days, events_per_day, seed);
        let columns = engine.columns_from_events(&events);

        let mut day = 0u32;
        for (epoch, &len) in epoch_lengths.iter().enumerate() {
            let batch = columns.filter_day_range(day, day + len);
            engine.ingest(&batch);
            day += len;
            engine.advance(day);

            let cold = reference::full_resolve(&engine).expect("reference solve");
            let outcome = engine.reoptimize().expect("incremental solve");

            prop_assert_eq!(outcome.accounts.len(), cold.len());
            for (inc, full) in outcome.accounts.iter().zip(&cold) {
                prop_assert_eq!(&inc.account, &full.account, "epoch {}", epoch);
                prop_assert_eq!(
                    &inc.assignment.choices,
                    &full.assignment.choices,
                    "epoch {}: choices diverged for {}",
                    epoch,
                    inc.account
                );
                prop_assert_eq!(
                    inc.assignment.objective.to_bits(),
                    full.assignment.objective.to_bits(),
                    "epoch {}: objective bits diverged for {}",
                    epoch,
                    inc.account
                );
            }
            prop_assert_eq!(
                outcome.total_objective.to_bits(),
                reference::total_objective(&cold).to_bits(),
                "epoch {}: totals diverged",
                epoch
            );
        }
    }

    /// The account-sharded fan-out merges in account order: any thread
    /// count must produce the sequential outcome bit-for-bit.
    #[test]
    fn sharded_resolve_is_thread_count_independent(
        accounts in 2usize..5,
        per_account in 2usize..7,
        threads in 2usize..9,
        events_per_day in 5u32..30,
        seed in 0u64..1_000_000_000,
    ) {
        let sequential_cfg = ServeConfig { threads: 1, ..ServeConfig::default() };
        let parallel_cfg = ServeConfig { threads, ..ServeConfig::default() };
        let mut sequential = build_engine(accounts, per_account, sequential_cfg);
        let mut parallel = build_engine(accounts, per_account, parallel_cfg);

        let events = seeded_trace(&sequential, 45, events_per_day, seed);
        let columns = sequential.columns_from_events(&events);
        for epoch in 0..3u32 {
            let batch = columns.filter_day_range(epoch * 15, epoch * 15 + 15);
            sequential.ingest(&batch);
            parallel.ingest(&batch);
            sequential.advance(epoch * 15 + 15);
            parallel.advance(epoch * 15 + 15);

            let a = sequential.reoptimize().expect("sequential solve");
            let b = parallel.reoptimize().expect("parallel solve");
            prop_assert_eq!(a.total_objective.to_bits(), b.total_objective.to_bits());
            prop_assert_eq!(a.rows_patched, b.rows_patched);
            prop_assert_eq!(a.retier_decisions, b.retier_decisions);
            for (x, y) in a.accounts.iter().zip(&b.accounts) {
                prop_assert_eq!(&x.assignment.choices, &y.assignment.choices);
            }
        }
    }
}
