//! Preserved full-resolve path: the batch oracle the incremental engine
//! is pinned against.
//!
//! [`full_resolve`] re-solves every account shard cold — a from-scratch
//! [`CostTable`](scope_optassign::CostTable) build and a fresh greedy (or
//! branch-and-bound) solve over the engine's *current* bucketed heat
//! state — exactly what a batch deployment of the optimizer would do each
//! epoch. The differential tests and `serve_bench` assert that
//! [`ServeEngine::reoptimize`](crate::ServeEngine::reoptimize) reproduces
//! this bit-for-bit on every epoch; the incremental path earns its speedup
//! purely by skipping work, never by approximating.

use scope_optassign::{solve_branch_and_bound, solve_greedy};

use crate::engine::{AccountAssignment, ServeEngine};
use crate::error::ServeError;

/// Cold from-scratch solve of every account shard, in account order,
/// over the engine's current state. The engine itself is untouched: no
/// tables are patched, no placements applied, no dirty rows consumed.
pub fn full_resolve(engine: &ServeEngine) -> Result<Vec<AccountAssignment>, ServeError> {
    let mut accounts = Vec::new();
    for shard in engine.shards() {
        let assignment = match engine.config().node_budget {
            None => solve_greedy(&shard.problem)?,
            Some(budget) => solve_branch_and_bound(&shard.problem, budget)?.0,
        };
        accounts.push(AccountAssignment {
            account: shard.account.clone(),
            assignment,
            stale: false,
        });
    }
    Ok(accounts)
}

/// Total objective across account assignments, summed in account order —
/// the same order the incremental merge uses, so totals from both paths
/// are bit-comparable.
pub fn total_objective(accounts: &[AccountAssignment]) -> f64 {
    accounts.iter().map(|a| a.assignment.objective).sum()
}
