//! Incremental serving engine over the streaming billing loop.
//!
//! The optimizer crates below this one are batch-only: every solve builds
//! a dense [`scope_optassign::CostTable`], solves, and discards — fine for
//! a one-shot experiment, useless for the north-star of re-optimizing
//! millions of objects as access events stream in. This crate is the
//! long-running form:
//!
//! * [`ServeEngine`] holds per-object state — interned id, current
//!   `tier + compression` placement, and a heat counter with day-bucketed
//!   exponential decay — grouped into per-account shards.
//! * [`ServeEngine::ingest`] folds [`scope_cloudsim::EventColumns`]
//!   batches into per-object heat deltas in bounded memory (no event is
//!   retained), counting out-of-horizon events exactly as the billing
//!   engine's `dropped_events` does.
//! * [`ServeEngine::advance`] decays heat to the epoch boundary and
//!   re-buckets it geometrically; only objects whose heat crossed a bucket
//!   boundary are marked dirty.
//! * [`ServeEngine::reoptimize`] re-solves incrementally: dirty rows are
//!   re-evaluated in place with [`scope_optassign::CostTable::patch_rows`]
//!   (bit-identical to a from-scratch build), the greedy choice is
//!   recomputed for exactly those rows (or a warm-started branch-and-bound
//!   is seeded from the incumbent), and account shards fan out over the
//!   deterministic [`scope_cloudsim::parallel`] primitives with an
//!   in-order merge — the outcome is bit-for-bit identical for any thread
//!   count.
//! * [`reference::full_resolve`] is the preserved batch path: a cold
//!   from-scratch solve over the same state, pinned bit-for-bit equal to
//!   the incremental path by the differential tests and in-process by
//!   `serve_bench` before any timing runs.

#![warn(missing_docs)]

pub mod engine;
pub mod reference;

mod error;

pub use engine::{
    AccountAssignment, IngestReport, ResolveOutcome, ServeConfig, ServeEngine, ServeObject,
};
pub use error::ServeError;

// The vocabulary types callers need to drive the engine, re-exported so
// downstream crates don't have to depend on the optimizer directly.
pub use scope_optassign::{Assignment, CompressionOption};
