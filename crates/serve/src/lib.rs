//! Incremental serving engine over the streaming billing loop.
//!
//! The optimizer crates below this one are batch-only: every solve builds
//! a dense [`scope_optassign::CostTable`], solves, and discards — fine for
//! a one-shot experiment, useless for the north-star of re-optimizing
//! millions of objects as access events stream in. This crate is the
//! long-running form:
//!
//! * [`ServeEngine`] holds per-object state — interned id, current
//!   `tier + compression` placement, and a heat counter with day-bucketed
//!   exponential decay — grouped into per-account shards.
//! * [`ServeEngine::ingest`] folds [`scope_cloudsim::EventColumns`]
//!   batches into per-object heat deltas in bounded memory (no event is
//!   retained), counting out-of-horizon events exactly as the billing
//!   engine's `dropped_events` does.
//! * [`ServeEngine::advance`] decays heat to the epoch boundary and
//!   re-buckets it geometrically; only objects whose heat crossed a bucket
//!   boundary are marked dirty.
//! * [`ServeEngine::reoptimize`] re-solves incrementally: dirty rows are
//!   re-evaluated in place with [`scope_optassign::CostTable::patch_rows`]
//!   (bit-identical to a from-scratch build), the greedy choice is
//!   recomputed for exactly those rows (or a warm-started branch-and-bound
//!   is seeded from the incumbent), and account shards fan out over the
//!   deterministic [`scope_cloudsim::parallel`] primitives with an
//!   in-order merge — the outcome is bit-for-bit identical for any thread
//!   count.
//! * [`reference::full_resolve`] is the preserved batch path: a cold
//!   from-scratch solve over the same state, pinned bit-for-bit equal to
//!   the incremental path by the differential tests and in-process by
//!   `serve_bench` before any timing runs.
//!
//! # Failure model
//!
//! The engine is built to keep serving — deterministically — under three
//! classes of fault, each with an *exact* recovery contract (exercised by
//! the `scope-faults` plans, the `tests/integration_chaos.rs` suite, and
//! in-process by `chaos_bench` before any timing):
//!
//! * **Malformed intake.** [`ServeEngine::ingest`] validates every event:
//!   out-of-horizon events are dropped (counted in `dropped_events`,
//!   mirroring the billing engine), NaN and negative volumes are diverted
//!   into the typed, bounded [`QuarantineLedger`] instead of poisoning
//!   heat, and torn batches (parallel columns of unequal length) ingest
//!   their common prefix with the lost tail counted. Decisions are made
//!   strictly in event order — drop first, then quarantine, then
//!   unknown-object skip — so a batch stream produces the identical
//!   ledger however it is split. [`ServeEngine::ingest_sequenced`] adds
//!   producer-assigned sequence numbers with a bounded reorder buffer:
//!   duplicated and locally reordered deliveries fold exactly once, and
//!   overflow is a typed [`ServeError::IntakeOverflow`], never silent
//!   loss.
//! * **Compute faults.** [`ServeEngine::reoptimize_with_faults`] accepts
//!   per-shard fault injections ([`ShardFault`]: solver failure or
//!   deadline overrun). A faulted shard serves its stored incumbent
//!   placement verbatim — marked stale, objective bits unchanged — and
//!   retries after a bounded, deterministic exponential backoff counted
//!   in epochs (0, 1, 3, then 7 skipped epochs). Its dirty-row worklist
//!   is preserved across failures, so the first healthy re-solve
//!   re-converges to exactly the placement the cold reference computes
//!   from the same state. Healthy shards are never affected: the fan-out
//!   merges per-shard results in shard order.
//! * **Crashes.** [`ServeEngine::checkpoint`] serializes the complete
//!   dynamic state (interned ids, placements, heat, degraded-shard state,
//!   quarantine ledger, reorder buffer) into a versioned, checksummed
//!   image (see [`checkpoint`] for the wire format and versioning rules).
//!   [`ServeEngine::restore`] + replay of the surviving batches is
//!   bit-for-bit equal to never having crashed — checkpoints compare as
//!   raw bytes. Corrupt, truncated, or mismatched images are typed
//!   [`ServeError::Checkpoint`] errors, never panics.
//!
//! # Durability and recovery
//!
//! [`JournaledEngine`] (see [`journal`]) closes the crash story end to
//! end: every accepted batch is appended to a segmented, CRC-framed
//! write-ahead journal (`scope-wal`) *before* it mutates engine state,
//! synced at epoch boundaries, and checkpoints are published atomically
//! through the same storage with covered segments retired.
//! [`JournaledEngine::recover`] is the single recovery protocol — newest
//! valid checkpoint (walking back past corrupt ones), truncate the torn
//! tail, quarantine corrupt interior records with typed errors, replay
//! the tail through the validating intake — and is pinned bit-for-bit
//! equal to a never-crashed engine across fuzzed crash points and seeded
//! storage faults by `tests/integration_recovery.rs` and, in-process
//! before any timing, by `recovery_bench`.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod journal;
pub mod quarantine;
pub mod reference;

mod error;

pub use engine::{
    AccountAssignment, IngestReport, ResolveOutcome, ServeConfig, ServeEngine, ServeObject,
    ShardFault,
};
pub use error::ServeError;
pub use journal::{JournaledEngine, RecoveryReport};
pub use quarantine::{QuarantineLedger, QuarantineReason, QuarantinedEvent};

// The vocabulary types callers need to drive the engine, re-exported so
// downstream crates don't have to depend on the optimizer directly.
pub use scope_optassign::{Assignment, CompressionOption};
