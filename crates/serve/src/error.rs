//! Error type for the serving engine.

use std::fmt;

use scope_optassign::OptAssignError;
use scope_wal::WalError;

/// Errors produced by the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The [`crate::ServeConfig`] is malformed (bad decay, bucket base, ...).
    InvalidConfig(String),
    /// An object registration is malformed (bad size, unknown tier or
    /// compression scheme, ...).
    InvalidObject(String),
    /// An object with the same name is already registered.
    DuplicateObject(String),
    /// A re-solve failed inside the assignment optimizer.
    Solver(OptAssignError),
    /// The sequenced-intake reorder buffer is full: too many out-of-order
    /// batches are pending ahead of the next expected sequence number.
    IntakeOverflow {
        /// Sequence number the engine is waiting for.
        expected_seq: u64,
        /// Sequence number of the batch that did not fit.
        got_seq: u64,
    },
    /// A checkpoint could not be decoded or does not match this engine's
    /// catalog/scheme configuration (bad magic, unsupported version,
    /// checksum mismatch, truncated payload, fingerprint mismatch).
    Checkpoint(String),
    /// The write-ahead intake journal failed (storage I/O, corrupt frame,
    /// unrecoverable store). See [`scope_wal::WalError`].
    Wal(WalError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::InvalidObject(msg) => write!(f, "invalid object: {msg}"),
            ServeError::DuplicateObject(name) => {
                write!(f, "object {name:?} is already registered")
            }
            ServeError::Solver(err) => write!(f, "re-solve failed: {err}"),
            ServeError::IntakeOverflow {
                expected_seq,
                got_seq,
            } => write!(
                f,
                "intake reorder buffer full: waiting for batch {expected_seq}, \
                 cannot buffer batch {got_seq}"
            ),
            ServeError::Checkpoint(msg) => write!(f, "invalid checkpoint: {msg}"),
            ServeError::Wal(err) => write!(f, "intake journal: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<OptAssignError> for ServeError {
    fn from(err: OptAssignError) -> Self {
        ServeError::Solver(err)
    }
}

impl From<WalError> for ServeError {
    fn from(err: WalError) -> Self {
        ServeError::Wal(err)
    }
}
