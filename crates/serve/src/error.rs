//! Error type for the serving engine.

use std::fmt;

use scope_optassign::OptAssignError;

/// Errors produced by the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The [`crate::ServeConfig`] is malformed (bad decay, bucket base, ...).
    InvalidConfig(String),
    /// An object registration is malformed (bad size, unknown tier or
    /// compression scheme, ...).
    InvalidObject(String),
    /// An object with the same name is already registered.
    DuplicateObject(String),
    /// A re-solve failed inside the assignment optimizer.
    Solver(OptAssignError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::InvalidObject(msg) => write!(f, "invalid object: {msg}"),
            ServeError::DuplicateObject(name) => {
                write!(f, "object {name:?} is already registered")
            }
            ServeError::Solver(err) => write!(f, "re-solve failed: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<OptAssignError> for ServeError {
    fn from(err: OptAssignError) -> Self {
        ServeError::Solver(err)
    }
}
