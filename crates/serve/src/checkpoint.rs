//! Versioned, checksummed checkpoint format for [`crate::ServeEngine`].
//!
//! A checkpoint captures **all** of an engine's dynamic state — interned
//! objects, applied placements, heat counters, per-shard degraded-mode
//! state (failures, backoff, incumbent assignment, dirty worklist), the
//! quarantine ledger, and the sequenced-intake reorder buffer — such that
//! a crash-restarted engine restored from the checkpoint and replayed
//! forward over the surviving event stream is **bit-for-bit** equal to an
//! engine that never crashed (the chaos differential suites compare the
//! two engines' subsequent checkpoints byte-for-byte). The only state not
//! captured is the dense cost table: it is a pure cache, and a cold
//! rebuild is pinned bit-identical to the warm patched table, so the first
//! post-restore epoch re-derives it (reported `rows_patched` is the one
//! counter allowed to differ).
//!
//! ## Wire layout (version 1)
//!
//! ```text
//! magic   b"SCPK"                      (4 bytes)
//! version u32 little-endian            (currently 1)
//! payload                              (engine state, see below)
//! checksum u64 little-endian           (FNV-1a over magic..payload)
//! ```
//!
//! Everything is little-endian. `f64`s are stored as their raw IEEE-754
//! bits (so NaN payloads and signed zeros round-trip exactly); strings are
//! length-prefixed UTF-8. The payload leads with a **fingerprint**: an
//! FNV-1a digest of the tier catalog and compression-scheme list the
//! checkpoint was taken under. [`crate::ServeEngine::restore`] recomputes
//! the fingerprint from the catalog/schemes it is given and rejects a
//! mismatch with [`crate::ServeError::Checkpoint`] — restoring placements
//! against different prices would silently corrupt every later re-solve.
//!
//! ## Versioning rules
//!
//! The version is bumped on **any** layout change; readers reject versions
//! they do not know (no silent best-effort decodes). Corruption anywhere —
//! flipped bits, truncation, trailing garbage — fails the checksum or a
//! bounds check and surfaces as a typed error, never a panic.

use scope_cloudsim::TierCatalog;
use scope_optassign::CompressionOption;

use crate::error::ServeError;

/// Magic bytes every checkpoint leads with.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SCPK";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest of `bytes`.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Little-endian byte writer for checkpoint payloads.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION);
        w
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append the trailing checksum and return the finished bytes.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.buf);
        self.u64(checksum);
        self.buf
    }
}

/// Bounds-checked little-endian reader over a checkpoint payload.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Validate magic, version and checksum; return a reader positioned at
    /// the start of the payload (the checksum trailer is excluded).
    pub(crate) fn open(bytes: &'a [u8]) -> Result<Self, ServeError> {
        let header = CHECKPOINT_MAGIC.len() + 4;
        if bytes.len() < header + 8 {
            return Err(ServeError::Checkpoint(format!(
                "too short: {} bytes cannot hold a header and checksum",
                bytes.len()
            )));
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(ServeError::Checkpoint(
                "bad magic: not a serve checkpoint".into(),
            ));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut trailer = [0u8; 8];
        trailer.copy_from_slice(&bytes[bytes.len() - 8..]);
        let stored = u64::from_le_bytes(trailer);
        let actual = fnv1a(body);
        if stored != actual {
            return Err(ServeError::Checkpoint(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }
        let mut reader = Reader {
            bytes: body,
            pos: CHECKPOINT_MAGIC.len(),
        };
        let version = reader.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(ServeError::Checkpoint(format!(
                "unsupported version {version} (this build reads {CHECKPOINT_VERSION})"
            )));
        }
        Ok(reader)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.pos + n > self.bytes.len() {
            return Err(ServeError::Checkpoint(format!(
                "truncated payload: wanted {n} bytes at offset {}, only {} remain",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ServeError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ServeError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn f64_bits(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length that will index a Vec: rejects anything that cannot even
    /// fit in the remaining payload, so a corrupt length cannot trigger a
    /// huge allocation.
    pub(crate) fn len(&mut self, elem_bytes: usize) -> Result<usize, ServeError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n.saturating_mul(elem_bytes.max(1) as u64) > remaining {
            return Err(ServeError::Checkpoint(format!(
                "implausible length {n} at offset {}: only {remaining} payload bytes remain",
                self.pos
            )));
        }
        Ok(n as usize)
    }

    pub(crate) fn str(&mut self) -> Result<String, ServeError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::Checkpoint("string is not valid UTF-8".into()))
    }

    /// Error unless the payload was consumed exactly.
    pub(crate) fn expect_end(&self) -> Result<(), ServeError> {
        if self.pos != self.bytes.len() {
            return Err(ServeError::Checkpoint(format!(
                "{} trailing payload bytes after decode",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// FNV-1a fingerprint of the catalog + compression-scheme configuration a
/// checkpoint is only valid under. Covers every field that feeds pricing
/// or feasibility; restoring under a different configuration is rejected.
pub(crate) fn config_fingerprint(catalog: &TierCatalog, schemes: &[CompressionOption]) -> u64 {
    let mut w = Writer::default();
    w.u64(catalog.len() as u64);
    for (_, tier) in catalog.iter() {
        w.str(&tier.name);
        w.f64_bits(tier.storage_cost_cents_per_gb_month);
        w.f64_bits(tier.read_cost_cents_per_gb);
        w.f64_bits(tier.write_cost_cents_per_gb);
        w.f64_bits(tier.ttfb_seconds);
        w.u32(tier.early_deletion_days);
        match tier.capacity_gb {
            None => w.u8(0),
            Some(cap) => {
                w.u8(1);
                w.f64_bits(cap);
            }
        }
    }
    w.f64_bits(catalog.compute_cost_cents_per_second);
    w.u64(schemes.len() as u64);
    for s in schemes {
        w.str(&s.name);
        w.f64_bits(s.ratio);
        w.f64_bits(s.decompress_seconds);
    }
    fnv1a(&w.buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip_and_checksum() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.f64_bits(-0.0);
        w.f64_bits(f64::NAN);
        w.str("héllo");
        let bytes = w.finish();

        let mut r = Reader::open(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64_bits().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64_bits().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn corruption_truncation_and_bad_headers_are_typed_errors() {
        let mut w = Writer::new();
        w.str("payload");
        let good = w.finish();

        // Flip one payload bit: checksum must catch it.
        let mut flipped = good.clone();
        flipped[9] ^= 0x40;
        assert!(matches!(
            Reader::open(&flipped),
            Err(ServeError::Checkpoint(_))
        ));

        // Truncation (drops the trailer or part of it).
        for cut in [0, 3, good.len() - 1] {
            assert!(matches!(
                Reader::open(&good[..cut]),
                Err(ServeError::Checkpoint(_))
            ));
        }

        // Wrong magic.
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(matches!(
            Reader::open(&magic),
            Err(ServeError::Checkpoint(_))
        ));

        // Unknown version (re-checksummed so only the version check fires).
        let mut vers = good.clone();
        vers[4] = 99;
        let body_len = vers.len() - 8;
        let sum = fnv1a(&vers[..body_len]).to_le_bytes();
        vers[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            Reader::open(&vers),
            Err(ServeError::Checkpoint(_))
        ));

        // A corrupt length cannot demand a giant allocation.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let huge = w.finish();
        let mut r = Reader::open(&huge).unwrap();
        assert!(matches!(r.len(8), Err(ServeError::Checkpoint(_))));
    }

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let catalog = TierCatalog::azure_hot_cool_archive();
        let schemes = vec![
            CompressionOption::none(),
            CompressionOption::new("gzip", 3.5, 1.5),
        ];
        let base = config_fingerprint(&catalog, &schemes);
        assert_eq!(base, config_fingerprint(&catalog, &schemes));

        let fewer = vec![CompressionOption::none()];
        assert_ne!(base, config_fingerprint(&catalog, &fewer));

        let mut tweaked = schemes.clone();
        tweaked[1].ratio = 3.6;
        assert_ne!(base, config_fingerprint(&catalog, &tweaked));
    }
}
