//! Journaled mode: the serving engine behind a durable write-ahead
//! intake journal, with end-to-end crash recovery.
//!
//! # Durability and recovery
//!
//! [`JournaledEngine`] wraps a [`ServeEngine`] and a
//! [`scope_wal::Journal`] over any [`Storage`] backend, and enforces the
//! write-ahead discipline:
//!
//! * **Append before fold.** Every delivered batch — including
//!   duplicates and out-of-order arrivals — is appended to the journal
//!   *before* [`ServeEngine::ingest_sequenced`] sees it. The journal is
//!   therefore a verbatim log of the delivery stream, and replaying it
//!   re-runs the exact call sequence: heat bits, the reorder buffer, the
//!   quarantine ledger and even the `duplicate_batches` counter evolve
//!   bit-identically.
//! * **Sync at epoch boundaries.** [`JournaledEngine::advance`] appends
//!   an epoch-boundary marker record and syncs the journal before the
//!   engine advances, so a crash can only lose deliveries of the current
//!   (unfinished) epoch — which the producer re-delivers from the
//!   recovered position. The marker matters when *both* retained
//!   checkpoints are lost: the boundary's decay and re-solve are engine
//!   effects the journal cannot replay, so recovery cuts its replay tail
//!   at the first marker instead of replaying deliveries across the
//!   boundary, and the producer re-runs the boundary itself.
//! * **Atomic checkpoints, retired segments.**
//!   [`JournaledEngine::checkpoint_durable`] publishes the engine's
//!   versioned, checksummed snapshot through the journal's atomic
//!   write-temp + rename path, then retires segments the snapshot
//!   covers (keeping enough history to walk back past one corrupt
//!   checkpoint). The caller's `marker` — its position in the replay
//!   schedule — rides in the checkpoint frame so the harness can tell a
//!   snapshot taken after an epoch's re-solve from one taken before it.
//!
//! **Recovery is one protocol**, [`JournaledEngine::recover`]: load the
//! newest checkpoint that passes both the frame CRC and
//! [`ServeEngine::restore`]'s own validation (walking back past corrupt
//! ones), truncate the journal's torn tail, quarantine corrupt interior
//! records with typed errors, then replay the surviving tail through the
//! validating sequenced intake. The [`RecoveryReport`] tells the
//! producer exactly how many deliveries the recovered state reflects
//! (`resume_deliveries`) and the last durable schedule position
//! (`marker`); re-delivering from there makes the recovered engine
//! bit-for-bit equal — heat bits, placements, objective bits, checkpoint
//! bytes — to an engine that never crashed, which `recovery_bench` and
//! the chaos suites assert in-process.

use crate::engine::{IngestReport, ResolveOutcome, ServeEngine, ShardFault};
use crate::error::ServeError;
use scope_cloudsim::{EventColumns, TierCatalog};
use scope_optassign::CompressionOption;
use scope_wal::{Journal, JournalConfig, Storage, WalRecoveryReport};

/// What a recovery run found and rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Deliveries reflected in the recovered engine state: the producer
    /// resumes the delivery stream after this many deliveries.
    pub resume_deliveries: u64,
    /// The surviving checkpoint's progress marker (0 when recovery
    /// started from scratch): the caller's last durably-completed
    /// position in its replay schedule.
    pub marker: u64,
    /// Tail records replayed through the validating intake.
    pub replayed: u64,
    /// True when no usable checkpoint survived and recovery rebuilt the
    /// engine from its freshly-registered state plus a full replay.
    pub started_fresh: bool,
    /// The journal-level accounting: torn bytes cut, corrupt frames and
    /// checkpoints quarantined (each with its typed error).
    pub wal: WalRecoveryReport,
}

/// A [`ServeEngine`] whose intake is write-ahead journaled through `S`.
#[derive(Debug)]
pub struct JournaledEngine<S: Storage> {
    engine: ServeEngine,
    journal: Journal<S>,
}

impl<S: Storage> JournaledEngine<S> {
    /// Put `engine` behind a fresh journal on empty `storage`. Fails if
    /// the storage already holds a journal (recover it instead) or the
    /// config is invalid.
    pub fn create(engine: ServeEngine, storage: S, cfg: JournalConfig) -> Result<Self, ServeError> {
        let journal = Journal::create(storage, cfg)?;
        Ok(JournaledEngine { engine, journal })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Total deliveries the journal has ever accepted (snapshot-covered
    /// plus live). The producer's position in the delivery stream.
    pub fn deliveries(&self) -> u64 {
        self.journal.appended()
    }

    /// Read access to the journal.
    pub fn journal(&self) -> &Journal<S> {
        &self.journal
    }

    /// Write-ahead sequenced intake: append the delivery to the journal,
    /// then fold it. An append or ingest error leaves the engine
    /// poisoned from the caller's point of view — treat it as a crash
    /// and run [`JournaledEngine::recover`].
    pub fn ingest_sequenced(
        &mut self,
        seq: u64,
        columns: &EventColumns,
    ) -> Result<IngestReport, ServeError> {
        self.journal.append(seq, columns)?;
        self.engine.ingest_sequenced(seq, columns)
    }

    /// Epoch boundary: journal a boundary marker, make every accepted
    /// delivery durable, then decay heat to `day`. The marker pins the
    /// boundary in the journal so recovery never replays deliveries
    /// across it — the decay/re-solve effects that happen here are not
    /// themselves journaled (see [`scope_wal::record::RECORD_EPOCH`]).
    pub fn advance(&mut self, day: u32) -> Result<(), ServeError> {
        self.journal.append_epoch(self.engine.epoch(), day)?;
        self.journal.sync()?;
        self.engine.advance(day);
        Ok(())
    }

    /// Durability barrier without advancing.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.journal.sync()?;
        Ok(())
    }

    /// Incremental re-solve (see [`ServeEngine::reoptimize`]).
    pub fn reoptimize(&mut self) -> Result<ResolveOutcome, ServeError> {
        self.engine.reoptimize()
    }

    /// Incremental re-solve under injected shard faults.
    pub fn reoptimize_with_faults(
        &mut self,
        faults: &[Option<ShardFault>],
    ) -> Result<ResolveOutcome, ServeError> {
        self.engine.reoptimize_with_faults(faults)
    }

    /// Publish a durable checkpoint of the engine through the journal's
    /// atomic path and retire covered segments. `marker` is the caller's
    /// progress position, stored in the frame and returned by recovery.
    pub fn checkpoint_durable(&mut self, marker: u64) -> Result<(), ServeError> {
        let snapshot = self.engine.checkpoint();
        self.journal.publish_checkpoint(&snapshot, marker)?;
        Ok(())
    }

    /// Simulate (or honor) a crash: drop all in-memory state, keeping
    /// only what the storage backend holds.
    pub fn crash(self) -> S {
        self.journal.into_storage()
    }

    /// The single recovery protocol (see the module docs). `fresh`
    /// builds the engine's initial state (catalog, schemes, registered
    /// objects) for the no-usable-checkpoint path — it must construct it
    /// exactly as the original run did.
    pub fn recover(
        storage: S,
        cfg: JournalConfig,
        catalog: TierCatalog,
        schemes: Vec<CompressionOption>,
        fresh: impl FnOnce() -> Result<ServeEngine, ServeError>,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        let recovered = Journal::recover(storage, cfg, |state| {
            ServeEngine::restore(catalog.clone(), schemes.clone(), state).is_ok()
        })?;
        let started_fresh = recovered.state.is_none();
        let mut engine = match &recovered.state {
            Some(state) => ServeEngine::restore(catalog, schemes, state)?,
            None => fresh()?,
        };
        for record in &recovered.tail {
            match &record.payload {
                scope_wal::RecordPayload::Batch(columns) => {
                    engine.ingest_sequenced(record.seq, columns)?;
                }
                // Epoch markers never reach the tail — recovery cuts at
                // the first one — but a skip keeps replay total.
                scope_wal::RecordPayload::Epoch { .. } => {}
            }
        }
        let report = RecoveryReport {
            resume_deliveries: recovered.covered_deliveries + recovered.tail.len() as u64,
            marker: recovered.marker,
            replayed: recovered.tail.len() as u64,
            started_fresh,
            wal: recovered.report,
        };
        Ok((
            JournaledEngine {
                engine,
                journal: recovered.journal,
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServeConfig, ServeObject};
    use scope_cloudsim::{AccessKind, TierId};
    use scope_wal::MemStorage;

    const HORIZON_DAYS: u32 = 60;

    fn schemes() -> Vec<CompressionOption> {
        vec![
            CompressionOption::none(),
            CompressionOption::new("zstd", 2.4, 0.35),
        ]
    }

    fn build_engine() -> ServeEngine {
        let config = ServeConfig {
            horizon_days: HORIZON_DAYS,
            horizon_months: f64::from(HORIZON_DAYS) / 30.0,
            threads: 1,
            ..ServeConfig::default()
        };
        let mut engine =
            ServeEngine::new(TierCatalog::azure_hot_cool_archive(), schemes(), config).unwrap();
        for i in 0..12u32 {
            engine
                .register(ServeObject::new(
                    format!("obj-{i}"),
                    format!("acct-{}", i % 3),
                    1.0 + f64::from(i) * 0.4,
                    TierId(0),
                ))
                .unwrap();
        }
        engine
    }

    fn batch(seq: u64, n: usize) -> EventColumns {
        let mut cols = EventColumns::default();
        for i in 0..n {
            cols.push_resolved(
                (seq as u32 * 5 + i as u32) % HORIZON_DAYS,
                (seq as u32 + i as u32) % 12,
                if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                0.1 + seq as f64 * 0.01 + i as f64 * 0.2,
            );
        }
        cols
    }

    fn journaled() -> JournaledEngine<MemStorage> {
        JournaledEngine::create(build_engine(), MemStorage::new(), JournalConfig::default())
            .unwrap()
    }

    fn recover_mem(storage: MemStorage) -> (JournaledEngine<MemStorage>, RecoveryReport) {
        JournaledEngine::recover(
            storage,
            JournalConfig::default(),
            TierCatalog::azure_hot_cool_archive(),
            schemes(),
            || Ok(build_engine()),
        )
        .unwrap()
    }

    /// Never-crashed reference: plain engine fed deliveries `0..n`.
    fn plain_after(n: u64) -> ServeEngine {
        let mut engine = build_engine();
        for seq in 0..n {
            engine.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        engine
    }

    #[test]
    fn a_clean_run_recovers_bit_for_bit_after_a_synced_crash() {
        let mut j = journaled();
        for seq in 0..5 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.sync().unwrap();
        let mut storage = j.crash();
        storage.crash();
        let (j2, report) = recover_mem(storage);
        assert_eq!(report.resume_deliveries, 5);
        assert!(report.started_fresh, "no checkpoint was ever published");
        assert_eq!(report.replayed, 5);
        assert_eq!(j2.engine().checkpoint(), plain_after(5).checkpoint());
    }

    #[test]
    fn unsynced_deliveries_roll_back_and_are_redelivered() {
        let mut j = journaled();
        for seq in 0..3 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.sync().unwrap();
        for seq in 3..6 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        // Crash without syncing: deliveries 3..6 are lost.
        let mut storage = j.crash();
        storage.crash();
        let (mut j2, report) = recover_mem(storage);
        assert_eq!(report.resume_deliveries, 3);
        // The producer re-delivers from the reported position.
        for seq in report.resume_deliveries..6 {
            j2.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        assert_eq!(j2.engine().checkpoint(), plain_after(6).checkpoint());
        assert_eq!(j2.deliveries(), 6);
    }

    #[test]
    fn checkpoints_carry_the_marker_and_cover_replay() {
        let mut j = journaled();
        for seq in 0..4 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.advance(15).unwrap();
        j.reoptimize().unwrap();
        j.checkpoint_durable(777).unwrap();
        for seq in 4..6 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.sync().unwrap();
        let mut storage = j.crash();
        storage.crash();
        let (j2, report) = recover_mem(storage);
        assert_eq!(report.marker, 777);
        assert_eq!(report.resume_deliveries, 6);
        assert_eq!(report.replayed, 2, "only post-checkpoint tail replays");
        assert!(!report.started_fresh);

        // Never-crashed twin with the same schedule.
        let mut twin = build_engine();
        for seq in 0..4 {
            twin.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        twin.advance(15);
        twin.reoptimize().unwrap();
        for seq in 4..6 {
            twin.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        assert_eq!(j2.engine().checkpoint(), twin.checkpoint());
    }

    #[test]
    fn duplicate_and_reordered_deliveries_replay_identically() {
        // Delivery stream with a duplicate and a local swap; the journal
        // must log it verbatim so even `duplicate_batches` recovers.
        let stream: Vec<u64> = vec![0, 1, 1, 3, 2, 4];
        let mut j = journaled();
        for &seq in &stream {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.sync().unwrap();
        let mut storage = j.crash();
        storage.crash();
        let (j2, report) = recover_mem(storage);
        assert_eq!(report.resume_deliveries, 6);
        assert_eq!(j2.engine().duplicate_batches(), 1);

        let mut twin = build_engine();
        for &seq in &stream {
            twin.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        assert_eq!(j2.engine().checkpoint(), twin.checkpoint());
    }

    #[test]
    fn a_corrupt_newest_checkpoint_walks_back_and_still_recovers_equal() {
        let mut j = journaled();
        for seq in 0..3 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.sync().unwrap();
        j.checkpoint_durable(1).unwrap();
        for seq in 3..5 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.sync().unwrap();
        j.checkpoint_durable(2).unwrap();
        let mut storage = j.crash();
        storage.crash();
        // Corrupt the newest checkpoint (ordinal 2).
        assert!(storage.flip_durable_bit(&scope_wal::checkpoint_name(2), 77));
        let (j2, report) = recover_mem(storage);
        assert_eq!(report.marker, 1, "recovered from the older checkpoint");
        assert_eq!(report.wal.quarantined_checkpoints.len(), 1);
        assert_eq!(report.resume_deliveries, 5);
        assert_eq!(report.replayed, 2);
        assert_eq!(j2.engine().checkpoint(), plain_after(5).checkpoint());
    }

    #[test]
    fn torn_tails_and_interior_corruption_yield_typed_reports() {
        let mut j = journaled();
        for seq in 0..2 {
            j.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        j.sync().unwrap();
        j.ingest_sequenced(2, &batch(2, 6)).unwrap();
        let mut storage = j.crash();
        storage.crash_torn(&scope_wal::segment_name(0), 11);
        storage.crash();
        let (mut j2, report) = recover_mem(storage);
        assert_eq!(report.wal.torn_bytes, 11);
        assert_eq!(report.resume_deliveries, 2);
        for seq in 2..4 {
            j2.ingest_sequenced(seq, &batch(seq, 6)).unwrap();
        }
        assert_eq!(j2.engine().checkpoint(), plain_after(4).checkpoint());
    }
}
