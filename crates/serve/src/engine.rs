//! Long-running serving state and the incremental re-optimization loop.
//!
//! The engine is organised around three invariants:
//!
//! 1. **Bounded memory.** [`ServeEngine::ingest`] folds event batches into
//!    per-object `(heat, last_day)` pairs and never retains an event, so
//!    resident state is `O(objects)` regardless of trace length.
//! 2. **Delta-only table work.** Heat feeds the optimizer through a
//!    geometric bucket representative; a partition's cost-table row is
//!    re-evaluated (via [`CostTable::patch_rows`]) only when its heat
//!    crosses a bucket boundary or its placement changed last epoch.
//! 3. **Bit-for-bit reproducibility.** The incremental path re-derives
//!    exactly the rows a from-scratch build would produce (patching is
//!    pinned bit-identical in `scope-optassign`), per-row choices use the
//!    same first-minimum rule as the batch greedy solver, and account
//!    shards merge in account order under the deterministic
//!    [`parallel fan-out`](scope_cloudsim::parallel) — so the outcome is
//!    independent of the thread count and equal to
//!    [`crate::reference::full_resolve`] on the same state.

use std::collections::HashMap;

use scope_cloudsim::parallel::{default_threads, parallel_map_mut_with_threads};
use scope_cloudsim::{AccessKind, BillingEvent, EventColumns, TierCatalog, TierId, UNKNOWN_OBJECT};
use scope_optassign::{
    solve_branch_and_bound, solve_branch_and_bound_warm, Assignment, CompressionOption, CostTable,
    OptAssignError, OptAssignProblem, PartitionSpec,
};

use crate::error::ServeError;

/// Tuning knobs for a [`ServeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Billing/serving horizon in days; events at or past this day are
    /// counted as dropped, mirroring the billing engine's
    /// `dropped_events` rule exactly.
    pub horizon_days: u32,
    /// Optimizer cost horizon in months (the projection length every
    /// re-solve prices placements over).
    pub horizon_months: f64,
    /// Per-day exponential decay applied to heat counters, in `(0, 1]`
    /// (1.0 = no decay, pure cumulative access counts).
    pub decay_per_day: f64,
    /// Base of the geometric heat buckets (> 1). Heat `h >= 1` is
    /// represented by `base^floor(log_base(h))`; heat below 1 by 0. A
    /// partition is re-evaluated only when its representative changes, so
    /// larger bases mean fewer row patches and coarser cost estimates.
    pub bucket_base: f64,
    /// Re-bucketing hysteresis margin (>= 1). With representative `rep`,
    /// the row is only re-bucketed once heat leaves the widened band
    /// `[rep / hysteresis, rep * base * hysteresis)` — objects whose heat
    /// merely oscillates around a bucket edge with event noise stop
    /// flapping between rows. 1.0 = pure floor semantics (any bucket
    /// change re-buckets). Like `bucket_base`, this only trades estimate
    /// freshness against patch volume; both re-solve paths read the same
    /// stored representative, so bit-for-bit equality with the batch
    /// reference holds for any setting.
    pub bucket_hysteresis: f64,
    /// Worker threads for the account-sharded re-solve fan-out
    /// (0 = [`default_threads`]). The thread count never changes the
    /// outcome, only the wall-clock.
    pub threads: usize,
    /// `Some(budget)` switches re-solves from per-partition greedy to
    /// warm-started branch-and-bound with this node budget (needed when
    /// tiers have capacity constraints that couple partitions).
    pub node_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            horizon_days: 180,
            horizon_months: 6.0,
            decay_per_day: 0.98,
            bucket_base: 2.0,
            bucket_hysteresis: 1.0,
            threads: 0,
            node_budget: None,
        }
    }
}

impl ServeConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.horizon_days == 0 {
            return Err(ServeError::InvalidConfig(
                "horizon_days must be positive".into(),
            ));
        }
        if !(self.horizon_months > 0.0) || !self.horizon_months.is_finite() {
            return Err(ServeError::InvalidConfig(format!(
                "horizon_months must be finite and positive, got {}",
                self.horizon_months
            )));
        }
        if !(self.decay_per_day > 0.0 && self.decay_per_day <= 1.0) {
            return Err(ServeError::InvalidConfig(format!(
                "decay_per_day must be in (0, 1], got {}",
                self.decay_per_day
            )));
        }
        if !(self.bucket_base > 1.0) || !self.bucket_base.is_finite() {
            return Err(ServeError::InvalidConfig(format!(
                "bucket_base must be finite and > 1, got {}",
                self.bucket_base
            )));
        }
        if !(self.bucket_hysteresis >= 1.0) || !self.bucket_hysteresis.is_finite() {
            return Err(ServeError::InvalidConfig(format!(
                "bucket_hysteresis must be finite and >= 1, got {}",
                self.bucket_hysteresis
            )));
        }
        Ok(())
    }
}

/// Registration record for one serving object.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeObject {
    /// Globally unique object name (the id events resolve against).
    pub name: String,
    /// Billing account the object belongs to; each account is one
    /// independently re-solved shard.
    pub account: String,
    /// Uncompressed size in GB.
    pub size_gb: f64,
    /// Tier the object currently lives on.
    pub current_tier: TierId,
    /// Index into the engine's shared compression-scheme list for the
    /// object's current encoding (0 = uncompressed).
    pub compression: usize,
    /// Days the object has already resided on `current_tier` (feeds
    /// early-deletion penalties on the first move).
    pub residency_days: u32,
    /// Maximum tolerable access latency in seconds
    /// (`f64::INFINITY` = unconstrained).
    pub latency_threshold_seconds: f64,
}

impl ServeObject {
    /// A new object on `tier`, uncompressed, with no latency constraint.
    pub fn new(
        name: impl Into<String>,
        account: impl Into<String>,
        size_gb: f64,
        tier: TierId,
    ) -> Self {
        ServeObject {
            name: name.into(),
            account: account.into(),
            size_gb,
            current_tier: tier,
            compression: 0,
            residency_days: 0,
            latency_threshold_seconds: f64::INFINITY,
        }
    }

    /// Set the current compression scheme (index into the engine's list).
    pub fn with_compression(mut self, scheme: usize) -> Self {
        self.compression = scheme;
        self
    }

    /// Set the days already served on the current tier.
    pub fn with_residency_days(mut self, days: u32) -> Self {
        self.residency_days = days;
        self
    }

    /// Set the latency threshold in seconds.
    pub fn with_latency_threshold(mut self, seconds: f64) -> Self {
        self.latency_threshold_seconds = seconds;
        self
    }
}

/// Per-object heat state: an exponentially decayed read counter.
#[derive(Debug, Clone, Copy)]
struct HeatState {
    /// Decayed read count as of `last_day`.
    value: f64,
    /// Day the counter was last decayed to.
    last_day: u32,
}

/// One account's shard: its assignment problem, incrementally patched
/// cost table, incumbent choices, and the dirty-row worklist for the next
/// re-solve.
#[derive(Debug)]
pub(crate) struct AccountShard {
    /// Account name (shards merge in first-registration order).
    pub(crate) account: String,
    /// The shard's assignment problem; `partitions[n].predicted_accesses`
    /// holds the bucket representative and `current_tier` tracks the
    /// applied placement.
    pub(crate) problem: OptAssignProblem,
    /// Dense cost table, built on the first re-solve and row-patched
    /// afterwards. `None` until then (or after a new registration, which
    /// changes the problem shape).
    table: Option<CostTable>,
    /// Incumbent `(tier, scheme)` per partition: the registered placement
    /// before the first re-solve, the last applied assignment after.
    choices: Vec<(TierId, usize)>,
    /// Rows whose table entries are stale (heat re-bucketed, or placement
    /// changed last epoch); patched at the start of the next re-solve.
    dirty: Vec<usize>,
}

/// Result of one shard's re-solve (internal; merged in account order).
struct ShardDelta {
    assignment: Assignment,
    rows_patched: usize,
    retier_decisions: usize,
}

/// Counters from one [`ServeEngine::ingest`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events folded into heat counters.
    pub folded: u64,
    /// Events at or past the horizon, dropped exactly as the billing
    /// engine drops them (checked before object resolution).
    pub dropped: u64,
    /// In-horizon events for unknown object ids, skipped.
    pub unknown: u64,
}

/// One account's slice of a resolve.
#[derive(Debug, Clone)]
pub struct AccountAssignment {
    /// Account name.
    pub account: String,
    /// The account's (incremental or reference) assignment.
    pub assignment: Assignment,
}

/// Outcome of one [`ServeEngine::reoptimize`] epoch.
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// Day the engine was last advanced to.
    pub day: u32,
    /// Per-account assignments, in account registration order.
    pub accounts: Vec<AccountAssignment>,
    /// Total objective across accounts, summed in account order.
    pub total_objective: f64,
    /// Cost-table rows (re)evaluated this epoch, across all shards.
    pub rows_patched: usize,
    /// Objects whose `(tier, scheme)` changed vs. the incumbent.
    pub retier_decisions: usize,
    /// Objects covered by this resolve.
    pub objects: usize,
    /// Cumulative out-of-horizon events dropped since engine start.
    pub dropped_events: u64,
}

/// The long-running serving core: interned objects, decayed heat, and
/// account shards re-solved incrementally (see the
/// [module docs](self) for the invariants).
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    catalog: TierCatalog,
    /// Shared compression-scheme list; index 0 must be "no compression".
    schemes: Vec<CompressionOption>,
    shards: Vec<AccountShard>,
    account_ids: HashMap<String, usize>,
    /// Global object id -> (shard index, row within shard).
    locs: Vec<(u32, u32)>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    heat: Vec<HeatState>,
    /// Day the engine state was last advanced to.
    day: u32,
    dropped_events: u64,
}

impl ServeEngine {
    /// Create an engine over `catalog` with a shared compression-scheme
    /// list (`schemes[0]` must have ratio 1.0 — the "no compression"
    /// slot every partition's option list leads with).
    pub fn new(
        catalog: TierCatalog,
        schemes: Vec<CompressionOption>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        if catalog.is_empty() {
            return Err(ServeError::InvalidConfig("tier catalog is empty".into()));
        }
        if schemes.is_empty() {
            return Err(ServeError::InvalidConfig(
                "scheme list is empty; it must at least contain the no-compression option".into(),
            ));
        }
        if schemes[0].ratio != 1.0 {
            return Err(ServeError::InvalidConfig(format!(
                "schemes[0] must be the no-compression option (ratio 1.0), got ratio {}",
                schemes[0].ratio
            )));
        }
        for (k, s) in schemes.iter().enumerate() {
            if !(s.ratio > 0.0) || !s.ratio.is_finite() {
                return Err(ServeError::InvalidConfig(format!(
                    "scheme {k} ({}) has invalid ratio {}",
                    s.name, s.ratio
                )));
            }
            if !(s.decompress_seconds >= 0.0) || !s.decompress_seconds.is_finite() {
                return Err(ServeError::InvalidConfig(format!(
                    "scheme {k} ({}) has invalid decompress_seconds {}",
                    s.name, s.decompress_seconds
                )));
            }
        }
        Ok(ServeEngine {
            config,
            catalog,
            schemes,
            shards: Vec::new(),
            account_ids: HashMap::new(),
            locs: Vec::new(),
            names: Vec::new(),
            name_ids: HashMap::new(),
            heat: Vec::new(),
            day: 0,
            dropped_events: 0,
        })
    }

    /// Register an object and return its interned id (the id to use in
    /// [`EventColumns::object_ids`]). Registration invalidates the owning
    /// shard's cost table — the next re-solve rebuilds that shard from
    /// scratch, since the problem shape changed.
    pub fn register(&mut self, spec: ServeObject) -> Result<u32, ServeError> {
        if self.name_ids.contains_key(&spec.name) {
            return Err(ServeError::DuplicateObject(spec.name));
        }
        if !(spec.size_gb > 0.0) || !spec.size_gb.is_finite() {
            return Err(ServeError::InvalidObject(format!(
                "object {} has invalid size {} GB",
                spec.name, spec.size_gb
            )));
        }
        if spec.current_tier.index() >= self.catalog.len() {
            return Err(ServeError::InvalidObject(format!(
                "object {} is on unknown tier {:?}",
                spec.name, spec.current_tier
            )));
        }
        if spec.compression >= self.schemes.len() {
            return Err(ServeError::InvalidObject(format!(
                "object {} uses compression scheme {} but only {} are registered",
                spec.name,
                spec.compression,
                self.schemes.len()
            )));
        }
        let shard_idx = match self.account_ids.get(&spec.account) {
            Some(&i) => i,
            None => {
                let i = self.shards.len();
                self.account_ids.insert(spec.account.clone(), i);
                self.shards.push(AccountShard {
                    account: spec.account.clone(),
                    problem: OptAssignProblem::new(
                        self.catalog.clone(),
                        Vec::new(),
                        self.config.horizon_months,
                    ),
                    table: None,
                    choices: Vec::new(),
                    dirty: Vec::new(),
                });
                i
            }
        };
        let gid = self.locs.len() as u32;
        if gid == UNKNOWN_OBJECT {
            return Err(ServeError::InvalidObject(
                "object id space exhausted".into(),
            ));
        }
        let shard = &mut self.shards[shard_idx];
        let row = shard.problem.partitions.len();
        let mut partition = PartitionSpec::new(row, spec.name.clone(), spec.size_gb, 0.0)
            .with_current_tier(spec.current_tier)
            .with_residency_days(spec.residency_days);
        if spec.latency_threshold_seconds.is_finite() {
            partition = partition.with_latency_threshold(spec.latency_threshold_seconds);
        }
        partition.compression_options = self.schemes.clone();
        shard.problem.partitions.push(partition);
        shard.choices.push((spec.current_tier, spec.compression));
        // Shape changed: the dense table no longer matches the problem.
        shard.table = None;
        shard.dirty.clear();
        self.locs.push((shard_idx as u32, row as u32));
        self.name_ids.insert(spec.name.clone(), gid);
        self.names.push(spec.name);
        self.heat.push(HeatState {
            value: 0.0,
            last_day: self.day,
        });
        Ok(gid)
    }

    /// Interned id of `name`, if registered.
    pub fn object_id(&self, name: &str) -> Option<u32> {
        self.name_ids.get(name).copied()
    }

    /// Name of object `id`, if it exists.
    pub fn object_name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Day the engine was last advanced to.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Cumulative out-of-horizon events dropped by [`Self::ingest`].
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Current decayed heat of object `id` (as of its last fold/advance).
    pub fn heat(&self, id: u32) -> Option<f64> {
        self.heat.get(id as usize).map(|h| h.value)
    }

    /// Current applied `(tier, scheme)` placement of object `id`.
    pub fn placement(&self, id: u32) -> Option<(TierId, usize)> {
        let &(shard, row) = self.locs.get(id as usize)?;
        Some(self.shards[shard as usize].choices[row as usize])
    }

    /// Resolve a name-keyed event trace against this engine's interned
    /// ids ([`UNKNOWN_OBJECT`] for unregistered names) — the serving
    /// analogue of the billing simulator's internal resolution step, so
    /// both see the identical id stream for a given trace.
    pub fn columns_from_events(&self, events: &[BillingEvent]) -> EventColumns {
        let mut columns = EventColumns::default();
        for e in events {
            let id = self.object_id(&e.object).unwrap_or(UNKNOWN_OBJECT);
            columns.push_resolved(e.day, id, e.kind, e.volume_gb);
        }
        columns
    }

    /// Fold an event batch into the per-object heat counters. No event is
    /// retained: memory stays `O(objects)` for arbitrarily long streams.
    ///
    /// Mirrors the billing engine's event loop exactly: the out-of-horizon
    /// drop check comes **first** (so a day-300 event for an unknown
    /// object still counts as dropped), then unknown ids are skipped.
    /// Reads add 1 to the (decayed) heat; writes are folded but carry no
    /// read heat. Splitting a day-ordered stream into batches at any
    /// boundary yields identical state, because decay is applied lazily
    /// per object from its own `last_day`.
    pub fn ingest(&mut self, columns: &EventColumns) -> IngestReport {
        let mut report = IngestReport::default();
        for i in 0..columns.len() {
            let day = columns.days[i];
            if day >= self.config.horizon_days {
                report.dropped += 1;
                continue;
            }
            let id = columns.object_ids[i] as usize;
            if id >= self.heat.len() {
                report.unknown += 1;
                continue;
            }
            let h = &mut self.heat[id];
            if day > h.last_day {
                h.value *= self.config.decay_per_day.powi((day - h.last_day) as i32);
                h.last_day = day;
            }
            if columns.kinds[i] == AccessKind::Read {
                h.value += 1.0;
            }
            report.folded += 1;
        }
        self.dropped_events += report.dropped;
        report
    }

    /// Advance the engine clock to `day`: decay every heat counter to the
    /// boundary, re-bucket, and mark exactly the rows whose bucket
    /// representative changed as dirty. Days already passed are ignored
    /// per object (the clock never runs backwards).
    pub fn advance(&mut self, day: u32) {
        self.day = self.day.max(day);
        for id in 0..self.heat.len() {
            let h = &mut self.heat[id];
            if day > h.last_day {
                h.value *= self.config.decay_per_day.powi((day - h.last_day) as i32);
                h.last_day = day;
            }
            let (shard_idx, row) = self.locs[id];
            let shard = &mut self.shards[shard_idx as usize];
            let partition = &mut shard.problem.partitions[row as usize];
            let rep = partition.predicted_accesses;
            let base = self.config.bucket_base;
            let hyst = self.config.bucket_hysteresis;
            // Re-bucket only once the heat leaves the representative's
            // hysteresis band (at hysteresis 1.0 the band is exactly the
            // bucket, i.e. pure floor semantics).
            let stale = if rep == 0.0 {
                h.value >= hyst
            } else {
                h.value < rep / hyst || h.value >= rep * base * hyst
            };
            if stale {
                // Geometric bucket representative: 0 below one read, else
                // the largest power of `bucket_base` not exceeding the heat.
                let target = if h.value < 1.0 {
                    0.0
                } else {
                    base.powf(h.value.log(base).floor())
                };
                if target.to_bits() != rep.to_bits() {
                    partition.predicted_accesses = target;
                    shard.dirty.push(row as usize);
                }
            }
        }
    }

    /// Re-solve incrementally and apply the result: each account shard
    /// patches its dirty rows in place, re-decides (greedy per-row, or
    /// warm-started branch-and-bound under a node budget), and updates the
    /// incumbent; shards fan out over the deterministic parallel map and
    /// merge in account order, so the outcome is bit-for-bit identical for
    /// any thread count — and to [`crate::reference::full_resolve`] on the
    /// same state.
    pub fn reoptimize(&mut self) -> Result<ResolveOutcome, ServeError> {
        let threads = if self.config.threads == 0 {
            default_threads()
        } else {
            self.config.threads
        };
        let node_budget = self.config.node_budget;
        let deltas: Vec<Result<ShardDelta, OptAssignError>> =
            parallel_map_mut_with_threads(&mut self.shards, threads, |_, shard| {
                shard.resolve(node_budget)
            });
        let mut outcome = ResolveOutcome {
            day: self.day,
            accounts: Vec::with_capacity(self.shards.len()),
            total_objective: 0.0,
            rows_patched: 0,
            retier_decisions: 0,
            objects: self.locs.len(),
            dropped_events: self.dropped_events,
        };
        // Merge strictly in account order: the objective sum order is part
        // of the bit-for-bit contract with the reference path.
        for (shard, delta) in self.shards.iter().zip(deltas) {
            let delta = delta?;
            outcome.total_objective += delta.assignment.objective;
            outcome.rows_patched += delta.rows_patched;
            outcome.retier_decisions += delta.retier_decisions;
            outcome.accounts.push(AccountAssignment {
                account: shard.account.clone(),
                assignment: delta.assignment,
            });
        }
        Ok(outcome)
    }

    /// The account shards, in registration order (crate-internal: the
    /// reference resolver walks the same problems cold).
    pub(crate) fn shards(&self) -> &[AccountShard] {
        &self.shards
    }
}

impl AccountShard {
    /// One shard re-solve: patch stale rows, re-decide, apply.
    fn resolve(&mut self, node_budget: Option<u64>) -> Result<ShardDelta, OptAssignError> {
        self.dirty.sort_unstable();
        self.dirty.dedup();
        let dirty = std::mem::take(&mut self.dirty);
        let n = self.problem.partitions.len();
        let rows_patched;
        let choices = match &mut self.table {
            None => {
                // Cold start (first resolve, or the shape changed after a
                // registration): full build, full decide.
                self.problem.validate()?;
                let table = CostTable::build(&self.problem);
                rows_patched = n;
                let choices = match node_budget {
                    None => greedy_choices(&table, &self.problem, 0..n, None)?,
                    Some(budget) => {
                        // The cold branch-and-bound builds its own table
                        // internally; its rows are bit-identical to ours,
                        // so adopting its choices keeps the two in lockstep.
                        let (assignment, _) = solve_branch_and_bound(&self.problem, budget)?;
                        assignment.choices
                    }
                };
                self.table = Some(table);
                choices
            }
            Some(table) => {
                table.patch_rows(&self.problem, &dirty)?;
                rows_patched = dirty.len();
                match node_budget {
                    None => greedy_choices(
                        table,
                        &self.problem,
                        dirty.iter().copied(),
                        Some(self.choices.clone()),
                    )?,
                    Some(budget) => {
                        // The incumbent stays feasible across heat changes
                        // (feasibility depends only on latency thresholds
                        // and sizes, which never change here), so it seeds
                        // the warm search directly.
                        let (assignment, _) = solve_branch_and_bound_warm(
                            &self.problem,
                            table,
                            &self.choices,
                            budget,
                        )?;
                        assignment.choices
                    }
                }
            }
        };
        let Some(table) = self.table.as_ref() else {
            return Err(OptAssignError::InvalidProblem(
                "shard lost its cost table mid-resolve".into(),
            ));
        };
        let assignment = table.assignment(&self.problem, choices.clone())?;
        let mut retier_decisions = 0;
        for (row, (&new, &old)) in choices.iter().zip(&self.choices).enumerate() {
            if new != old {
                retier_decisions += 1;
                // Applying the move changes the row's transition costs
                // (they are priced from current_tier), so the row is stale
                // for the *next* epoch.
                self.problem.partitions[row].current_tier = Some(new.0);
                self.dirty.push(row);
            }
        }
        self.choices = choices;
        Ok(ShardDelta {
            assignment,
            rows_patched,
            retier_decisions,
        })
    }
}

/// Per-row greedy decisions over `rows`, starting from `seed` (or empty
/// choices when re-deciding everything). Uses [`CostTable::min_feasible`],
/// the exact rule `solve_greedy` applies — first minimum in tier-major
/// order — so incremental and batch paths tie-break identically.
fn greedy_choices(
    table: &CostTable,
    problem: &OptAssignProblem,
    rows: impl Iterator<Item = usize>,
    seed: Option<Vec<(TierId, usize)>>,
) -> Result<Vec<(TierId, usize)>, OptAssignError> {
    let mut choices = seed.unwrap_or_else(|| vec![(TierId(0), 0); problem.partitions.len()]);
    for row in rows {
        match table.min_feasible(row) {
            Some((_, tier, scheme)) => choices[row] = (tier, scheme),
            None => {
                return Err(OptAssignError::InfeasiblePartition {
                    partition: problem.partitions[row].id,
                    name: problem.partitions[row].name.clone(),
                })
            }
        }
    }
    Ok(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use scope_cloudsim::{BillingSimulator, ObjectSpec, Placement};

    fn schemes() -> Vec<CompressionOption> {
        vec![
            CompressionOption::none(),
            CompressionOption::new("gzip", 3.5, 1.5),
            CompressionOption::new("zstd", 2.4, 0.35),
        ]
    }

    /// Deterministic LCG so traces are reproducible without the rand shim.
    fn lcg(state: &mut u64) -> u32 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) as u32
    }

    /// Engine with `accounts * per_account` objects of distinct sizes;
    /// every third object gets a tight latency threshold (excludes the
    /// archive tier), sizes/residencies vary deterministically.
    fn demo_engine(accounts: usize, per_account: usize, config: ServeConfig) -> ServeEngine {
        let mut engine = ServeEngine::new(
            scope_cloudsim::TierCatalog::azure_hot_cool_archive(),
            schemes(),
            config,
        )
        .unwrap();
        for a in 0..accounts {
            for o in 0..per_account {
                let gid = a * per_account + o;
                let mut spec = ServeObject::new(
                    format!("obj-{a}-{o}"),
                    format!("acct-{a}"),
                    1.0 + gid as f64 * 0.37,
                    TierId(gid % 2),
                )
                .with_residency_days((gid as u32 * 11) % 200);
                if gid % 3 == 0 {
                    spec = spec.with_latency_threshold(2.0);
                }
                engine.register(spec).unwrap();
            }
        }
        engine
    }

    /// A day-ordered read/write trace over the engine's objects, with a
    /// skewed access distribution so heats diverge across buckets.
    fn demo_trace(engine: &ServeEngine, days: u32, events_per_day: usize) -> Vec<BillingEvent> {
        let mut state = 0x5eed_cafe_u64;
        let n = engine.len() as u32;
        let mut events = Vec::new();
        for day in 0..days {
            for _ in 0..events_per_day {
                // Square the draw to skew toward low ids (hot objects).
                let draw = lcg(&mut state) % n;
                let id = (u64::from(draw) * u64::from(draw) / u64::from(n)) as u32;
                let name = engine.object_name(id.min(n - 1)).unwrap().to_string();
                let volume = 0.05 + f64::from(lcg(&mut state) % 100) / 200.0;
                if lcg(&mut state) % 10 == 0 {
                    events.push(BillingEvent::write(name, day, volume));
                } else {
                    events.push(BillingEvent::read(name, day, volume));
                }
            }
        }
        events
    }

    fn assert_outcome_matches_reference(
        outcome: &ResolveOutcome,
        reference: &[AccountAssignment],
        epoch: usize,
    ) {
        assert_eq!(outcome.accounts.len(), reference.len(), "epoch {epoch}");
        for (inc, cold) in outcome.accounts.iter().zip(reference) {
            assert_eq!(inc.account, cold.account, "epoch {epoch}");
            assert_eq!(
                inc.assignment.choices, cold.assignment.choices,
                "epoch {epoch}: choices diverged for {}",
                inc.account
            );
            assert_eq!(
                inc.assignment.objective.to_bits(),
                cold.assignment.objective.to_bits(),
                "epoch {epoch}: objective bits diverged for {}",
                inc.account
            );
        }
        assert_eq!(
            outcome.total_objective.to_bits(),
            reference::total_objective(reference).to_bits(),
            "epoch {epoch}: total objective diverged"
        );
    }

    #[test]
    fn config_and_registration_are_validated() {
        let bad = ServeConfig {
            decay_per_day: 1.5,
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::InvalidConfig(_))));
        let bad = ServeConfig {
            bucket_base: 1.0,
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::InvalidConfig(_))));

        let catalog = scope_cloudsim::TierCatalog::azure_hot_cool_archive();
        // schemes[0] must be the identity scheme.
        assert!(ServeEngine::new(
            catalog.clone(),
            vec![CompressionOption::new("gzip", 3.5, 1.5)],
            ServeConfig::default(),
        )
        .is_err());

        let mut engine = ServeEngine::new(catalog, schemes(), ServeConfig::default()).unwrap();
        engine
            .register(ServeObject::new("a", "acct", 1.0, TierId(0)))
            .unwrap();
        assert!(matches!(
            engine.register(ServeObject::new("a", "acct", 2.0, TierId(0))),
            Err(ServeError::DuplicateObject(_))
        ));
        assert!(matches!(
            engine.register(ServeObject::new("b", "acct", -1.0, TierId(0))),
            Err(ServeError::InvalidObject(_))
        ));
        assert!(matches!(
            engine.register(ServeObject::new("c", "acct", 1.0, TierId(9))),
            Err(ServeError::InvalidObject(_))
        ));
        assert!(matches!(
            engine.register(ServeObject::new("d", "acct", 1.0, TierId(0)).with_compression(7)),
            Err(ServeError::InvalidObject(_))
        ));
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.object_id("a"), Some(0));
        assert_eq!(engine.object_name(0), Some("a"));
        assert_eq!(engine.placement(0), Some((TierId(0), 0)));
    }

    #[test]
    fn ingest_mirrors_billing_dropped_events_exactly() {
        let catalog = scope_cloudsim::TierCatalog::azure_hot_cool_archive();
        let config = ServeConfig {
            horizon_days: 60,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(catalog.clone(), schemes(), config).unwrap();
        engine
            .register(ServeObject::new("a", "acct", 10.0, TierId(0)))
            .unwrap();
        engine
            .register(ServeObject::new("b", "acct", 4.0, TierId(1)))
            .unwrap();

        let mut sim = BillingSimulator::new(catalog);
        sim.place(
            ObjectSpec::new("a", 10.0).on_tier(TierId(0)),
            Placement::uncompressed(TierId(0)),
        )
        .unwrap();
        sim.place(
            ObjectSpec::new("b", 4.0).on_tier(TierId(1)),
            Placement::uncompressed(TierId(1)),
        )
        .unwrap();

        // In-horizon reads/writes, out-of-horizon events (including one for
        // an unknown object — the drop check precedes object resolution in
        // both engines), and an in-horizon unknown (skipped, not dropped).
        let events = vec![
            BillingEvent::read("a", 3, 1.0),
            BillingEvent::write("b", 10, 0.5),
            BillingEvent::read("a", 59, 2.0),
            BillingEvent::read("a", 60, 1.0),
            BillingEvent::read("ghost", 61, 1.0),
            BillingEvent::write("b", 300, 0.1),
            BillingEvent::read("ghost", 12, 1.0),
        ];
        let report = sim.run_days(60, &events).unwrap();
        let columns = engine.columns_from_events(&events);
        let ingest = engine.ingest(&columns);

        assert_eq!(ingest.dropped, 3);
        assert_eq!(ingest.unknown, 1);
        assert_eq!(ingest.folded, 3);
        assert_eq!(report.dropped_events, engine.dropped_events());
        // Cumulative across batches: a replay of the same columns doubles it.
        engine.ingest(&columns);
        assert_eq!(engine.dropped_events(), 2 * report.dropped_events);
    }

    #[test]
    fn ingest_is_invariant_under_batch_splits() {
        let config = ServeConfig::default();
        let mut whole = demo_engine(2, 12, config.clone());
        let mut split = demo_engine(2, 12, config);
        let events = demo_trace(&whole, 90, 40);
        let columns = whole.columns_from_events(&events);

        whole.ingest(&columns);
        for (lo, hi) in [(0, 13), (13, 40), (40, 90)] {
            split.ingest(&columns.filter_day_range(lo, hi));
        }
        for id in 0..whole.len() as u32 {
            assert_eq!(
                whole.heat(id).unwrap().to_bits(),
                split.heat(id).unwrap().to_bits(),
                "heat diverged for object {id}"
            );
        }
        assert_eq!(whole.dropped_events(), split.dropped_events());
    }

    #[test]
    fn incremental_resolve_matches_cold_reference_on_every_epoch() {
        let mut engine = demo_engine(3, 10, ServeConfig::default());
        let events = demo_trace(&engine, 90, 60);
        let columns = engine.columns_from_events(&events);
        let full_rows = engine.len();

        let mut later_rows_patched = 0;
        for epoch in 0..6 {
            let (lo, hi) = (epoch as u32 * 15, epoch as u32 * 15 + 15);
            engine.ingest(&columns.filter_day_range(lo, hi));
            engine.advance(hi);
            let cold = reference::full_resolve(&engine).unwrap();
            let outcome = engine.reoptimize().unwrap();
            assert_outcome_matches_reference(&outcome, &cold, epoch);
            assert_eq!(outcome.day, hi);
            assert_eq!(outcome.objects, engine.len());
            if epoch == 0 {
                // Cold start evaluates every row once.
                assert_eq!(outcome.rows_patched, full_rows);
            } else {
                later_rows_patched += outcome.rows_patched;
            }
        }
        // The steady state is a *delta* path: bucketing must absorb most
        // heat drift, so warm epochs patch far fewer rows than full
        // rebuilds would (5 warm epochs x 30 rows = 150 ceiling).
        assert!(
            later_rows_patched < 5 * full_rows / 2,
            "warm epochs patched {later_rows_patched} rows; delta path is not delta"
        );
    }

    #[test]
    fn registration_mid_stream_forces_a_cold_rebuild_and_stays_consistent() {
        let mut engine = demo_engine(2, 6, ServeConfig::default());
        let events = demo_trace(&engine, 60, 30);
        let columns = engine.columns_from_events(&events);
        for epoch in 0..4 {
            let (lo, hi) = (epoch * 15, epoch * 15 + 15);
            engine.ingest(&columns.filter_day_range(lo, hi));
            engine.advance(hi);
            if epoch == 2 {
                // Shape change: the owning shard must rebuild, the other
                // shard keeps its warm table, and both still match the
                // cold reference.
                engine
                    .register(
                        ServeObject::new("late-arrival", "acct-0", 42.5, TierId(0))
                            .with_residency_days(7),
                    )
                    .unwrap();
            }
            let cold = reference::full_resolve(&engine).unwrap();
            let outcome = engine.reoptimize().unwrap();
            assert_outcome_matches_reference(&outcome, &cold, epoch as usize);
        }
        let late = engine.object_id("late-arrival").unwrap();
        assert!(engine.placement(late).is_some());
    }

    /// One epoch's digest: per-account choices plus the total-objective bits.
    type EpochDigest = Vec<(Vec<(TierId, usize)>, u64)>;

    #[test]
    fn resolve_outcome_is_thread_count_independent() {
        let mut outcomes: Vec<EpochDigest> = Vec::new();
        for threads in [1usize, 3, 8] {
            let config = ServeConfig {
                threads,
                ..ServeConfig::default()
            };
            let mut engine = demo_engine(4, 7, config);
            let events = demo_trace(&engine, 60, 50);
            let columns = engine.columns_from_events(&events);
            let mut per_epoch = Vec::new();
            for epoch in 0..4u32 {
                let (lo, hi) = (epoch * 15, epoch * 15 + 15);
                engine.ingest(&columns.filter_day_range(lo, hi));
                engine.advance(hi);
                let outcome = engine.reoptimize().unwrap();
                per_epoch.push((
                    outcome
                        .accounts
                        .iter()
                        .flat_map(|a| a.assignment.choices.iter().copied())
                        .collect::<Vec<_>>(),
                    outcome.total_objective.to_bits(),
                ));
            }
            outcomes.push(per_epoch);
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "threads=3 diverged from sequential"
        );
        assert_eq!(
            outcomes[0], outcomes[2],
            "threads=8 diverged from sequential"
        );
    }

    #[test]
    fn warm_branch_and_bound_mode_matches_cold_reference_under_capacity() {
        use scope_cloudsim::Tier;
        // A capacity-constrained premium tier couples the partitions, so
        // per-row greedy is wrong and the engine must run warm-started
        // branch-and-bound seeded from the incumbent.
        let catalog = scope_cloudsim::TierCatalog::new(vec![
            Tier::new("premium", 12.0, 0.01, 0.02, 0.005).with_capacity_gb(26.0),
            Tier::new("standard", 2.0, 0.9, 0.05, 0.2),
            Tier::new("cold", 0.4, 8.0, 0.05, 15.0),
        ])
        .unwrap();
        let config = ServeConfig {
            node_budget: Some(200_000),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(catalog, schemes(), config).unwrap();
        for (i, size) in [10.0, 9.0, 7.0, 5.0, 4.0, 2.5, 1.5, 13.0]
            .iter()
            .enumerate()
        {
            let account = if i % 2 == 0 { "acct-a" } else { "acct-b" };
            let mut spec = ServeObject::new(format!("obj-{i}"), account, *size, TierId(1));
            if i % 3 == 0 {
                spec = spec.with_latency_threshold(1.0);
            }
            engine.register(spec).unwrap();
        }
        let events = demo_trace(&engine, 60, 40);
        let columns = engine.columns_from_events(&events);
        for epoch in 0..4u32 {
            let (lo, hi) = (epoch * 15, epoch * 15 + 15);
            engine.ingest(&columns.filter_day_range(lo, hi));
            engine.advance(hi);
            let cold = reference::full_resolve(&engine).unwrap();
            let outcome = engine.reoptimize().unwrap();
            assert_outcome_matches_reference(&outcome, &cold, epoch as usize);
        }
    }

    #[test]
    fn applied_moves_update_placements_and_dirty_the_rows() {
        let mut engine = demo_engine(1, 8, ServeConfig::default());
        // Cold resolve decides initial placements (heat 0 -> cheapest
        // feasible tier for every object).
        let first = engine.reoptimize().unwrap();
        assert_eq!(first.rows_patched, 8);
        for id in 0..engine.len() as u32 {
            let (tier, scheme) = engine.placement(id).unwrap();
            let shard_choice = first.accounts[0].assignment.choices[id as usize];
            assert_eq!((tier, scheme), shard_choice);
        }
        // Without new events or heat changes, the next epoch only patches
        // rows whose placement moved last epoch, and decides nothing new.
        let second = engine.reoptimize().unwrap();
        assert_eq!(second.rows_patched, first.retier_decisions);
        assert_eq!(second.retier_decisions, 0);
        assert_eq!(
            second.total_objective.to_bits(),
            reference::total_objective(&reference::full_resolve(&engine).unwrap()).to_bits()
        );
    }
}
