//! Long-running serving state and the incremental re-optimization loop.
//!
//! The engine is organised around three invariants:
//!
//! 1. **Bounded memory.** [`ServeEngine::ingest`] folds event batches into
//!    per-object `(heat, last_day)` pairs and never retains an event, so
//!    resident state is `O(objects)` regardless of trace length.
//! 2. **Delta-only table work.** Heat feeds the optimizer through a
//!    geometric bucket representative; a partition's cost-table row is
//!    re-evaluated (via [`CostTable::patch_rows`]) only when its heat
//!    crosses a bucket boundary or its placement changed last epoch.
//! 3. **Bit-for-bit reproducibility.** The incremental path re-derives
//!    exactly the rows a from-scratch build would produce (patching is
//!    pinned bit-identical in `scope-optassign`), per-row choices use the
//!    same first-minimum rule as the batch greedy solver, and account
//!    shards merge in account order under the deterministic
//!    [`parallel fan-out`](scope_cloudsim::parallel) — so the outcome is
//!    independent of the thread count and equal to
//!    [`crate::reference::full_resolve`] on the same state.

use std::collections::{BTreeMap, HashMap};

use scope_cloudsim::parallel::{default_threads, parallel_map_mut_with_threads};
use scope_cloudsim::{
    AccessKind, BillingEvent, CostBreakdown, EventColumns, TierCatalog, TierId, UNKNOWN_OBJECT,
};
use scope_optassign::{
    solve_branch_and_bound, solve_branch_and_bound_warm, Assignment, CompressionOption, CostTable,
    OptAssignError, OptAssignProblem, PartitionSpec,
};

use crate::checkpoint::{config_fingerprint, Reader, Writer};
use crate::error::ServeError;
use crate::quarantine::{QuarantineLedger, QuarantineReason, QuarantinedEvent};

/// Tuning knobs for a [`ServeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Billing/serving horizon in days; events at or past this day are
    /// counted as dropped, mirroring the billing engine's
    /// `dropped_events` rule exactly.
    pub horizon_days: u32,
    /// Optimizer cost horizon in months (the projection length every
    /// re-solve prices placements over).
    pub horizon_months: f64,
    /// Per-day exponential decay applied to heat counters, in `(0, 1]`
    /// (1.0 = no decay, pure cumulative access counts).
    pub decay_per_day: f64,
    /// Base of the geometric heat buckets (> 1). Heat `h >= 1` is
    /// represented by `base^floor(log_base(h))`; heat below 1 by 0. A
    /// partition is re-evaluated only when its representative changes, so
    /// larger bases mean fewer row patches and coarser cost estimates.
    pub bucket_base: f64,
    /// Re-bucketing hysteresis margin (>= 1). With representative `rep`,
    /// the row is only re-bucketed once heat leaves the widened band
    /// `[rep / hysteresis, rep * base * hysteresis)` — objects whose heat
    /// merely oscillates around a bucket edge with event noise stop
    /// flapping between rows. 1.0 = pure floor semantics (any bucket
    /// change re-buckets). Like `bucket_base`, this only trades estimate
    /// freshness against patch volume; both re-solve paths read the same
    /// stored representative, so bit-for-bit equality with the batch
    /// reference holds for any setting.
    pub bucket_hysteresis: f64,
    /// Worker threads for the account-sharded re-solve fan-out
    /// (0 = [`default_threads`]). The thread count never changes the
    /// outcome, only the wall-clock.
    pub threads: usize,
    /// `Some(budget)` switches re-solves from per-partition greedy to
    /// warm-started branch-and-bound with this node budget (needed when
    /// tiers have capacity constraints that couple partitions).
    pub node_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            horizon_days: 180,
            horizon_months: 6.0,
            decay_per_day: 0.98,
            bucket_base: 2.0,
            bucket_hysteresis: 1.0,
            threads: 0,
            node_budget: None,
        }
    }
}

impl ServeConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.horizon_days == 0 {
            return Err(ServeError::InvalidConfig(
                "horizon_days must be positive".into(),
            ));
        }
        if !(self.horizon_months > 0.0) || !self.horizon_months.is_finite() {
            return Err(ServeError::InvalidConfig(format!(
                "horizon_months must be finite and positive, got {}",
                self.horizon_months
            )));
        }
        if !(self.decay_per_day > 0.0 && self.decay_per_day <= 1.0) {
            return Err(ServeError::InvalidConfig(format!(
                "decay_per_day must be in (0, 1], got {}",
                self.decay_per_day
            )));
        }
        if !(self.bucket_base > 1.0) || !self.bucket_base.is_finite() {
            return Err(ServeError::InvalidConfig(format!(
                "bucket_base must be finite and > 1, got {}",
                self.bucket_base
            )));
        }
        if !(self.bucket_hysteresis >= 1.0) || !self.bucket_hysteresis.is_finite() {
            return Err(ServeError::InvalidConfig(format!(
                "bucket_hysteresis must be finite and >= 1, got {}",
                self.bucket_hysteresis
            )));
        }
        Ok(())
    }
}

/// Registration record for one serving object.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeObject {
    /// Globally unique object name (the id events resolve against).
    pub name: String,
    /// Billing account the object belongs to; each account is one
    /// independently re-solved shard.
    pub account: String,
    /// Uncompressed size in GB.
    pub size_gb: f64,
    /// Tier the object currently lives on.
    pub current_tier: TierId,
    /// Index into the engine's shared compression-scheme list for the
    /// object's current encoding (0 = uncompressed).
    pub compression: usize,
    /// Days the object has already resided on `current_tier` (feeds
    /// early-deletion penalties on the first move).
    pub residency_days: u32,
    /// Maximum tolerable access latency in seconds
    /// (`f64::INFINITY` = unconstrained).
    pub latency_threshold_seconds: f64,
}

impl ServeObject {
    /// A new object on `tier`, uncompressed, with no latency constraint.
    pub fn new(
        name: impl Into<String>,
        account: impl Into<String>,
        size_gb: f64,
        tier: TierId,
    ) -> Self {
        ServeObject {
            name: name.into(),
            account: account.into(),
            size_gb,
            current_tier: tier,
            compression: 0,
            residency_days: 0,
            latency_threshold_seconds: f64::INFINITY,
        }
    }

    /// Set the current compression scheme (index into the engine's list).
    pub fn with_compression(mut self, scheme: usize) -> Self {
        self.compression = scheme;
        self
    }

    /// Set the days already served on the current tier.
    pub fn with_residency_days(mut self, days: u32) -> Self {
        self.residency_days = days;
        self
    }

    /// Set the latency threshold in seconds.
    pub fn with_latency_threshold(mut self, seconds: f64) -> Self {
        self.latency_threshold_seconds = seconds;
        self
    }
}

/// Per-object heat state: an exponentially decayed read counter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeatState {
    /// Decayed read count as of `last_day`.
    pub(crate) value: f64,
    /// Day the counter was last decayed to.
    pub(crate) last_day: u32,
}

/// One account's shard: its assignment problem, incrementally patched
/// cost table, incumbent choices, and the dirty-row worklist for the next
/// re-solve.
#[derive(Debug)]
pub(crate) struct AccountShard {
    /// Account name (shards merge in first-registration order).
    pub(crate) account: String,
    /// The shard's assignment problem; `partitions[n].predicted_accesses`
    /// holds the bucket representative and `current_tier` tracks the
    /// applied placement.
    pub(crate) problem: OptAssignProblem,
    /// Dense cost table, built on the first re-solve and row-patched
    /// afterwards. `None` until then (or after a new registration, which
    /// changes the problem shape).
    table: Option<CostTable>,
    /// Incumbent `(tier, scheme)` per partition: the registered placement
    /// before the first re-solve, the last applied assignment after.
    pub(crate) choices: Vec<(TierId, usize)>,
    /// Rows whose table entries are stale (heat re-bucketed, or placement
    /// changed last epoch); patched at the start of the next re-solve.
    /// Consumed **only on a successful re-solve** — a failed or faulted
    /// epoch keeps the worklist queued so the next healthy epoch
    /// re-converges over everything that accumulated meanwhile.
    pub(crate) dirty: Vec<usize>,
    /// Consecutive failed/faulted re-solves (reset by a healthy one).
    pub(crate) failures: u32,
    /// Remaining epochs of deterministic backoff before the next re-solve
    /// attempt (`0, 1, 3, 7, 7, ...` after successive failures).
    pub(crate) retry_after: u32,
    /// Whether the shard's served placement is the stale incumbent (set on
    /// failure, cleared when a re-solve re-converges).
    pub(crate) stale: bool,
    /// The last successfully applied assignment — the incumbent served
    /// verbatim while the shard is degraded. `None` until the first
    /// healthy re-solve (or after a registration changed the shape).
    pub(crate) last_assignment: Option<Assignment>,
}

/// Result of one shard's re-solve (internal; merged in account order).
struct ShardDelta {
    assignment: Assignment,
    rows_patched: usize,
    retier_decisions: usize,
}

/// Result of one shard's guarded (fault-tolerant) re-solve.
struct GuardedDelta {
    assignment: Assignment,
    rows_patched: usize,
    retier_decisions: usize,
    /// True when the shard served its incumbent instead of re-solving
    /// (injected fault, genuine solver failure, or backoff epoch).
    degraded: bool,
    /// The shard's staleness flag after this epoch.
    stale: bool,
}

/// A compute fault injected into one shard's re-solve for one epoch (see
/// `scope-faults` for the deterministic fault plans that generate these).
/// Either way the shard's re-solve result is discarded before any state
/// is touched: the cost table is not patched, the dirty worklist is
/// preserved, and the incumbent placement is served marked stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The re-solve fails outright (a crashed or errored solver).
    SolveFailure,
    /// The re-solve exceeds its epoch deadline and its result is
    /// discarded unused.
    DeadlineOverrun,
}

/// Counters from one [`ServeEngine::ingest`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events folded into heat counters.
    pub folded: u64,
    /// Events at or past the horizon, dropped exactly as the billing
    /// engine drops them (checked before object resolution).
    pub dropped: u64,
    /// In-horizon events for unknown object ids, skipped.
    pub unknown: u64,
    /// In-horizon events with NaN/negative volumes, diverted to the
    /// [`QuarantineLedger`] (checked after the horizon drop and before the
    /// unknown-object skip, mirroring the billing engine's order).
    pub quarantined: u64,
    /// Events lost to a torn batch whose parallel columns disagree in
    /// length (only the common prefix is ingested).
    pub truncated: u64,
}

impl IngestReport {
    /// Fold another report's counters into this one (used when a
    /// sequenced ingest drains several buffered batches at once).
    fn merge(&mut self, other: IngestReport) {
        self.folded += other.folded;
        self.dropped += other.dropped;
        self.unknown += other.unknown;
        self.quarantined += other.quarantined;
        self.truncated += other.truncated;
    }
}

/// One account's slice of a resolve.
#[derive(Debug, Clone)]
pub struct AccountAssignment {
    /// Account name.
    pub account: String,
    /// The account's (incremental or reference) assignment.
    pub assignment: Assignment,
    /// True when this is a degraded shard's stale incumbent (its last
    /// healthy assignment, not a re-solve over current heat).
    pub stale: bool,
}

/// Outcome of one [`ServeEngine::reoptimize`] epoch.
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// Day the engine was last advanced to.
    pub day: u32,
    /// Per-account assignments, in account registration order.
    pub accounts: Vec<AccountAssignment>,
    /// Total objective across accounts, summed in account order.
    pub total_objective: f64,
    /// Cost-table rows (re)evaluated this epoch, across all shards.
    pub rows_patched: usize,
    /// Objects whose `(tier, scheme)` changed vs. the incumbent.
    pub retier_decisions: usize,
    /// Objects covered by this resolve.
    pub objects: usize,
    /// Cumulative out-of-horizon events dropped since engine start.
    pub dropped_events: u64,
    /// Accounts that served a stale incumbent this epoch instead of
    /// re-solving (injected fault, solver failure, or backoff).
    pub degraded_accounts: usize,
}

/// The long-running serving core: interned objects, decayed heat, and
/// account shards re-solved incrementally (see the
/// [module docs](self) for the invariants).
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    catalog: TierCatalog,
    /// Shared compression-scheme list; index 0 must be "no compression".
    schemes: Vec<CompressionOption>,
    shards: Vec<AccountShard>,
    account_ids: HashMap<String, usize>,
    /// Global object id -> (shard index, row within shard).
    locs: Vec<(u32, u32)>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    pub(crate) heat: Vec<HeatState>,
    /// Day the engine state was last advanced to.
    day: u32,
    dropped_events: u64,
    /// Lifetime count of events examined by the intake (folded, dropped,
    /// unknown and quarantined alike) — the ordinal space quarantine
    /// records index, invariant under batch splits.
    events_seen: u64,
    /// Epochs started ([`Self::reoptimize`] calls), driving backoff.
    epoch: u64,
    /// Malformed-event ledger (see [`QuarantineLedger`]).
    quarantine: QuarantineLedger,
    /// Next batch sequence number the sequenced intake will fold.
    next_seq: u64,
    /// Out-of-order batches buffered until their predecessors arrive,
    /// keyed by sequence number (BTreeMap: deterministic drain order).
    pending: BTreeMap<u64, EventColumns>,
    /// Batches rejected as duplicates by the sequenced intake.
    duplicate_batches: u64,
}

impl ServeEngine {
    /// Create an engine over `catalog` with a shared compression-scheme
    /// list (`schemes[0]` must have ratio 1.0 — the "no compression"
    /// slot every partition's option list leads with).
    pub fn new(
        catalog: TierCatalog,
        schemes: Vec<CompressionOption>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        if catalog.is_empty() {
            return Err(ServeError::InvalidConfig("tier catalog is empty".into()));
        }
        if schemes.is_empty() {
            return Err(ServeError::InvalidConfig(
                "scheme list is empty; it must at least contain the no-compression option".into(),
            ));
        }
        if schemes[0].ratio != 1.0 {
            return Err(ServeError::InvalidConfig(format!(
                "schemes[0] must be the no-compression option (ratio 1.0), got ratio {}",
                schemes[0].ratio
            )));
        }
        for (k, s) in schemes.iter().enumerate() {
            if !(s.ratio > 0.0) || !s.ratio.is_finite() {
                return Err(ServeError::InvalidConfig(format!(
                    "scheme {k} ({}) has invalid ratio {}",
                    s.name, s.ratio
                )));
            }
            if !(s.decompress_seconds >= 0.0) || !s.decompress_seconds.is_finite() {
                return Err(ServeError::InvalidConfig(format!(
                    "scheme {k} ({}) has invalid decompress_seconds {}",
                    s.name, s.decompress_seconds
                )));
            }
        }
        Ok(ServeEngine {
            config,
            catalog,
            schemes,
            shards: Vec::new(),
            account_ids: HashMap::new(),
            locs: Vec::new(),
            names: Vec::new(),
            name_ids: HashMap::new(),
            heat: Vec::new(),
            day: 0,
            dropped_events: 0,
            events_seen: 0,
            epoch: 0,
            quarantine: QuarantineLedger::default(),
            next_seq: 0,
            pending: BTreeMap::new(),
            duplicate_batches: 0,
        })
    }

    /// Upper bound on out-of-order batches the sequenced intake buffers
    /// while waiting for a gap to fill; the 65th is a typed
    /// [`ServeError::IntakeOverflow`].
    pub const MAX_PENDING_BATCHES: usize = 64;

    /// Register an object and return its interned id (the id to use in
    /// [`EventColumns::object_ids`]). Registration invalidates the owning
    /// shard's cost table — the next re-solve rebuilds that shard from
    /// scratch, since the problem shape changed.
    pub fn register(&mut self, spec: ServeObject) -> Result<u32, ServeError> {
        if self.name_ids.contains_key(&spec.name) {
            return Err(ServeError::DuplicateObject(spec.name));
        }
        if !(spec.size_gb > 0.0) || !spec.size_gb.is_finite() {
            return Err(ServeError::InvalidObject(format!(
                "object {} has invalid size {} GB",
                spec.name, spec.size_gb
            )));
        }
        if spec.current_tier.index() >= self.catalog.len() {
            return Err(ServeError::InvalidObject(format!(
                "object {} is on unknown tier {:?}",
                spec.name, spec.current_tier
            )));
        }
        if spec.compression >= self.schemes.len() {
            return Err(ServeError::InvalidObject(format!(
                "object {} uses compression scheme {} but only {} are registered",
                spec.name,
                spec.compression,
                self.schemes.len()
            )));
        }
        let shard_idx = match self.account_ids.get(&spec.account) {
            Some(&i) => i,
            None => {
                let i = self.shards.len();
                self.account_ids.insert(spec.account.clone(), i);
                self.shards.push(AccountShard {
                    account: spec.account.clone(),
                    problem: OptAssignProblem::new(
                        self.catalog.clone(),
                        Vec::new(),
                        self.config.horizon_months,
                    ),
                    table: None,
                    choices: Vec::new(),
                    dirty: Vec::new(),
                    failures: 0,
                    retry_after: 0,
                    stale: false,
                    last_assignment: None,
                });
                i
            }
        };
        let gid = self.locs.len() as u32;
        if gid == UNKNOWN_OBJECT {
            return Err(ServeError::InvalidObject(
                "object id space exhausted".into(),
            ));
        }
        let shard = &mut self.shards[shard_idx];
        let row = shard.problem.partitions.len();
        let mut partition = PartitionSpec::new(row, spec.name.clone(), spec.size_gb, 0.0)
            .with_current_tier(spec.current_tier)
            .with_residency_days(spec.residency_days);
        if spec.latency_threshold_seconds.is_finite() {
            partition = partition.with_latency_threshold(spec.latency_threshold_seconds);
        }
        partition.compression_options = self.schemes.clone();
        shard.problem.partitions.push(partition);
        shard.choices.push((spec.current_tier, spec.compression));
        // Shape changed: the dense table no longer matches the problem,
        // and the incumbent assignment no longer covers every row (a
        // degraded epoch right after a registration falls back to pricing
        // the per-row incumbent choices instead).
        shard.table = None;
        shard.dirty.clear();
        shard.last_assignment = None;
        self.locs.push((shard_idx as u32, row as u32));
        self.name_ids.insert(spec.name.clone(), gid);
        self.names.push(spec.name);
        self.heat.push(HeatState {
            value: 0.0,
            last_day: self.day,
        });
        Ok(gid)
    }

    /// Interned id of `name`, if registered.
    pub fn object_id(&self, name: &str) -> Option<u32> {
        self.name_ids.get(name).copied()
    }

    /// Name of object `id`, if it exists.
    pub fn object_name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Day the engine was last advanced to.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Cumulative out-of-horizon events dropped by [`Self::ingest`].
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// The malformed-event quarantine ledger.
    pub fn quarantine(&self) -> &QuarantineLedger {
        &self.quarantine
    }

    /// Lifetime count of events examined by the intake.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Epochs started (completed [`Self::reoptimize`] calls).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Next batch sequence number the sequenced intake will fold.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Out-of-order batches currently buffered by the sequenced intake.
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// Batches rejected as duplicates by the sequenced intake.
    pub fn duplicate_batches(&self) -> u64 {
        self.duplicate_batches
    }

    /// Accounts currently serving a stale incumbent (degraded), in
    /// account order.
    pub fn stale_accounts(&self) -> Vec<&str> {
        self.shards
            .iter()
            .filter(|s| s.stale)
            .map(|s| s.account.as_str())
            .collect()
    }

    /// Current decayed heat of object `id` (as of its last fold/advance).
    pub fn heat(&self, id: u32) -> Option<f64> {
        self.heat.get(id as usize).map(|h| h.value)
    }

    /// Current applied `(tier, scheme)` placement of object `id`.
    pub fn placement(&self, id: u32) -> Option<(TierId, usize)> {
        let &(shard, row) = self.locs.get(id as usize)?;
        Some(self.shards[shard as usize].choices[row as usize])
    }

    /// Resolve a name-keyed event trace against this engine's interned
    /// ids ([`UNKNOWN_OBJECT`] for unregistered names) — the serving
    /// analogue of the billing simulator's internal resolution step, so
    /// both see the identical id stream for a given trace.
    pub fn columns_from_events(&self, events: &[BillingEvent]) -> EventColumns {
        let mut columns = EventColumns::default();
        for e in events {
            let id = self.object_id(&e.object).unwrap_or(UNKNOWN_OBJECT);
            columns.push_resolved(e.day, id, e.kind, e.volume_gb);
        }
        columns
    }

    /// Fold an event batch into the per-object heat counters. No event is
    /// retained: memory stays `O(objects)` for arbitrarily long streams.
    ///
    /// The intake **validates** each event, mirroring the billing engine's
    /// check order exactly: the out-of-horizon drop check comes **first**
    /// (so a day-300 event for an unknown object still counts as dropped),
    /// then NaN/negative volumes are quarantined into the bounded
    /// [`QuarantineLedger`] (before object resolution — a corrupt volume
    /// is a corrupt trace even when it names an unknown object, the same
    /// order the billing engine rejects them in), then unknown ids are
    /// skipped. A torn batch whose parallel columns disagree in length is
    /// ingested up to the common prefix; the lost tail is counted in
    /// [`IngestReport::truncated`] and the ledger.
    ///
    /// Reads add 1 to the (decayed) heat; writes are folded but carry no
    /// read heat. Splitting a day-ordered stream into batches at any
    /// boundary yields identical state (heat, counters, and quarantine
    /// ledger), because decay is applied lazily per object from its own
    /// `last_day` and quarantine ordinals index the engine's lifetime
    /// event sequence.
    pub fn ingest(&mut self, columns: &EventColumns) -> IngestReport {
        let mut report = IngestReport::default();
        // Torn-batch defense: only the common prefix of the four columns
        // the intake reads is well-formed.
        let usable = columns
            .days
            .len()
            .min(columns.object_ids.len())
            .min(columns.kinds.len())
            .min(columns.volumes.len());
        let intended = columns
            .days
            .len()
            .max(columns.object_ids.len())
            .max(columns.kinds.len())
            .max(columns.volumes.len());
        if intended > usable {
            let torn = (intended - usable) as u64;
            report.truncated = torn;
            self.quarantine.record_truncated(torn);
        }
        for i in 0..usable {
            let ordinal = self.events_seen;
            self.events_seen += 1;
            let day = columns.days[i];
            if day >= self.config.horizon_days {
                report.dropped += 1;
                continue;
            }
            let volume = columns.volumes[i];
            if !volume.is_finite() || volume < 0.0 {
                self.quarantine.record(QuarantinedEvent {
                    ordinal,
                    day,
                    object_id: columns.object_ids[i],
                    volume_bits: volume.to_bits(),
                    reason: if volume.is_finite() {
                        QuarantineReason::NegativeVolume
                    } else {
                        QuarantineReason::NonFiniteVolume
                    },
                });
                report.quarantined += 1;
                continue;
            }
            let id = columns.object_ids[i] as usize;
            if id >= self.heat.len() {
                report.unknown += 1;
                continue;
            }
            let h = &mut self.heat[id];
            if day > h.last_day {
                h.value *= self.config.decay_per_day.powi((day - h.last_day) as i32);
                h.last_day = day;
            }
            if columns.kinds[i] == AccessKind::Read {
                h.value += 1.0;
            }
            report.folded += 1;
        }
        self.dropped_events += report.dropped;
        report
    }

    /// Exactly-once intake over an at-least-once delivery: fold batch
    /// `seq` if it is the next expected one (then drain any consecutive
    /// buffered successors), buffer it if it arrived early, and reject it
    /// as a duplicate if it was already folded or buffered.
    ///
    /// Sequence numbers are assigned by the producer, starting at 0. The
    /// reorder buffer holds at most [`Self::MAX_PENDING_BATCHES`] batches;
    /// past that, an early batch is a typed
    /// [`ServeError::IntakeOverflow`]. The engine state after any
    /// duplicated and/or locally reordered delivery of a batch stream is
    /// bit-for-bit identical to an in-order, exactly-once delivery —
    /// including heat, `dropped_events`, and the quarantine ledger.
    ///
    /// The returned report sums over every batch folded by this call
    /// (the argument plus drained buffered ones); duplicates and buffered
    /// early arrivals contribute nothing yet.
    pub fn ingest_sequenced(
        &mut self,
        seq: u64,
        columns: &EventColumns,
    ) -> Result<IngestReport, ServeError> {
        if seq < self.next_seq || self.pending.contains_key(&seq) {
            self.duplicate_batches += 1;
            return Ok(IngestReport::default());
        }
        if seq > self.next_seq {
            if self.pending.len() >= Self::MAX_PENDING_BATCHES {
                return Err(ServeError::IntakeOverflow {
                    expected_seq: self.next_seq,
                    got_seq: seq,
                });
            }
            self.pending.insert(seq, columns.clone());
            return Ok(IngestReport::default());
        }
        let mut report = self.ingest(columns);
        self.next_seq += 1;
        while let Some(buffered) = self.pending.remove(&self.next_seq) {
            report.merge(self.ingest(&buffered));
            self.next_seq += 1;
        }
        Ok(report)
    }

    /// Advance the engine clock to `day`: decay every heat counter to the
    /// boundary, re-bucket, and mark exactly the rows whose bucket
    /// representative changed as dirty. Days already passed are ignored
    /// per object (the clock never runs backwards).
    pub fn advance(&mut self, day: u32) {
        self.day = self.day.max(day);
        for id in 0..self.heat.len() {
            let h = &mut self.heat[id];
            if day > h.last_day {
                h.value *= self.config.decay_per_day.powi((day - h.last_day) as i32);
                h.last_day = day;
            }
            let (shard_idx, row) = self.locs[id];
            let shard = &mut self.shards[shard_idx as usize];
            let partition = &mut shard.problem.partitions[row as usize];
            let rep = partition.predicted_accesses;
            let base = self.config.bucket_base;
            let hyst = self.config.bucket_hysteresis;
            // Re-bucket only once the heat leaves the representative's
            // hysteresis band (at hysteresis 1.0 the band is exactly the
            // bucket, i.e. pure floor semantics).
            let stale = if rep == 0.0 {
                h.value >= hyst
            } else {
                h.value < rep / hyst || h.value >= rep * base * hyst
            };
            if stale {
                // Geometric bucket representative: 0 below one read, else
                // the largest power of `bucket_base` not exceeding the heat.
                let target = if h.value < 1.0 {
                    0.0
                } else {
                    base.powf(h.value.log(base).floor())
                };
                if target.to_bits() != rep.to_bits() {
                    partition.predicted_accesses = target;
                    shard.dirty.push(row as usize);
                }
            }
        }
    }

    /// Re-solve incrementally and apply the result: each account shard
    /// patches its dirty rows in place, re-decides (greedy per-row, or
    /// warm-started branch-and-bound under a node budget), and updates the
    /// incumbent; shards fan out over the deterministic parallel map and
    /// merge in account order, so the outcome is bit-for-bit identical for
    /// any thread count — and to [`crate::reference::full_resolve`] on the
    /// same state.
    pub fn reoptimize(&mut self) -> Result<ResolveOutcome, ServeError> {
        self.reoptimize_with_faults(&[])
    }

    /// [`Self::reoptimize`] under injected compute faults: `faults[i]`
    /// (when present and `Some`) makes shard `i`'s re-solve fail this
    /// epoch. A faulted — or genuinely failing — shard serves its stale
    /// incumbent instead (marked via [`AccountAssignment::stale`]), keeps
    /// its dirty worklist, and backs off a bounded, deterministic number
    /// of epochs (`0, 1, 3, 7, 7, ...` after successive failures) before
    /// retrying; the next healthy re-solve re-converges it to exactly the
    /// state [`crate::reference::full_resolve`] produces. Healthy shards
    /// are bit-for-bit unaffected by other shards' faults. Per-shard
    /// `Result`s propagate deterministically through the fan-out: only an
    /// unservable shard (no incumbent and no way to price one) fails the
    /// epoch, with the lowest-indexed shard's error winning.
    pub fn reoptimize_with_faults(
        &mut self,
        faults: &[Option<ShardFault>],
    ) -> Result<ResolveOutcome, ServeError> {
        let threads = if self.config.threads == 0 {
            default_threads()
        } else {
            self.config.threads
        };
        let node_budget = self.config.node_budget;
        self.epoch += 1;
        let deltas: Vec<Result<GuardedDelta, OptAssignError>> =
            parallel_map_mut_with_threads(&mut self.shards, threads, |i, shard| {
                shard.resolve_guarded(node_budget, faults.get(i).copied().flatten())
            });
        let mut outcome = ResolveOutcome {
            day: self.day,
            accounts: Vec::with_capacity(self.shards.len()),
            total_objective: 0.0,
            rows_patched: 0,
            retier_decisions: 0,
            objects: self.locs.len(),
            dropped_events: self.dropped_events,
            degraded_accounts: 0,
        };
        // Merge strictly in account order: the objective sum order is part
        // of the bit-for-bit contract with the reference path.
        for (shard, delta) in self.shards.iter().zip(deltas) {
            let delta = delta?;
            outcome.total_objective += delta.assignment.objective;
            outcome.rows_patched += delta.rows_patched;
            outcome.retier_decisions += delta.retier_decisions;
            outcome.degraded_accounts += usize::from(delta.degraded);
            outcome.accounts.push(AccountAssignment {
                account: shard.account.clone(),
                assignment: delta.assignment,
                stale: delta.stale,
            });
        }
        Ok(outcome)
    }

    /// The account shards, in registration order (crate-internal: the
    /// reference resolver walks the same problems cold).
    pub(crate) fn shards(&self) -> &[AccountShard] {
        &self.shards
    }
}

/// Crash-consistent checkpointing (see [`crate::checkpoint`] for the wire
/// format and the recovery equality contract).
impl ServeEngine {
    /// Serialize the engine's full dynamic state into a versioned,
    /// checksummed checkpoint. Two engines that would behave identically
    /// from here on produce byte-identical checkpoints (the dense cost
    /// table — a pure cache — is the only state not captured).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(config_fingerprint(&self.catalog, &self.schemes));
        // Configuration.
        w.u32(self.config.horizon_days);
        w.f64_bits(self.config.horizon_months);
        w.f64_bits(self.config.decay_per_day);
        w.f64_bits(self.config.bucket_base);
        w.f64_bits(self.config.bucket_hysteresis);
        w.u64(self.config.threads as u64);
        match self.config.node_budget {
            None => w.u8(0),
            Some(budget) => {
                w.u8(1);
                w.u64(budget);
            }
        }
        // Global counters.
        w.u32(self.day);
        w.u64(self.dropped_events);
        w.u64(self.events_seen);
        w.u64(self.epoch);
        w.u64(self.next_seq);
        w.u64(self.duplicate_batches);
        // Accounts, in shard order.
        w.u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.str(&shard.account);
        }
        // Objects, in interned-id order. Re-registering them in this order
        // on restore reproduces the identical shard/row layout.
        w.u64(self.locs.len() as u64);
        for gid in 0..self.locs.len() {
            let (shard_idx, row) = self.locs[gid];
            let shard = &self.shards[shard_idx as usize];
            let partition = &shard.problem.partitions[row as usize];
            let (tier, scheme) = shard.choices[row as usize];
            w.str(&self.names[gid]);
            w.u32(shard_idx);
            w.u64(tier.index() as u64);
            w.u64(scheme as u64);
            w.f64_bits(partition.size_gb);
            w.u32(partition.residency_days);
            w.f64_bits(partition.latency_threshold_seconds);
            w.f64_bits(partition.predicted_accesses);
            let h = &self.heat[gid];
            w.f64_bits(h.value);
            w.u32(h.last_day);
        }
        // Per-shard degraded-mode state.
        for shard in &self.shards {
            w.u32(shard.failures);
            w.u32(shard.retry_after);
            w.u8(u8::from(shard.stale));
            w.u64(shard.dirty.len() as u64);
            for &row in &shard.dirty {
                w.u64(row as u64);
            }
            match &shard.last_assignment {
                None => w.u8(0),
                Some(a) => {
                    w.u8(1);
                    w.u64(a.choices.len() as u64);
                    for &(tier, scheme) in &a.choices {
                        w.u64(tier.index() as u64);
                        w.u64(scheme as u64);
                    }
                    w.f64_bits(a.objective);
                    w.f64_bits(a.breakdown.storage);
                    w.f64_bits(a.breakdown.read);
                    w.f64_bits(a.breakdown.write);
                    w.f64_bits(a.breakdown.decompression);
                    w.f64_bits(a.breakdown.egress);
                }
            }
        }
        // Quarantine ledger.
        w.u64(self.quarantine.capacity() as u64);
        w.u64(self.quarantine.total());
        w.u64(self.quarantine.truncated());
        w.u64(self.quarantine.entries().len() as u64);
        for e in self.quarantine.entries() {
            w.u64(e.ordinal);
            w.u32(e.day);
            w.u32(e.object_id);
            w.u64(e.volume_bits);
            w.u8(e.reason.tag());
        }
        // Sequenced-intake reorder buffer (BTreeMap: deterministic order).
        w.u64(self.pending.len() as u64);
        for (&seq, cols) in &self.pending {
            w.u64(seq);
            w.u64(cols.days.len() as u64);
            for &d in &cols.days {
                w.u32(d);
            }
            w.u64(cols.periods.len() as u64);
            for &p in &cols.periods {
                w.u32(p);
            }
            w.u64(cols.object_ids.len() as u64);
            for &o in &cols.object_ids {
                w.u32(o);
            }
            w.u64(cols.kinds.len() as u64);
            for &k in &cols.kinds {
                w.u8(match k {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                });
            }
            w.u64(cols.volumes.len() as u64);
            for &v in &cols.volumes {
                w.f64_bits(v);
            }
        }
        w.finish()
    }

    /// Rebuild an engine from a [`Self::checkpoint`] taken under the same
    /// `catalog` and `schemes` (enforced via fingerprint). The restored
    /// engine, replayed forward over the surviving event stream, is
    /// bit-for-bit equal to one that never crashed; its first re-solve
    /// rebuilds the (unserialized) cost table from scratch, which is
    /// pinned bit-identical to the warm patched table.
    pub fn restore(
        catalog: TierCatalog,
        schemes: Vec<CompressionOption>,
        bytes: &[u8],
    ) -> Result<ServeEngine, ServeError> {
        let mut r = Reader::open(bytes)?;
        let fingerprint = r.u64()?;
        let expected = config_fingerprint(&catalog, &schemes);
        if fingerprint != expected {
            return Err(ServeError::Checkpoint(format!(
                "catalog/scheme fingerprint mismatch: checkpoint was taken under \
                 {fingerprint:#018x}, this configuration is {expected:#018x}"
            )));
        }
        let config = ServeConfig {
            horizon_days: r.u32()?,
            horizon_months: r.f64_bits()?,
            decay_per_day: r.f64_bits()?,
            bucket_base: r.f64_bits()?,
            bucket_hysteresis: r.f64_bits()?,
            threads: r.u64()? as usize,
            node_budget: match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                tag => return Err(ServeError::Checkpoint(format!("bad node_budget tag {tag}"))),
            },
        };
        let mut engine = ServeEngine::new(catalog, schemes, config)?;
        let day = r.u32()?;
        let dropped_events = r.u64()?;
        let events_seen = r.u64()?;
        let epoch = r.u64()?;
        let next_seq = r.u64()?;
        let duplicate_batches = r.u64()?;
        let n_accounts = r.len(1)?;
        let mut accounts = Vec::with_capacity(n_accounts);
        for _ in 0..n_accounts {
            accounts.push(r.str()?);
        }
        let n_objects = r.len(8)?;
        for gid in 0..n_objects {
            let name = r.str()?;
            let shard_idx = r.u32()? as usize;
            let account = accounts.get(shard_idx).ok_or_else(|| {
                ServeError::Checkpoint(format!(
                    "object {name:?} references shard {shard_idx} but only \
                     {n_accounts} accounts exist"
                ))
            })?;
            let tier = TierId(r.u64()? as usize);
            let scheme = r.u64()? as usize;
            let spec = ServeObject {
                name,
                account: account.clone(),
                size_gb: r.f64_bits()?,
                current_tier: tier,
                compression: scheme,
                residency_days: r.u32()?,
                latency_threshold_seconds: r.f64_bits()?,
            };
            let got = engine.register(spec)?;
            if got as usize != gid {
                return Err(ServeError::Checkpoint(format!(
                    "object order corrupted: expected id {gid}, interned as {got}"
                )));
            }
            let (s, row) = engine.locs[gid];
            engine.shards[s as usize].problem.partitions[row as usize].predicted_accesses =
                r.f64_bits()?;
            engine.heat[gid] = HeatState {
                value: r.f64_bits()?,
                last_day: r.u32()?,
            };
        }
        if engine.shards.len() != n_accounts {
            return Err(ServeError::Checkpoint(format!(
                "{n_accounts} accounts declared but {} materialized (an account \
                 with no objects cannot exist)",
                engine.shards.len()
            )));
        }
        for i in 0..n_accounts {
            let failures = r.u32()?;
            let retry_after = r.u32()?;
            let stale = match r.u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(ServeError::Checkpoint(format!("bad stale tag {tag}")));
                }
            };
            let rows = engine.shards[i].problem.partitions.len();
            let n_dirty = r.len(8)?;
            let mut dirty = Vec::with_capacity(n_dirty);
            for _ in 0..n_dirty {
                let row = r.u64()? as usize;
                if row >= rows {
                    return Err(ServeError::Checkpoint(format!(
                        "dirty row {row} out of range for shard {i} ({rows} rows)"
                    )));
                }
                dirty.push(row);
            }
            let last_assignment = match r.u8()? {
                0 => None,
                1 => {
                    let n_choices = r.len(16)?;
                    if n_choices != rows {
                        return Err(ServeError::Checkpoint(format!(
                            "incumbent assignment for shard {i} covers {n_choices} \
                             rows, shard has {rows}"
                        )));
                    }
                    let mut choices = Vec::with_capacity(n_choices);
                    for _ in 0..n_choices {
                        choices.push((TierId(r.u64()? as usize), r.u64()? as usize));
                    }
                    Some(Assignment {
                        choices,
                        objective: r.f64_bits()?,
                        breakdown: CostBreakdown {
                            storage: r.f64_bits()?,
                            read: r.f64_bits()?,
                            write: r.f64_bits()?,
                            decompression: r.f64_bits()?,
                            egress: r.f64_bits()?,
                        },
                    })
                }
                tag => {
                    return Err(ServeError::Checkpoint(format!(
                        "bad incumbent-assignment tag {tag}"
                    )));
                }
            };
            let shard = &mut engine.shards[i];
            shard.failures = failures;
            shard.retry_after = retry_after;
            shard.stale = stale;
            shard.dirty = dirty;
            shard.last_assignment = last_assignment;
        }
        // The capacity is a configured bound, not an element count — no
        // allocation is sized from it, so it is read unguarded.
        let capacity = r.u64()? as usize;
        let q_total = r.u64()?;
        let q_truncated = r.u64()?;
        let n_entries = r.len(25)?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            entries.push(QuarantinedEvent {
                ordinal: r.u64()?,
                day: r.u32()?,
                object_id: r.u32()?,
                volume_bits: r.u64()?,
                reason: QuarantineReason::from_tag(r.u8()?)
                    .ok_or_else(|| ServeError::Checkpoint("bad quarantine reason tag".into()))?,
            });
        }
        engine.quarantine = QuarantineLedger::from_parts(entries, capacity, q_total, q_truncated);
        let n_pending = r.len(8)?;
        for _ in 0..n_pending {
            let seq = r.u64()?;
            let mut cols = EventColumns::default();
            let n = r.len(4)?;
            for _ in 0..n {
                cols.days.push(r.u32()?);
            }
            let n = r.len(4)?;
            for _ in 0..n {
                cols.periods.push(r.u32()?);
            }
            let n = r.len(4)?;
            for _ in 0..n {
                cols.object_ids.push(r.u32()?);
            }
            let n = r.len(1)?;
            for _ in 0..n {
                cols.kinds.push(match r.u8()? {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    tag => {
                        return Err(ServeError::Checkpoint(format!("bad access-kind tag {tag}")));
                    }
                });
            }
            let n = r.len(8)?;
            for _ in 0..n {
                cols.volumes.push(r.f64_bits()?);
            }
            engine.pending.insert(seq, cols);
        }
        r.expect_end()?;
        engine.day = day;
        engine.dropped_events = dropped_events;
        engine.events_seen = events_seen;
        engine.epoch = epoch;
        engine.next_seq = next_seq;
        engine.duplicate_batches = duplicate_batches;
        Ok(engine)
    }
}

impl AccountShard {
    /// One guarded shard re-solve: honor backoff, inject `fault`, fall
    /// back to the incumbent on any failure, and only then attempt the
    /// real [`Self::resolve`]. A degraded epoch leaves the cost table and
    /// dirty worklist untouched, so the next healthy epoch re-converges
    /// over everything that accumulated — exactly what a cold
    /// `full_resolve` over the same state would decide.
    fn resolve_guarded(
        &mut self,
        node_budget: Option<u64>,
        fault: Option<ShardFault>,
    ) -> Result<GuardedDelta, OptAssignError> {
        if self.retry_after > 0 {
            // Backing off: serve the incumbent without attempting a solve.
            self.retry_after -= 1;
            return self.incumbent_delta();
        }
        if fault.is_some() {
            // Injected compute fault (solver failure or deadline overrun):
            // the result is discarded before any state is touched.
            self.note_failure();
            return self.incumbent_delta();
        }
        match self.resolve(node_budget) {
            Ok(delta) => {
                self.failures = 0;
                self.retry_after = 0;
                self.stale = false;
                self.last_assignment = Some(delta.assignment.clone());
                Ok(GuardedDelta {
                    assignment: delta.assignment,
                    rows_patched: delta.rows_patched,
                    retier_decisions: delta.retier_decisions,
                    degraded: false,
                    stale: false,
                })
            }
            Err(_) => {
                // Genuine solver failure: degrade exactly like an injected
                // one. The error itself is recoverable (the incumbent
                // keeps serving); only an unservable shard errors out of
                // `incumbent_delta` below.
                self.note_failure();
                self.incumbent_delta()
            }
        }
    }

    /// Record one failed/faulted re-solve: bump the consecutive-failure
    /// count and arm the bounded deterministic backoff (`0, 1, 3, 7, 7,
    /// ...` epochs skipped after the 1st, 2nd, 3rd, 4th+ consecutive
    /// failure — capped so a recovering shard is never more than 8 epochs
    /// from its next attempt).
    fn note_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
        self.retry_after = (1u32 << (self.failures - 1).min(3)) - 1;
        self.stale = true;
    }

    /// The degraded serve: the last healthy assignment verbatim, or —
    /// before any re-solve ever succeeded — the registered per-row
    /// incumbent choices priced fresh.
    fn incumbent_delta(&mut self) -> Result<GuardedDelta, OptAssignError> {
        let assignment = match &self.last_assignment {
            Some(a) => a.clone(),
            None => Assignment::from_choices(&self.problem, self.choices.clone())?,
        };
        Ok(GuardedDelta {
            assignment,
            rows_patched: 0,
            retier_decisions: 0,
            degraded: true,
            stale: self.stale,
        })
    }

    /// One shard re-solve: patch stale rows, re-decide, apply. The dirty
    /// worklist is consumed only after every fallible step succeeded.
    fn resolve(&mut self, node_budget: Option<u64>) -> Result<ShardDelta, OptAssignError> {
        self.dirty.sort_unstable();
        self.dirty.dedup();
        let n = self.problem.partitions.len();
        let rows_patched;
        let choices = match &mut self.table {
            None => {
                // Cold start (first resolve, or the shape changed after a
                // registration): full build, full decide.
                self.problem.validate()?;
                let table = CostTable::build(&self.problem);
                rows_patched = n;
                let choices = match node_budget {
                    None => greedy_choices(&table, &self.problem, 0..n, None)?,
                    Some(budget) => {
                        // The cold branch-and-bound builds its own table
                        // internally; its rows are bit-identical to ours,
                        // so adopting its choices keeps the two in lockstep.
                        let (assignment, _) = solve_branch_and_bound(&self.problem, budget)?;
                        assignment.choices
                    }
                };
                self.table = Some(table);
                choices
            }
            Some(table) => {
                // Re-patching an already-patched row reproduces the same
                // bits, so retrying after a failure here is idempotent.
                table.patch_rows(&self.problem, &self.dirty)?;
                rows_patched = self.dirty.len();
                match node_budget {
                    None => greedy_choices(
                        table,
                        &self.problem,
                        self.dirty.iter().copied(),
                        Some(self.choices.clone()),
                    )?,
                    Some(budget) => {
                        // The incumbent stays feasible across heat changes
                        // (feasibility depends only on latency thresholds
                        // and sizes, which never change here), so it seeds
                        // the warm search directly.
                        let (assignment, _) = solve_branch_and_bound_warm(
                            &self.problem,
                            table,
                            &self.choices,
                            budget,
                        )?;
                        assignment.choices
                    }
                }
            }
        };
        let Some(table) = self.table.as_ref() else {
            return Err(OptAssignError::InvalidProblem(
                "shard lost its cost table mid-resolve".into(),
            ));
        };
        let assignment = table.assignment(&self.problem, choices.clone())?;
        // Success: the worklist is consumed, then applied moves re-dirty
        // their rows for the next epoch.
        self.dirty.clear();
        let mut retier_decisions = 0;
        for (row, (&new, &old)) in choices.iter().zip(&self.choices).enumerate() {
            if new != old {
                retier_decisions += 1;
                // Applying the move changes the row's transition costs
                // (they are priced from current_tier), so the row is stale
                // for the *next* epoch.
                self.problem.partitions[row].current_tier = Some(new.0);
                self.dirty.push(row);
            }
        }
        self.choices = choices;
        Ok(ShardDelta {
            assignment,
            rows_patched,
            retier_decisions,
        })
    }
}

/// Per-row greedy decisions over `rows`, starting from `seed` (or empty
/// choices when re-deciding everything). Uses [`CostTable::min_feasible`],
/// the exact rule `solve_greedy` applies — first minimum in tier-major
/// order — so incremental and batch paths tie-break identically.
fn greedy_choices(
    table: &CostTable,
    problem: &OptAssignProblem,
    rows: impl Iterator<Item = usize>,
    seed: Option<Vec<(TierId, usize)>>,
) -> Result<Vec<(TierId, usize)>, OptAssignError> {
    let mut choices = seed.unwrap_or_else(|| vec![(TierId(0), 0); problem.partitions.len()]);
    for row in rows {
        match table.min_feasible(row) {
            Some((_, tier, scheme)) => choices[row] = (tier, scheme),
            None => {
                return Err(OptAssignError::InfeasiblePartition {
                    partition: problem.partitions[row].id,
                    name: problem.partitions[row].name.clone(),
                })
            }
        }
    }
    Ok(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use scope_cloudsim::{BillingSimulator, ObjectSpec, Placement};

    fn schemes() -> Vec<CompressionOption> {
        vec![
            CompressionOption::none(),
            CompressionOption::new("gzip", 3.5, 1.5),
            CompressionOption::new("zstd", 2.4, 0.35),
        ]
    }

    /// Deterministic LCG so traces are reproducible without the rand shim.
    fn lcg(state: &mut u64) -> u32 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) as u32
    }

    /// Engine with `accounts * per_account` objects of distinct sizes;
    /// every third object gets a tight latency threshold (excludes the
    /// archive tier), sizes/residencies vary deterministically.
    fn demo_engine(accounts: usize, per_account: usize, config: ServeConfig) -> ServeEngine {
        let mut engine = ServeEngine::new(
            scope_cloudsim::TierCatalog::azure_hot_cool_archive(),
            schemes(),
            config,
        )
        .unwrap();
        for a in 0..accounts {
            for o in 0..per_account {
                let gid = a * per_account + o;
                let mut spec = ServeObject::new(
                    format!("obj-{a}-{o}"),
                    format!("acct-{a}"),
                    1.0 + gid as f64 * 0.37,
                    TierId(gid % 2),
                )
                .with_residency_days((gid as u32 * 11) % 200);
                if gid % 3 == 0 {
                    spec = spec.with_latency_threshold(2.0);
                }
                engine.register(spec).unwrap();
            }
        }
        engine
    }

    /// A day-ordered read/write trace over the engine's objects, with a
    /// skewed access distribution so heats diverge across buckets.
    fn demo_trace(engine: &ServeEngine, days: u32, events_per_day: usize) -> Vec<BillingEvent> {
        let mut state = 0x5eed_cafe_u64;
        let n = engine.len() as u32;
        let mut events = Vec::new();
        for day in 0..days {
            for _ in 0..events_per_day {
                // Square the draw to skew toward low ids (hot objects).
                let draw = lcg(&mut state) % n;
                let id = (u64::from(draw) * u64::from(draw) / u64::from(n)) as u32;
                let name = engine.object_name(id.min(n - 1)).unwrap().to_string();
                let volume = 0.05 + f64::from(lcg(&mut state) % 100) / 200.0;
                if lcg(&mut state) % 10 == 0 {
                    events.push(BillingEvent::write(name, day, volume));
                } else {
                    events.push(BillingEvent::read(name, day, volume));
                }
            }
        }
        events
    }

    fn assert_outcome_matches_reference(
        outcome: &ResolveOutcome,
        reference: &[AccountAssignment],
        epoch: usize,
    ) {
        assert_eq!(outcome.accounts.len(), reference.len(), "epoch {epoch}");
        for (inc, cold) in outcome.accounts.iter().zip(reference) {
            assert_eq!(inc.account, cold.account, "epoch {epoch}");
            assert_eq!(
                inc.assignment.choices, cold.assignment.choices,
                "epoch {epoch}: choices diverged for {}",
                inc.account
            );
            assert_eq!(
                inc.assignment.objective.to_bits(),
                cold.assignment.objective.to_bits(),
                "epoch {epoch}: objective bits diverged for {}",
                inc.account
            );
        }
        assert_eq!(
            outcome.total_objective.to_bits(),
            reference::total_objective(reference).to_bits(),
            "epoch {epoch}: total objective diverged"
        );
    }

    #[test]
    fn config_and_registration_are_validated() {
        let bad = ServeConfig {
            decay_per_day: 1.5,
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::InvalidConfig(_))));
        let bad = ServeConfig {
            bucket_base: 1.0,
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::InvalidConfig(_))));

        let catalog = scope_cloudsim::TierCatalog::azure_hot_cool_archive();
        // schemes[0] must be the identity scheme.
        assert!(ServeEngine::new(
            catalog.clone(),
            vec![CompressionOption::new("gzip", 3.5, 1.5)],
            ServeConfig::default(),
        )
        .is_err());

        let mut engine = ServeEngine::new(catalog, schemes(), ServeConfig::default()).unwrap();
        engine
            .register(ServeObject::new("a", "acct", 1.0, TierId(0)))
            .unwrap();
        assert!(matches!(
            engine.register(ServeObject::new("a", "acct", 2.0, TierId(0))),
            Err(ServeError::DuplicateObject(_))
        ));
        assert!(matches!(
            engine.register(ServeObject::new("b", "acct", -1.0, TierId(0))),
            Err(ServeError::InvalidObject(_))
        ));
        assert!(matches!(
            engine.register(ServeObject::new("c", "acct", 1.0, TierId(9))),
            Err(ServeError::InvalidObject(_))
        ));
        assert!(matches!(
            engine.register(ServeObject::new("d", "acct", 1.0, TierId(0)).with_compression(7)),
            Err(ServeError::InvalidObject(_))
        ));
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.object_id("a"), Some(0));
        assert_eq!(engine.object_name(0), Some("a"));
        assert_eq!(engine.placement(0), Some((TierId(0), 0)));
    }

    #[test]
    fn ingest_mirrors_billing_dropped_events_exactly() {
        let catalog = scope_cloudsim::TierCatalog::azure_hot_cool_archive();
        let config = ServeConfig {
            horizon_days: 60,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(catalog.clone(), schemes(), config).unwrap();
        engine
            .register(ServeObject::new("a", "acct", 10.0, TierId(0)))
            .unwrap();
        engine
            .register(ServeObject::new("b", "acct", 4.0, TierId(1)))
            .unwrap();

        let mut sim = BillingSimulator::new(catalog);
        sim.place(
            ObjectSpec::new("a", 10.0).on_tier(TierId(0)),
            Placement::uncompressed(TierId(0)),
        )
        .unwrap();
        sim.place(
            ObjectSpec::new("b", 4.0).on_tier(TierId(1)),
            Placement::uncompressed(TierId(1)),
        )
        .unwrap();

        // In-horizon reads/writes, out-of-horizon events (including one for
        // an unknown object — the drop check precedes object resolution in
        // both engines), and an in-horizon unknown (skipped, not dropped).
        let events = vec![
            BillingEvent::read("a", 3, 1.0),
            BillingEvent::write("b", 10, 0.5),
            BillingEvent::read("a", 59, 2.0),
            BillingEvent::read("a", 60, 1.0),
            BillingEvent::read("ghost", 61, 1.0),
            BillingEvent::write("b", 300, 0.1),
            BillingEvent::read("ghost", 12, 1.0),
        ];
        let report = sim.run_days(60, &events).unwrap();
        let columns = engine.columns_from_events(&events);
        let ingest = engine.ingest(&columns);

        assert_eq!(ingest.dropped, 3);
        assert_eq!(ingest.unknown, 1);
        assert_eq!(ingest.folded, 3);
        assert_eq!(report.dropped_events, engine.dropped_events());
        // Cumulative across batches: a replay of the same columns doubles it.
        engine.ingest(&columns);
        assert_eq!(engine.dropped_events(), 2 * report.dropped_events);
    }

    #[test]
    fn ingest_is_invariant_under_batch_splits() {
        let config = ServeConfig::default();
        let mut whole = demo_engine(2, 12, config.clone());
        let mut split = demo_engine(2, 12, config);
        let events = demo_trace(&whole, 90, 40);
        let columns = whole.columns_from_events(&events);

        whole.ingest(&columns);
        for (lo, hi) in [(0, 13), (13, 40), (40, 90)] {
            split.ingest(&columns.filter_day_range(lo, hi));
        }
        for id in 0..whole.len() as u32 {
            assert_eq!(
                whole.heat(id).unwrap().to_bits(),
                split.heat(id).unwrap().to_bits(),
                "heat diverged for object {id}"
            );
        }
        assert_eq!(whole.dropped_events(), split.dropped_events());
    }

    #[test]
    fn incremental_resolve_matches_cold_reference_on_every_epoch() {
        let mut engine = demo_engine(3, 10, ServeConfig::default());
        let events = demo_trace(&engine, 90, 60);
        let columns = engine.columns_from_events(&events);
        let full_rows = engine.len();

        let mut later_rows_patched = 0;
        for epoch in 0..6 {
            let (lo, hi) = (epoch as u32 * 15, epoch as u32 * 15 + 15);
            engine.ingest(&columns.filter_day_range(lo, hi));
            engine.advance(hi);
            let cold = reference::full_resolve(&engine).unwrap();
            let outcome = engine.reoptimize().unwrap();
            assert_outcome_matches_reference(&outcome, &cold, epoch);
            assert_eq!(outcome.day, hi);
            assert_eq!(outcome.objects, engine.len());
            if epoch == 0 {
                // Cold start evaluates every row once.
                assert_eq!(outcome.rows_patched, full_rows);
            } else {
                later_rows_patched += outcome.rows_patched;
            }
        }
        // The steady state is a *delta* path: bucketing must absorb most
        // heat drift, so warm epochs patch far fewer rows than full
        // rebuilds would (5 warm epochs x 30 rows = 150 ceiling).
        assert!(
            later_rows_patched < 5 * full_rows / 2,
            "warm epochs patched {later_rows_patched} rows; delta path is not delta"
        );
    }

    #[test]
    fn registration_mid_stream_forces_a_cold_rebuild_and_stays_consistent() {
        let mut engine = demo_engine(2, 6, ServeConfig::default());
        let events = demo_trace(&engine, 60, 30);
        let columns = engine.columns_from_events(&events);
        for epoch in 0..4 {
            let (lo, hi) = (epoch * 15, epoch * 15 + 15);
            engine.ingest(&columns.filter_day_range(lo, hi));
            engine.advance(hi);
            if epoch == 2 {
                // Shape change: the owning shard must rebuild, the other
                // shard keeps its warm table, and both still match the
                // cold reference.
                engine
                    .register(
                        ServeObject::new("late-arrival", "acct-0", 42.5, TierId(0))
                            .with_residency_days(7),
                    )
                    .unwrap();
            }
            let cold = reference::full_resolve(&engine).unwrap();
            let outcome = engine.reoptimize().unwrap();
            assert_outcome_matches_reference(&outcome, &cold, epoch as usize);
        }
        let late = engine.object_id("late-arrival").unwrap();
        assert!(engine.placement(late).is_some());
    }

    /// One epoch's digest: per-account choices plus the total-objective bits.
    type EpochDigest = Vec<(Vec<(TierId, usize)>, u64)>;

    #[test]
    fn resolve_outcome_is_thread_count_independent() {
        let mut outcomes: Vec<EpochDigest> = Vec::new();
        for threads in [1usize, 3, 8] {
            let config = ServeConfig {
                threads,
                ..ServeConfig::default()
            };
            let mut engine = demo_engine(4, 7, config);
            let events = demo_trace(&engine, 60, 50);
            let columns = engine.columns_from_events(&events);
            let mut per_epoch = Vec::new();
            for epoch in 0..4u32 {
                let (lo, hi) = (epoch * 15, epoch * 15 + 15);
                engine.ingest(&columns.filter_day_range(lo, hi));
                engine.advance(hi);
                let outcome = engine.reoptimize().unwrap();
                per_epoch.push((
                    outcome
                        .accounts
                        .iter()
                        .flat_map(|a| a.assignment.choices.iter().copied())
                        .collect::<Vec<_>>(),
                    outcome.total_objective.to_bits(),
                ));
            }
            outcomes.push(per_epoch);
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "threads=3 diverged from sequential"
        );
        assert_eq!(
            outcomes[0], outcomes[2],
            "threads=8 diverged from sequential"
        );
    }

    #[test]
    fn warm_branch_and_bound_mode_matches_cold_reference_under_capacity() {
        use scope_cloudsim::Tier;
        // A capacity-constrained premium tier couples the partitions, so
        // per-row greedy is wrong and the engine must run warm-started
        // branch-and-bound seeded from the incumbent.
        let catalog = scope_cloudsim::TierCatalog::new(vec![
            Tier::new("premium", 12.0, 0.01, 0.02, 0.005).with_capacity_gb(26.0),
            Tier::new("standard", 2.0, 0.9, 0.05, 0.2),
            Tier::new("cold", 0.4, 8.0, 0.05, 15.0),
        ])
        .unwrap();
        let config = ServeConfig {
            node_budget: Some(200_000),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(catalog, schemes(), config).unwrap();
        for (i, size) in [10.0, 9.0, 7.0, 5.0, 4.0, 2.5, 1.5, 13.0]
            .iter()
            .enumerate()
        {
            let account = if i % 2 == 0 { "acct-a" } else { "acct-b" };
            let mut spec = ServeObject::new(format!("obj-{i}"), account, *size, TierId(1));
            if i % 3 == 0 {
                spec = spec.with_latency_threshold(1.0);
            }
            engine.register(spec).unwrap();
        }
        let events = demo_trace(&engine, 60, 40);
        let columns = engine.columns_from_events(&events);
        for epoch in 0..4u32 {
            let (lo, hi) = (epoch * 15, epoch * 15 + 15);
            engine.ingest(&columns.filter_day_range(lo, hi));
            engine.advance(hi);
            let cold = reference::full_resolve(&engine).unwrap();
            let outcome = engine.reoptimize().unwrap();
            assert_outcome_matches_reference(&outcome, &cold, epoch as usize);
        }
    }

    #[test]
    fn quarantine_is_ordered_and_invariant_under_batch_splits() {
        let config = ServeConfig::default();
        let mut whole = demo_engine(2, 6, config.clone());
        let mut split = demo_engine(2, 6, config);
        // Interleave corrupt volumes (NaN with a payload, -inf, negative)
        // with healthy traffic, plus one corrupt event naming an unknown
        // object and one past the horizon (dropped, not quarantined).
        let mut columns = EventColumns::default();
        columns.push_resolved(1, 0, AccessKind::Read, 1.0);
        columns.push_resolved(
            2,
            1,
            AccessKind::Read,
            f64::from_bits(0x7ff8_0000_0000_beef),
        );
        columns.push_resolved(3, 2, AccessKind::Write, 0.5);
        columns.push_resolved(4, UNKNOWN_OBJECT, AccessKind::Read, -3.5);
        columns.push_resolved(5, 3, AccessKind::Read, f64::NEG_INFINITY);
        columns.push_resolved(500, 0, AccessKind::Read, f64::NAN);
        columns.push_resolved(6, 4, AccessKind::Read, 2.0);

        let report = whole.ingest(&columns);
        assert_eq!(report.folded, 3);
        assert_eq!(report.quarantined, 3);
        assert_eq!(report.dropped, 1);
        let entries = whole.quarantine().entries();
        assert_eq!(entries.len(), 3);
        // Ordinals index the lifetime intake sequence, in arrival order.
        assert_eq!(entries[0].ordinal, 1);
        assert_eq!(entries[0].reason, QuarantineReason::NonFiniteVolume);
        assert_eq!(entries[0].volume_bits, 0x7ff8_0000_0000_beef);
        assert_eq!(entries[1].ordinal, 3);
        assert_eq!(entries[1].reason, QuarantineReason::NegativeVolume);
        assert_eq!(entries[1].object_id, UNKNOWN_OBJECT);
        assert_eq!(entries[2].ordinal, 4);
        // Quarantined events never touch heat.
        assert_eq!(whole.heat(1).unwrap().to_bits(), 0.0f64.to_bits());
        assert_eq!(whole.heat(3).unwrap().to_bits(), 0.0f64.to_bits());

        // Any batch split yields a bit-identical ledger and counters.
        for (lo, hi) in [(0usize, 2), (2, 3), (3, 7)] {
            let mut part = EventColumns::default();
            for i in lo..hi {
                part.push_resolved(
                    columns.days[i],
                    columns.object_ids[i],
                    columns.kinds[i],
                    columns.volumes[i],
                );
            }
            split.ingest(&part);
        }
        assert_eq!(whole.quarantine(), split.quarantine());
        assert_eq!(whole.events_seen(), split.events_seen());
        assert_eq!(whole.dropped_events(), split.dropped_events());
    }

    #[test]
    fn torn_batches_ingest_the_common_prefix_and_count_the_tail() {
        let mut engine = demo_engine(1, 4, ServeConfig::default());
        let mut columns = EventColumns::default();
        columns.push_resolved(1, 0, AccessKind::Read, 1.0);
        columns.push_resolved(2, 1, AccessKind::Read, 1.0);
        columns.push_resolved(3, 2, AccessKind::Read, 1.0);
        // Tear the last two events' volumes (and one kind) off.
        columns.volumes.truncate(1);
        columns.kinds.truncate(2);
        let report = engine.ingest(&columns);
        assert_eq!(report.folded, 1);
        assert_eq!(report.truncated, 2);
        assert_eq!(engine.quarantine().truncated(), 2);
        assert_eq!(engine.events_seen(), 1);
        assert!(engine.heat(0).unwrap() > 0.0);
        assert_eq!(engine.heat(1).unwrap().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn sequenced_intake_is_exactly_once_under_duplication_and_reordering() {
        let config = ServeConfig::default();
        let mut ordered = demo_engine(2, 8, config.clone());
        let mut chaotic = demo_engine(2, 8, config);
        let events = demo_trace(&ordered, 60, 30);
        let columns = ordered.columns_from_events(&events);
        let batches: Vec<EventColumns> = (0..4)
            .map(|i| columns.filter_day_range(i * 15, i * 15 + 15))
            .collect();

        for (seq, batch) in batches.iter().enumerate() {
            ordered.ingest_sequenced(seq as u64, batch).unwrap();
        }
        // Duplicated + locally reordered delivery: 2 early, then the gap
        // filler (drains 0..=2), a stale duplicate, a buffered duplicate
        // case, and the tail.
        chaotic.ingest_sequenced(2, &batches[2]).unwrap();
        chaotic.ingest_sequenced(1, &batches[1]).unwrap();
        chaotic.ingest_sequenced(1, &batches[1]).unwrap(); // buffered dup
        let drained = chaotic.ingest_sequenced(0, &batches[0]).unwrap();
        assert!(drained.folded > 0);
        chaotic.ingest_sequenced(0, &batches[0]).unwrap(); // folded dup
        chaotic.ingest_sequenced(3, &batches[3]).unwrap();
        assert_eq!(chaotic.duplicate_batches(), 2);
        assert_eq!(chaotic.pending_batches(), 0);
        assert_eq!(chaotic.next_seq(), ordered.next_seq());

        for id in 0..ordered.len() as u32 {
            assert_eq!(
                ordered.heat(id).unwrap().to_bits(),
                chaotic.heat(id).unwrap().to_bits(),
                "heat diverged for object {id}"
            );
        }
        assert_eq!(ordered.dropped_events(), chaotic.dropped_events());
        assert_eq!(ordered.quarantine(), chaotic.quarantine());
    }

    #[test]
    fn sequenced_intake_bounds_the_reorder_buffer() {
        let mut engine = demo_engine(1, 2, ServeConfig::default());
        let mut batch = EventColumns::default();
        batch.push_resolved(1, 0, AccessKind::Read, 1.0);
        for seq in 1..=ServeEngine::MAX_PENDING_BATCHES as u64 {
            engine.ingest_sequenced(seq, &batch).unwrap();
        }
        assert_eq!(engine.pending_batches(), ServeEngine::MAX_PENDING_BATCHES);
        let err = engine
            .ingest_sequenced(ServeEngine::MAX_PENDING_BATCHES as u64 + 1, &batch)
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::IntakeOverflow {
                expected_seq: 0,
                got_seq: ServeEngine::MAX_PENDING_BATCHES as u64 + 1,
            }
        );
        // Filling the gap drains the whole buffer.
        let report = engine.ingest_sequenced(0, &batch).unwrap();
        assert_eq!(report.folded, 1 + ServeEngine::MAX_PENDING_BATCHES as u64);
        assert_eq!(engine.pending_batches(), 0);
    }

    #[test]
    fn faulted_shards_serve_the_incumbent_and_reconverge_after_backoff() {
        let mut engine = demo_engine(3, 8, ServeConfig::default());
        let events = demo_trace(&engine, 90, 60);
        let columns = engine.columns_from_events(&events);

        // Epoch 1: healthy cold start.
        engine.ingest(&columns.filter_day_range(0, 15));
        engine.advance(15);
        let healthy = engine.reoptimize().unwrap();
        assert_eq!(healthy.degraded_accounts, 0);

        // Epochs 2-3: shard 1 faults repeatedly. It serves its last healthy
        // assignment verbatim; the other shards keep matching the cold
        // reference on the live state.
        let faults = [None, Some(ShardFault::SolveFailure), None];
        let mut last_good = healthy.accounts[1].assignment.clone();
        for epoch in 2..4u32 {
            let (lo, hi) = (epoch * 15 - 15, epoch * 15);
            engine.ingest(&columns.filter_day_range(lo, hi));
            engine.advance(hi);
            let cold = reference::full_resolve(&engine).unwrap();
            let outcome = engine.reoptimize_with_faults(&faults).unwrap();
            assert_eq!(outcome.degraded_accounts, 1);
            assert!(outcome.accounts[1].stale);
            assert_eq!(outcome.accounts[1].assignment.choices, last_good.choices);
            assert_eq!(
                outcome.accounts[1].assignment.objective.to_bits(),
                last_good.objective.to_bits(),
                "degraded shard must serve the incumbent bit-for-bit"
            );
            last_good = outcome.accounts[1].assignment.clone();
            for i in [0usize, 2] {
                assert_eq!(
                    outcome.accounts[i].assignment.choices,
                    cold[i].assignment.choices
                );
                assert_eq!(
                    outcome.accounts[i].assignment.objective.to_bits(),
                    cold[i].assignment.objective.to_bits(),
                    "healthy shard {i} must be unaffected by shard 1's fault"
                );
                assert!(!outcome.accounts[i].stale);
            }
            assert_eq!(engine.stale_accounts(), vec!["acct-1"]);
        }

        // After 2 consecutive failures the backoff is 1 epoch: the next
        // epoch is skipped even though no fault is injected.
        engine.ingest(&columns.filter_day_range(45, 60));
        engine.advance(60);
        let outcome = engine.reoptimize().unwrap();
        assert_eq!(outcome.degraded_accounts, 1);
        assert!(outcome.accounts[1].stale);

        // Backoff expired: the next healthy epoch re-converges shard 1 to
        // exactly what the cold reference decides over the full state.
        engine.ingest(&columns.filter_day_range(60, 75));
        engine.advance(75);
        let cold = reference::full_resolve(&engine).unwrap();
        let outcome = engine.reoptimize().unwrap();
        assert_eq!(outcome.degraded_accounts, 0);
        assert_outcome_matches_reference(&outcome, &cold, 5);
        assert!(engine.stale_accounts().is_empty());
    }

    #[test]
    fn deadline_overrun_degrades_like_a_solve_failure() {
        let mut engine = demo_engine(2, 5, ServeConfig::default());
        let first = engine.reoptimize().unwrap();
        let faults = [Some(ShardFault::DeadlineOverrun), None];
        let outcome = engine.reoptimize_with_faults(&faults).unwrap();
        assert_eq!(outcome.degraded_accounts, 1);
        assert!(outcome.accounts[0].stale);
        assert_eq!(
            outcome.accounts[0].assignment.objective.to_bits(),
            first.accounts[0].assignment.objective.to_bits()
        );
    }

    #[test]
    fn checkpoint_restore_replay_is_bit_identical_to_never_crashing() {
        let config = ServeConfig::default();
        let mut live = demo_engine(3, 9, config);
        let events = demo_trace(&live, 90, 50);
        let columns = live.columns_from_events(&events);
        let batches: Vec<EventColumns> = (0..6)
            .map(|i| columns.filter_day_range(i * 15, i * 15 + 15))
            .collect();

        // Run 3 epochs (with a fault in epoch 2 so degraded-mode state is
        // part of what the checkpoint must capture), then snapshot.
        let faults = [None, Some(ShardFault::SolveFailure), None];
        for (epoch, batch) in batches.iter().take(3).enumerate() {
            live.ingest_sequenced(epoch as u64, batch).unwrap();
            live.advance((epoch as u32 + 1) * 15);
            if epoch == 1 {
                live.reoptimize_with_faults(&faults).unwrap();
            } else {
                live.reoptimize().unwrap();
            }
        }
        let snapshot = live.checkpoint();

        // Crash: rebuild from the snapshot under the same configuration.
        let mut restored = ServeEngine::restore(
            scope_cloudsim::TierCatalog::azure_hot_cool_archive(),
            schemes(),
            &snapshot,
        )
        .unwrap();
        // The restored engine's own checkpoint is byte-identical.
        assert_eq!(restored.checkpoint(), snapshot);
        assert_eq!(restored.day(), live.day());
        assert_eq!(restored.epoch(), live.epoch());
        assert_eq!(restored.stale_accounts(), live.stale_accounts());

        // Replay the surviving stream on both engines in lockstep; every
        // epoch outcome (choices + objective bits + quarantine) and the
        // final checkpoints must match bit-for-bit. rows_patched is the
        // one counter allowed to differ (the restored engine rebuilds its
        // cost-table cache cold on the first epoch).
        for (epoch, batch) in batches.iter().enumerate().skip(3) {
            live.ingest_sequenced(epoch as u64, batch).unwrap();
            restored.ingest_sequenced(epoch as u64, batch).unwrap();
            let day = (epoch as u32 + 1) * 15;
            live.advance(day);
            restored.advance(day);
            let a = live.reoptimize().unwrap();
            let b = restored.reoptimize().unwrap();
            assert_eq!(a.accounts.len(), b.accounts.len());
            for (x, y) in a.accounts.iter().zip(&b.accounts) {
                assert_eq!(x.assignment.choices, y.assignment.choices, "epoch {epoch}");
                assert_eq!(
                    x.assignment.objective.to_bits(),
                    y.assignment.objective.to_bits(),
                    "epoch {epoch}: objective bits diverged after restore"
                );
                assert_eq!(x.stale, y.stale);
            }
            assert_eq!(a.total_objective.to_bits(), b.total_objective.to_bits());
            assert_eq!(a.retier_decisions, b.retier_decisions);
            assert_eq!(a.dropped_events, b.dropped_events);
        }
        assert_eq!(live.checkpoint(), restored.checkpoint());
    }

    #[test]
    fn checkpoint_preserves_the_reorder_buffer_and_quarantine() {
        let mut engine = demo_engine(2, 4, ServeConfig::default());
        let mut corrupt = EventColumns::default();
        corrupt.push_resolved(1, 0, AccessKind::Read, f64::NAN);
        corrupt.push_resolved(2, 1, AccessKind::Read, -1.0);
        corrupt.push_resolved(3, 2, AccessKind::Write, 0.5);
        engine.ingest_sequenced(0, &corrupt).unwrap();
        // An early batch left pending across the crash.
        let mut early = EventColumns::default();
        early.push_resolved(4, 3, AccessKind::Read, 1.0);
        engine.ingest_sequenced(5, &early).unwrap();
        assert_eq!(engine.pending_batches(), 1);

        let restored = ServeEngine::restore(
            scope_cloudsim::TierCatalog::azure_hot_cool_archive(),
            schemes(),
            &engine.checkpoint(),
        )
        .unwrap();
        assert_eq!(restored.quarantine(), engine.quarantine());
        assert_eq!(restored.pending_batches(), 1);
        assert_eq!(restored.next_seq(), 1);
        assert_eq!(restored.checkpoint(), engine.checkpoint());
    }

    #[test]
    fn restore_rejects_a_mismatched_catalog_or_schemes() {
        let engine = demo_engine(1, 3, ServeConfig::default());
        let snapshot = engine.checkpoint();
        // Fewer schemes than the checkpoint was taken under.
        let err = ServeEngine::restore(
            scope_cloudsim::TierCatalog::azure_hot_cool_archive(),
            vec![CompressionOption::none()],
            &snapshot,
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::Checkpoint(_)));
        // Flipped payload byte fails the checksum.
        let mut corrupt = snapshot.clone();
        corrupt[20] ^= 0x01;
        assert!(matches!(
            ServeEngine::restore(
                scope_cloudsim::TierCatalog::azure_hot_cool_archive(),
                schemes(),
                &corrupt,
            ),
            Err(ServeError::Checkpoint(_))
        ));
    }

    #[test]
    fn applied_moves_update_placements_and_dirty_the_rows() {
        let mut engine = demo_engine(1, 8, ServeConfig::default());
        // Cold resolve decides initial placements (heat 0 -> cheapest
        // feasible tier for every object).
        let first = engine.reoptimize().unwrap();
        assert_eq!(first.rows_patched, 8);
        for id in 0..engine.len() as u32 {
            let (tier, scheme) = engine.placement(id).unwrap();
            let shard_choice = first.accounts[0].assignment.choices[id as usize];
            assert_eq!((tier, scheme), shard_choice);
        }
        // Without new events or heat changes, the next epoch only patches
        // rows whose placement moved last epoch, and decides nothing new.
        let second = engine.reoptimize().unwrap();
        assert_eq!(second.rows_patched, first.retier_decisions);
        assert_eq!(second.retier_decisions, 0);
        assert_eq!(
            second.total_objective.to_bits(),
            reference::total_objective(&reference::full_resolve(&engine).unwrap()).to_bits()
        );
    }
}
