//! Typed, bounded quarantine for malformed intake events.
//!
//! The validating intake ([`crate::ServeEngine::ingest`]) never folds a
//! malformed event into heat: in-horizon events with NaN or negative
//! volumes are diverted here instead, with enough context (global event
//! ordinal, day, object id, offending volume bits, reason) to audit or
//! replay them later. The ledger is **bounded**: it keeps the first
//! `capacity` records verbatim and afterwards only counts, so a
//! corruption storm cannot grow engine memory — the serving analogue of
//! the billing engine's "count, don't retain" `dropped_events` rule.
//!
//! Determinism contract: ledger contents are a pure function of the
//! accepted event stream. Ordinals index the engine's lifetime event
//! sequence (every event examined by the intake, in arrival order), so
//! splitting a stream into batches at any boundary — or re-delivering
//! duplicate batches through the sequenced intake — yields a bit-for-bit
//! identical ledger. The chaos differential suites compare ledgers across
//! fault schedules exactly (volumes are compared as stored `f64` bits, so
//! NaN payloads round-trip).

/// Why an event was quarantined instead of folded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The volume was NaN or infinite.
    NonFiniteVolume,
    /// The volume was negative.
    NegativeVolume,
}

impl QuarantineReason {
    /// Stable one-byte tag for checkpoint encoding.
    pub(crate) fn tag(self) -> u8 {
        match self {
            QuarantineReason::NonFiniteVolume => 0,
            QuarantineReason::NegativeVolume => 1,
        }
    }

    /// Inverse of [`Self::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(QuarantineReason::NonFiniteVolume),
            1 => Some(QuarantineReason::NegativeVolume),
            _ => None,
        }
    }
}

/// One quarantined event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedEvent {
    /// Position of the event in the engine's lifetime intake sequence
    /// (0-based; counts every examined event, including dropped, unknown
    /// and folded ones, so ordinals are invariant under batch splits).
    pub ordinal: u64,
    /// Day stamp of the offending event.
    pub day: u32,
    /// Interned object id the event named (possibly
    /// [`scope_cloudsim::UNKNOWN_OBJECT`] — validation precedes
    /// resolution, mirroring the billing engine's check order).
    pub object_id: u32,
    /// Raw bits of the offending volume (bits, not the value, so NaN
    /// payloads survive checkpoint round-trips and compare exactly).
    pub volume_bits: u64,
    /// Why the event was quarantined.
    pub reason: QuarantineReason,
}

impl QuarantinedEvent {
    /// The offending volume as an `f64`.
    pub fn volume_gb(&self) -> f64 {
        f64::from_bits(self.volume_bits)
    }
}

/// Bounded ledger of quarantined events: first `capacity` records kept
/// verbatim, everything past that only counted in [`Self::total`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineLedger {
    entries: Vec<QuarantinedEvent>,
    capacity: usize,
    total: u64,
    truncated: u64,
}

/// Default record capacity: enough to audit a corruption burst without
/// letting a hostile stream grow engine memory.
pub const DEFAULT_QUARANTINE_CAPACITY: usize = 1024;

impl Default for QuarantineLedger {
    fn default() -> Self {
        QuarantineLedger::with_capacity(DEFAULT_QUARANTINE_CAPACITY)
    }
}

impl QuarantineLedger {
    /// An empty ledger keeping at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        QuarantineLedger {
            entries: Vec::new(),
            capacity,
            total: 0,
            truncated: 0,
        }
    }

    /// Record one quarantined event (kept if under capacity, else only
    /// counted).
    pub(crate) fn record(&mut self, event: QuarantinedEvent) {
        self.total += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(event);
        }
    }

    /// Count `n` events lost to truncated columns (a batch whose parallel
    /// arrays disagree in length: the common prefix is ingested, the torn
    /// tail is unrecoverable and only counted here).
    pub(crate) fn record_truncated(&mut self, n: u64) {
        self.truncated += n;
    }

    /// The retained records, in intake order.
    pub fn entries(&self) -> &[QuarantinedEvent] {
        &self.entries
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total quarantined events, including those past capacity.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to truncated (length-mismatched) column batches.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Whether nothing has ever been quarantined or truncated.
    pub fn is_clean(&self) -> bool {
        self.total == 0 && self.truncated == 0
    }

    /// Crate-internal rebuild from checkpoint fields.
    pub(crate) fn from_parts(
        entries: Vec<QuarantinedEvent>,
        capacity: usize,
        total: u64,
        truncated: u64,
    ) -> Self {
        QuarantineLedger {
            entries,
            capacity,
            total,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_is_bounded_but_counts_everything() {
        let mut ledger = QuarantineLedger::with_capacity(2);
        for i in 0..5u64 {
            ledger.record(QuarantinedEvent {
                ordinal: i,
                day: i as u32,
                object_id: 0,
                volume_bits: f64::NAN.to_bits(),
                reason: QuarantineReason::NonFiniteVolume,
            });
        }
        ledger.record_truncated(3);
        assert_eq!(ledger.entries().len(), 2);
        assert_eq!(ledger.total(), 5);
        assert_eq!(ledger.truncated(), 3);
        assert!(!ledger.is_clean());
        assert_eq!(ledger.entries()[1].ordinal, 1);
        assert!(ledger.entries()[0].volume_gb().is_nan());
    }

    #[test]
    fn reason_tags_round_trip() {
        for reason in [
            QuarantineReason::NonFiniteVolume,
            QuarantineReason::NegativeVolume,
        ] {
            assert_eq!(QuarantineReason::from_tag(reason.tag()), Some(reason));
        }
        assert_eq!(QuarantineReason::from_tag(9), None);
    }
}
