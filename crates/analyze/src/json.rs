//! A minimal, dependency-free JSON parser — just enough to validate the
//! committed `BENCH_*.json` artifacts (the offline-shims constraint rules
//! out `serde_json`, and the serde shim is a no-op).
//!
//! Numbers are kept as `f64`; object keys preserve insertion order in a
//! sorted map because the bench-schema rule only asks membership
//! questions.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Duplicate keys keep the last value (like serde_json).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser {
        chars: bytes,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::String(self.string()?)),
            Some('t') => self.keyword("true", Value::Bool(true)),
            Some('f') => self.keyword("false", Value::Bool(false)),
            Some('n') => self.keyword("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for expected in word.chars() {
            if self.bump() != Some(expected) {
                return Err(format!("bad literal near offset {}", self.pos));
            }
        }
        Ok(value)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_char('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Object(map)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Array(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some(c @ ('"' | '\\' | '/')) => out.push(c),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert!(matches!(obj["b"], Value::Object(_)));
        assert_eq!(obj["s"], Value::String("x\ny".into()));
        match &obj["a"] {
            Value::Array(items) => assert_eq!(items[2], Value::Number(-300.0)),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse(r#"{"a": 01x}"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_and_empty_containers() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::String("A".to_string()));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote \" backslash \\ newline \n tab \t";
        let json = format!("\"{}\"", escape(original));
        assert_eq!(parse(&json).unwrap(), Value::String(original.to_string()));
    }
}
