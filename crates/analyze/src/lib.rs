//! `scope-analyze`: a workspace invariant linter.
//!
//! The workspace promises more than the compiler checks: results must be
//! bit-reproducible (no hash-order or wall-clock leakage), every fast path
//! must keep a test-pinned reference oracle, the offline shims bound the
//! dependency surface, and CI's test-count floor must track reality. This
//! crate machine-checks those promises with a from-scratch lexer
//! ([`lexer`]), a workspace model ([`source`]) and a token-stream rule
//! engine ([`rules`]) — deliberately dependency-free so it builds before
//! anything else does.
//!
//! Run it as `cargo run -p scope-analyze -- --deny` (what `ci.sh` does) or
//! use [`analyze`] / [`analyze_rules`] directly from tests.

pub mod json;
pub mod lexer;
pub mod rules;
pub mod source;

pub use rules::{analyze, analyze_rules, Finding, Report, MAX_WAIVERS, RULE_NAMES};
